//! # gea-router — a distributed shard router over `gea-server` backends
//!
//! One front end speaking the exact GQL line protocol, fanned out over N
//! `gea-server` backends. The deployment model is **replication plus
//! scatter**: every active backend holds an identical replica of every
//! session (writes are broadcast in a fixed order), and the expensive
//! scan-shaped verbs — `mine`, `populate <name> <sumy> <dataset>`, and
//! `groups` — are *scattered*: each backend computes one contiguous
//! stable-order shard of the work (`ShardPlan` semantics, via the
//! server's `xpart` verb), the router gathers the partial blobs in shard
//! order, and every backend then applies the identical merged result
//! (`xapply`), which reuses `gea_exec::merge_shards` — the same seam the
//! in-process sharded drivers use. Because the merge is concatenation of
//! contiguous stable-order ranges, the gathered result is byte-identical
//! to a single process executing the command serially, for **any** number
//! of backends.
//!
//! Routing table:
//!
//! * **Reads** (`show`, `gap` algebra, `check`, `lineage`, `stats`, …) go
//!   to a session-affine *home* backend (FNV-1a of the session name over
//!   the currently-healthy active set) — replicas are identical, so any
//!   one of them answers with the same bytes.
//! * **Writes** that are not scattered (table algebra, `open`, `load`,
//!   `delete`, simplex mining, …) are broadcast to every healthy active
//!   backend under a per-session router lock; the reply from the lowest
//!   slot is relayed.
//! * **Scatterable writes** run the `xpart`/`xstage`/`xapply` protocol
//!   described above when more than one healthy backend is active.
//! * Unparseable lines are forwarded raw to the home backend so parse
//!   errors are byte-identical too.
//!
//! Failure model: any transport error marks the backend down pool-wide,
//! and a scatter whose compute phase loses a backend aborts with a single
//! `ERR EBACKEND` — the compute phase is read-only, so nothing was
//! mutated anywhere. A down backend is probed with exponential backoff
//! and re-admitted only after every known session has been re-replicated
//! onto it from a healthy source (`xsnapshot`/`xadopt`, the same snapshot
//! format the spill path uses, with the same generation-drift refusal).
//!
//! The `rebalance <k>` admin verb grows or shrinks the active prefix at
//! runtime, shipping session snapshots to newly activated backends under
//! a topology write-lock; `backends` lists per-backend health.

mod backend;

pub use backend::BackendPool;
use backend::{probe, BackendConn};

use std::collections::{BTreeSet, HashMap};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

use gea_server::gql::{self, GqlCommand, Request, SessionCtl};
use gea_server::wire::{self, Reply};
use gea_server::{xcodec, EffectTable};

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Bind address for the client-facing listener (port 0 picks an
    /// ephemeral port).
    pub addr: String,
    /// Backend `gea-server` addresses, in shard order. Order is identity:
    /// shard *i* of a scatter always runs on backend *i*.
    pub backends: Vec<String>,
    /// How many backends (a prefix of `backends`) start active; 0 means
    /// all of them. `rebalance <k>` changes this at runtime.
    pub active: usize,
    /// Worker threads — the concurrent-client ceiling.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// ones are refused with `EBUSY`.
    pub queue_depth: usize,
    /// Health-probe cadence for down backends (and liveness checks on up
    /// ones).
    pub health_interval: Duration,
    /// Per-backend TCP connect timeout.
    pub connect_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:7787".to_string(),
            backends: Vec::new(),
            active: 0,
            workers: 4,
            queue_depth: 16,
            health_interval: Duration::from_millis(500),
            connect_timeout: Duration::from_secs(2),
        }
    }
}

/// A handle for stopping a running router from another thread.
#[derive(Clone)]
pub struct RouterHandle {
    flag: Arc<AtomicBool>,
    addr: SocketAddr,
}

impl RouterHandle {
    /// Request shutdown and wake the acceptor.
    pub fn shutdown(&self) {
        self.flag.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }
}

/// State shared by every client handler and the health thread.
struct RouterShared {
    pool: BackendPool,
    /// Backends `[0, active)` participate in routing; the rest are warm
    /// standbys until `rebalance` admits them.
    active: AtomicUsize,
    /// Session names the router has seen succeed (`open`/`use`); the set
    /// a re-admitted backend must be resynced with.
    sessions: Mutex<BTreeSet<String>>,
    /// Per-session write serialization: broadcasts to replicas must land
    /// in one global order per session or the replicas diverge.
    locks: Mutex<HashMap<String, Arc<Mutex<()>>>>,
    /// Topology lock: handlers performing replicated writes hold `read`;
    /// resync/rebalance hold `write` so no write can slip past a backend
    /// between its resync and its re-admission.
    topo: RwLock<()>,
    config: RouterConfig,
    shutdown: Arc<AtomicBool>,
}

impl RouterShared {
    fn session_lock(&self, name: &str) -> Arc<Mutex<()>> {
        let mut locks = self.locks.lock().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            locks
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(()))),
        )
    }

    /// Indices of healthy backends in the active prefix, in shard order.
    fn healthy_actives(&self) -> Vec<usize> {
        let a = self
            .active
            .load(Ordering::SeqCst)
            .clamp(1, self.pool.len().max(1));
        (0..a.min(self.pool.len()))
            .filter(|&i| self.pool.is_up(i))
            .collect()
    }

    fn note_session(&self, name: &str) {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string());
    }

    fn forget_session(&self, name: &str) {
        self.sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(name);
    }
}

/// A bound, not-yet-running router.
pub struct Router {
    listener: TcpListener,
    shutdown: Arc<AtomicBool>,
    shared: Arc<RouterShared>,
}

impl Router {
    /// Bind the client-facing listener. No thread is spawned until
    /// [`Router::run`]; backends are not contacted yet.
    pub fn bind(config: RouterConfig) -> std::io::Result<Router> {
        if config.backends.is_empty() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "router needs at least one backend",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let n = config.backends.len();
        let active = if config.active == 0 {
            n
        } else {
            config.active.min(n)
        };
        let shared = Arc::new(RouterShared {
            pool: BackendPool::new(&config.backends),
            active: AtomicUsize::new(active),
            sessions: Mutex::new(BTreeSet::new()),
            locks: Mutex::new(HashMap::new()),
            topo: RwLock::new(()),
            config,
            shutdown: Arc::clone(&shutdown),
        });
        Ok(Router {
            listener,
            shutdown,
            shared,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener
            .local_addr()
            .expect("bound listener has an address")
    }

    /// A shutdown handle to stop the router from another thread.
    pub fn handle(&self) -> RouterHandle {
        RouterHandle {
            flag: Arc::clone(&self.shutdown),
            addr: self.local_addr(),
        }
    }

    /// Serve until shutdown is requested. Blocks the calling thread; the
    /// worker pool and the health thread are joined before returning.
    pub fn run(self) -> std::io::Result<()> {
        let Router {
            listener,
            shutdown,
            shared,
        } = self;
        let workers = shared.config.workers.max(1);
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            mpsc::sync_channel(shared.config.queue_depth);
        let rx = Arc::new(Mutex::new(rx));
        let mut pool = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let rx = Arc::clone(&rx);
            let shared = Arc::clone(&shared);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("gea-router-worker-{i}"))
                    .spawn(move || loop {
                        let stream = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        let Ok(stream) = stream else { break };
                        let _ = serve_connection(stream, &shared);
                    })?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            pool.push(
                std::thread::Builder::new()
                    .name("gea-router-health".to_string())
                    .spawn(move || health_loop(&shared))?,
            );
        }

        for stream in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            match tx.try_send(stream) {
                Ok(()) => {}
                Err(TrySendError::Full(mut stream)) => {
                    let _ =
                        wire::write_err(&mut stream, "EBUSY", "router saturated; try again later");
                }
                Err(TrySendError::Disconnected(_)) => break,
            }
        }
        shutdown.store(true, Ordering::SeqCst);
        drop(tx);
        for worker in pool {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// FNV-1a over the session name: the stable hash behind home-backend
/// affinity.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Whether this command is worth scattering: the scan-shaped verbs whose
/// per-shard kernels the server exposes via `xpart`. The classification
/// is NOT maintained here — it is the `scatter` column of the one
/// verb-effect table `gea-check` exports ([`EffectTable`]), with the
/// form-dependent resolution (`populate` with a from-clause, `mine with
/// isa` but not simplex) applied by `EffectTable::of`. The exhaustiveness
/// test in `gea-check` guarantees a new verb cannot land without a row.
fn scatterable(cmd: &GqlCommand) -> bool {
    EffectTable::of(cmd).scatterable
}

/// What the connection loop does after answering a request.
enum After {
    Continue,
    CloseConnection,
    StopRouter,
}

/// How a transport-level backend loss renders to the client: one coded
/// error, never a hang or a partial reply.
fn ebackend(msg: impl Into<String>) -> Reply {
    Err(("EBACKEND".to_string(), msg.into()))
}

/// How often a worker blocked on an idle connection re-checks the
/// shutdown flag (mirrors the server).
const READ_POLL: Duration = Duration::from_millis(250);

/// Requests longer than this are malformed (mirrors the server).
const MAX_LINE: usize = 64 * 1024;

/// Raw bytes staged per `xstage` line: hex doubles it and the verb prefix
/// rides along, so this keeps every staging line under the server's
/// 64 KiB line ceiling.
const RAW_CHUNK: usize = 24 * 1024;

/// Hex characters shipped per `xstage` line when relaying an already-hex
/// snapshot (must stay even so byte boundaries are preserved).
const HEX_CHUNK: usize = 48 * 1024;

fn serve_connection(mut stream: TcpStream, shared: &Arc<RouterShared>) -> std::io::Result<()> {
    let mut writer = stream.try_clone()?;
    stream.set_read_timeout(Some(READ_POLL))?;
    let mut pending: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 4096];
    // The client's current session, mirroring what a single server's
    // connection state would be: updated only when `open`/`use` succeeds.
    let mut current = "default".to_string();
    // Lazily-established connections to each backend, owned by this
    // handler so backend-side per-connection state (current session,
    // staging buffer) is never shared across clients.
    let mut conns: Vec<Option<BackendConn>> = (0..shared.pool.len()).map(|_| None).collect();
    loop {
        let line = loop {
            if let Some(pos) = pending.iter().position(|&b| b == b'\n') {
                let raw: Vec<u8> = pending.drain(..=pos).collect();
                break String::from_utf8_lossy(&raw).into_owned();
            }
            if pending.len() > MAX_LINE {
                wire::write_err(&mut writer, "EPARSE", "request line too long")?;
                return Ok(());
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Ok(()),
                Ok(n) => pending.extend_from_slice(&chunk[..n]),
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        };
        let line = line.trim_end_matches(['\n', '\r']).to_string();

        // Router admin verbs, answered locally (they are not GQL).
        let mut fields = line.split_whitespace();
        match fields.next() {
            Some("backends") if fields.next().is_none() => {
                wire::write_ok(&mut writer, &render_backends(shared))?;
                continue;
            }
            Some("rebalance") => {
                let arg = fields.next();
                let reply = match (arg, fields.next()) {
                    (Some(k), None) => match k.parse::<usize>() {
                        Ok(k) => rebalance(shared, k),
                        Err(_) => Err((
                            "EPARSE".to_string(),
                            "usage: rebalance <active-backends>".to_string(),
                        )),
                    },
                    _ => Err((
                        "EPARSE".to_string(),
                        "usage: rebalance <active-backends>".to_string(),
                    )),
                };
                write_reply(&mut writer, reply)?;
                continue;
            }
            _ => {}
        }

        let (reply, after) = route(&line, &mut current, &mut conns, shared);
        if let Some(reply) = reply {
            write_reply(&mut writer, reply)?;
        }
        match after {
            After::Continue => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            After::CloseConnection => return Ok(()),
            After::StopRouter => {
                shared.shutdown.store(true, Ordering::SeqCst);
                if let Ok(addr) = writer.local_addr() {
                    let _ = TcpStream::connect(addr);
                }
                return Ok(());
            }
        }
    }
}

fn write_reply(writer: &mut TcpStream, reply: Reply) -> std::io::Result<()> {
    match reply {
        Ok(payload) => wire::write_ok(writer, &payload),
        Err((code, msg)) => wire::write_err(writer, &code, &msg),
    }
}

fn render_backends(shared: &RouterShared) -> String {
    let active = shared.active.load(Ordering::SeqCst);
    (0..shared.pool.len())
        .map(|i| {
            format!(
                "{i}: {} {}{}",
                shared.pool.addr(i),
                if shared.pool.is_up(i) { "up" } else { "down" },
                if i >= active { " (standby)" } else { "" },
            )
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Route one client line. Returns `None` for lines that get no reply
/// (blank/comment, matching the server's behavior).
fn route(
    line: &str,
    current: &mut String,
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
) -> (Option<Reply>, After) {
    let req = match gql::parse(line) {
        Ok(None) => return (None, After::Continue),
        Ok(Some(req)) => req,
        // Forward unparseable lines raw to the home backend: its parser
        // produces the byte-identical EPARSE reply.
        Err(_) => {
            return (
                Some(forward_home(line, current, conns, shared, false)),
                After::Continue,
            )
        }
    };
    match req {
        Request::Help => (Some(Ok(gql::HELP.to_string())), After::Continue),
        Request::Ping => (Some(Ok("pong".to_string())), After::Continue),
        Request::Quit => (Some(Ok("bye".to_string())), After::CloseConnection),
        Request::Shutdown => {
            // Stop the whole deployment: backends first, then this router.
            let _t = shared.topo.read().unwrap_or_else(|e| e.into_inner());
            for i in shared.healthy_actives() {
                if let Ok(conn) = ensure_conn(conns, shared, i) {
                    let _ = conn.request("shutdown");
                }
            }
            (Some(Ok("shutting down".to_string())), After::StopRouter)
        }
        // Server-wide or filesystem-touching one-shots: one copy suffices
        // and the reply is identical to a single server's.
        Request::Stats | Request::GenCorpus { .. } => (
            Some(forward_home(line, current, conns, shared, false)),
            After::Continue,
        ),
        Request::Session(ctl) => (
            Some(session_ctl(line, &ctl, current, conns, shared)),
            After::Continue,
        ),
        Request::Gql(cmd) => {
            // Affine reads vs replicated writes, decided by the same
            // verb-effect table that drives `scatterable` and the server's
            // cache admission: a read never mutates the session, so any
            // identical replica (the session's home backend) answers it.
            if EffectTable::of(&cmd).is_read() {
                (
                    Some(forward_home(line, current, conns, shared, true)),
                    After::Continue,
                )
            } else {
                (
                    Some(write_cmd(line, &cmd, current, conns, shared)),
                    After::Continue,
                )
            }
        }
    }
}

/// Establish (or reuse) this handler's connection to backend `i`. A
/// connect failure marks the backend down pool-wide.
fn ensure_conn<'a>(
    conns: &'a mut [Option<BackendConn>],
    shared: &RouterShared,
    i: usize,
) -> Result<&'a mut BackendConn, ()> {
    let admission = shared.pool.admissions(i);
    // A connection from before the backend's last re-admission points at
    // a dead socket (the backend restarted); drop it instead of letting
    // the first request after re-admission fail on it.
    if conns[i]
        .as_ref()
        .is_some_and(|conn| conn.admission != admission)
    {
        conns[i] = None;
    }
    if conns[i].is_none() {
        match BackendConn::connect(shared.pool.addr(i), shared.config.connect_timeout) {
            Ok(mut conn) => {
                conn.admission = admission;
                conns[i] = Some(conn);
            }
            Err(_) => {
                shared.pool.mark_down(i);
                return Err(());
            }
        }
    }
    Ok(conns[i].as_mut().expect("just ensured"))
}

/// One request on backend `i`, with transport failures downgrading the
/// backend pool-wide and poisoning this handler's connection to it.
fn request_on(
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
    i: usize,
    line: &str,
) -> Result<Reply, ()> {
    let conn = ensure_conn(conns, shared, i)?;
    match conn.request(line) {
        Ok(reply) => Ok(reply),
        Err(_) => {
            conns[i] = None;
            shared.pool.mark_down(i);
            Err(())
        }
    }
}

/// Align backend `i`'s server-side current session with the client's.
/// Returns the engine's error reply if the `use` itself fails (which is
/// byte-identical to what the data command would have answered on a
/// single server, since both render `no_session(current)`).
fn align_session(
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
    i: usize,
    current: &str,
) -> Result<Option<Reply>, ()> {
    {
        let conn = ensure_conn(conns, shared, i)?;
        if conn.session == current {
            return Ok(None);
        }
    }
    match request_on(conns, shared, i, &format!("use {current}"))? {
        Ok(_) => {
            if let Some(conn) = conns[i].as_mut() {
                conn.session = current.to_string();
            }
            Ok(None)
        }
        Err(e) => Ok(Some(Err(e))),
    }
}

/// Forward one line to the session-affine home backend, optionally
/// aligning the backend connection's current session first.
fn forward_home(
    line: &str,
    current: &str,
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
    align: bool,
) -> Reply {
    let healthy = shared.healthy_actives();
    if healthy.is_empty() {
        return ebackend("no healthy backend available");
    }
    let i = healthy[(fnv1a(current) % healthy.len() as u64) as usize];
    if align {
        match align_session(conns, shared, i, current) {
            Ok(None) => {}
            Ok(Some(err)) => return err,
            Err(()) => return ebackend(format!("backend {} unreachable", shared.pool.addr(i))),
        }
    }
    match request_on(conns, shared, i, line) {
        Ok(reply) => reply,
        Err(()) => ebackend(format!("backend {} unreachable", shared.pool.addr(i))),
    }
}

/// Session-registry control: broadcast to every healthy active backend so
/// the replicas' registries stay identical, tracking which sessions exist
/// and where each backend connection is attached.
fn session_ctl(
    line: &str,
    ctl: &SessionCtl,
    current: &mut String,
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
) -> Reply {
    let target = match ctl {
        SessionCtl::OpenDemo { name, .. } | SessionCtl::OpenDir { name, .. } => name.clone(),
        SessionCtl::Use(name) | SessionCtl::Close(name) => name.clone(),
        // `sessions` is a read over identical registries: home answers.
        SessionCtl::List => return forward_home(line, current, conns, shared, false),
    };
    let _t = shared.topo.read().unwrap_or_else(|e| e.into_inner());
    let _g = shared.session_lock(&target);
    let _guard = _g.lock().unwrap_or_else(|e| e.into_inner());
    let healthy = shared.healthy_actives();
    if healthy.is_empty() {
        return ebackend("no healthy backend available");
    }
    let attaches = matches!(
        ctl,
        SessionCtl::OpenDemo { .. } | SessionCtl::OpenDir { .. } | SessionCtl::Use(_)
    );
    let mut relay: Option<Reply> = None;
    for i in healthy {
        if let Ok(reply) = request_on(conns, shared, i, line) {
            if reply.is_ok() && attaches {
                if let Some(conn) = conns[i].as_mut() {
                    conn.session = target.clone();
                }
            }
            if relay.is_none() {
                relay = Some(reply);
            }
        }
    }
    let Some(reply) = relay else {
        return ebackend("no healthy backend available");
    };
    if reply.is_ok() {
        match ctl {
            SessionCtl::OpenDemo { .. } | SessionCtl::OpenDir { .. } | SessionCtl::Use(_) => {
                shared.note_session(&target);
                *current = target;
            }
            SessionCtl::Close(_) => shared.forget_session(&target),
            SessionCtl::List => {}
        }
    }
    reply
}

/// A non-read GQL command: scatter it if it is scan-shaped and more than
/// one healthy backend is active, otherwise broadcast the raw line so
/// every replica executes it identically.
fn write_cmd(
    line: &str,
    cmd: &GqlCommand,
    current: &str,
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
) -> Reply {
    let _t = shared.topo.read().unwrap_or_else(|e| e.into_inner());
    let _g = shared.session_lock(current);
    let _guard = _g.lock().unwrap_or_else(|e| e.into_inner());
    let healthy = shared.healthy_actives();
    if healthy.is_empty() {
        return ebackend("no healthy backend available");
    }
    // Align every participating backend connection up front; an alignment
    // error is the engine's own (byte-identical) reply.
    for &i in &healthy {
        match align_session(conns, shared, i, current) {
            Ok(None) => {}
            Ok(Some(err)) => return err,
            Err(()) => return ebackend(format!("backend {} unreachable", shared.pool.addr(i))),
        }
    }
    if healthy.len() > 1 && scatterable(cmd) {
        scatter(cmd, conns, shared, &healthy)
    } else {
        broadcast_raw(line, conns, shared, &healthy)
    }
}

/// Broadcast one raw line to the given backends in slot order, relaying
/// the first surviving reply (replicas are identical, so every survivor
/// answers the same bytes).
fn broadcast_raw(
    line: &str,
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
    slots: &[usize],
) -> Reply {
    let mut relay: Option<Reply> = None;
    for &i in slots {
        if let Ok(reply) = request_on(conns, shared, i, line) {
            if relay.is_none() {
                relay = Some(reply);
            }
        }
    }
    relay.unwrap_or_else(|| ebackend("no healthy backend available"))
}

/// The scatter/gather protocol: each backend computes one contiguous
/// shard of the command (`xpart`, read-only), the router frames the
/// partial blobs in shard order, and every backend installs the identical
/// merged result (`xstage` + `xapply`).
fn scatter(
    cmd: &GqlCommand,
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
    healthy: &[usize],
) -> Reply {
    let canonical = cmd.canonical();
    let k = healthy.len();

    // Compute phase: one shard per backend, in parallel. This phase only
    // reads, so a lost backend aborts the whole command with nothing
    // mutated anywhere.
    let mut taken: Vec<(usize, BackendConn)> = Vec::with_capacity(k);
    for &i in healthy {
        match ensure_conn(conns, shared, i) {
            Ok(_) => taken.push((i, conns[i].take().expect("just ensured"))),
            Err(()) => {
                // Put already-taken conns back before failing.
                for (j, conn) in taken {
                    conns[j] = Some(conn);
                }
                return ebackend(format!("backend {} unreachable", shared.pool.addr(i)));
            }
        }
    }
    let results: Vec<std::io::Result<Reply>> = std::thread::scope(|s| {
        let handles: Vec<_> = taken
            .iter_mut()
            .enumerate()
            .map(|(slot, (_i, conn))| {
                let line = format!("xpart {slot} {k} :: {canonical}");
                s.spawn(move || conn.request(&line))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err(std::io::Error::other("scatter thread panicked")))
            })
            .collect()
    });
    let mut lost: Option<usize> = None;
    for ((i, conn), res) in taken.into_iter().zip(&results) {
        if res.is_ok() {
            conns[i] = Some(conn);
        } else {
            shared.pool.mark_down(i);
            lost.get_or_insert(i);
        }
    }
    if let Some(i) = lost {
        return ebackend(format!(
            "backend {} lost mid-scatter; no partial results were applied",
            shared.pool.addr(i)
        ));
    }
    // An engine error is deterministic across identical replicas: relay
    // the lowest slot's.
    let mut blobs: Vec<Vec<u8>> = Vec::with_capacity(k);
    for res in &results {
        match res.as_ref().expect("transport losses handled above") {
            Err((code, msg)) => return Err((code.clone(), msg.clone())),
            Ok(payload) => match xcodec::hex_decode(payload.trim()) {
                Ok(blob) => blobs.push(blob),
                Err(e) => return ebackend(format!("malformed scatter partial: {e}")),
            },
        }
    }
    let staged = xcodec::frame(&blobs);

    // Apply phase: every replica installs the same merged result. A
    // backend lost here is re-synced by the health thread on
    // re-admission, so survivors may proceed.
    let mut relay: Option<Reply> = None;
    for &i in healthy {
        if conns[i].is_none() {
            continue;
        }
        let applied = apply_on(conns, shared, i, &staged, k, &canonical);
        if let Some(reply) = applied {
            if relay.is_none() {
                relay = Some(reply);
            }
        }
    }
    relay.unwrap_or_else(|| ebackend("all backends lost during scatter apply"))
}

/// Stage the framed shard blobs on backend `i` and apply the merge.
/// `None` means the backend was lost at the transport level.
fn apply_on(
    conns: &mut [Option<BackendConn>],
    shared: &RouterShared,
    i: usize,
    staged: &[u8],
    k: usize,
    canonical: &str,
) -> Option<Reply> {
    match request_on(conns, shared, i, "xreset") {
        Ok(Ok(_)) => {}
        Ok(Err(e)) => return Some(Err(e)),
        Err(()) => return None,
    }
    for chunk in staged.chunks(RAW_CHUNK) {
        let line = format!("xstage {}", xcodec::hex_encode(chunk));
        match request_on(conns, shared, i, &line) {
            Ok(Ok(_)) => {}
            Ok(Err(e)) => return Some(Err(e)),
            Err(()) => return None,
        }
    }
    request_on(conns, shared, i, &format!("xapply {k} :: {canonical}")).ok()
}

/// `rebalance <k>`: resize the active prefix. Growing ships every known
/// session to the newly admitted backends (snapshot under generation
/// check → stage → adopt), refusing on generation drift exactly like the
/// spill path does; shrinking just narrows the prefix.
fn rebalance(shared: &RouterShared, k: usize) -> Reply {
    let n = shared.pool.len();
    if k < 1 || k > n {
        return Err((
            "EQUERY".to_string(),
            format!("rebalance: active backends must be between 1 and {n}"),
        ));
    }
    let cur = shared.active.load(Ordering::SeqCst);
    if k > cur {
        // Exclude all replicated writes while the new backends catch up.
        let _t = shared.topo.write().unwrap_or_else(|e| e.into_inner());
        let source = match (0..cur).find(|&i| shared.pool.is_up(i)) {
            Some(i) => i,
            None => return ebackend("no healthy backend to rebalance from"),
        };
        let names: Vec<String> = shared
            .sessions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect();
        for i in cur..k {
            sync_backend(shared, source, i, &names)?;
            shared.pool.mark_up(i);
        }
        shared.active.store(k, Ordering::SeqCst);
    } else {
        shared.active.store(k, Ordering::SeqCst);
    }
    Ok(format!("rebalanced to {k} active backend(s)"))
}

/// Replicate `names` from backend `source` onto backend `target` over
/// fresh connections, with the spill path's generation-drift refusal.
fn sync_backend(
    shared: &RouterShared,
    source: usize,
    target: usize,
    names: &[String],
) -> Result<(), (String, String)> {
    let timeout = shared.config.connect_timeout;
    let lost = |i: usize| {
        (
            "EBACKEND".to_string(),
            format!("backend {} unreachable", shared.pool.addr(i)),
        )
    };
    let mut src = BackendConn::connect(shared.pool.addr(source), timeout).map_err(|_| {
        shared.pool.mark_down(source);
        lost(source)
    })?;
    let mut tgt =
        BackendConn::connect(shared.pool.addr(target), timeout).map_err(|_| lost(target))?;
    for name in names {
        let snap = match src
            .request(&format!("xsnapshot {name}"))
            .map_err(|_| lost(source))?
        {
            // The session evaporated (closed behind our back): not an
            // error, just nothing to ship.
            Err((code, _)) if code == "ENOSESSION" => {
                shared.forget_session(name);
                continue;
            }
            Err(e) => return Err(e),
            Ok(payload) => payload,
        };
        let (header, hex) = snap.split_once('\n').ok_or_else(|| {
            (
                "EBACKEND".to_string(),
                "malformed snapshot reply".to_string(),
            )
        })?;
        let mut parts = header.split_whitespace();
        let (generation, fingerprint) = match (parts.next(), parts.next()) {
            (Some(g), Some(f)) => (g.to_string(), f.to_string()),
            _ => {
                return Err((
                    "EBACKEND".to_string(),
                    "malformed snapshot reply".to_string(),
                ))
            }
        };
        tgt.request("xreset").map_err(|_| lost(target))??;
        for chunk in hex.as_bytes().chunks(HEX_CHUNK) {
            let chunk = std::str::from_utf8(chunk).expect("hex is ASCII");
            tgt.request(&format!("xstage {chunk}"))
                .map_err(|_| lost(target))??;
        }
        tgt.request(&format!("xadopt {name} {fingerprint}"))
            .map_err(|_| lost(target))??;
        // Generation drift check: if the source moved while we shipped,
        // the snapshot is stale — refuse, exactly like a spill whose
        // entry advanced between snapshot and commit.
        let gen_now = src
            .request(&format!("xgen {name}"))
            .map_err(|_| lost(source))??;
        if gen_now.trim() != generation {
            return Err((
                "ECONFLICT".to_string(),
                format!("session {name} changed during rebalance; retry"),
            ));
        }
    }
    Ok(())
}

/// The health thread: probe down backends with exponential backoff and
/// re-admit them only after a full resync; verify up backends are still
/// answering.
/// Sleep `total`, but wake early (within ~100ms) if shutdown is raised so
/// a long health interval never delays [`Router::run`]'s join.
fn sleep_interruptible(shared: &RouterShared, total: Duration) {
    let mut left = total;
    while left > Duration::ZERO && !shared.shutdown.load(Ordering::SeqCst) {
        let step = left.min(Duration::from_millis(100));
        std::thread::sleep(step);
        left = left.saturating_sub(step);
    }
}

fn health_loop(shared: &RouterShared) {
    let interval = shared.config.health_interval;
    while !shared.shutdown.load(Ordering::SeqCst) {
        sleep_interruptible(shared, interval);
        let active = shared.active.load(Ordering::SeqCst);
        for i in 0..shared.pool.len() {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if shared.pool.is_up(i) {
                // Standby backends are not probed; active ones get a
                // liveness check so a silent death is noticed even with
                // no client traffic.
                if i < active && !probe(shared.pool.addr(i), shared.config.connect_timeout) {
                    shared.pool.mark_down(i);
                }
                continue;
            }
            if !shared.pool.due_for_probe(i) {
                continue;
            }
            if !probe(shared.pool.addr(i), shared.config.connect_timeout) {
                shared.pool.note_probe_failure(i, interval);
                continue;
            }
            // Alive again: resync every known session before re-admitting,
            // holding the topology lock so no write slips into the gap
            // between resync and re-admission.
            let _t = shared.topo.write().unwrap_or_else(|e| e.into_inner());
            let source = (0..shared.pool.len())
                .filter(|&j| j != i && j < active)
                .find(|&j| shared.pool.is_up(j));
            let resynced = match source {
                None => true, // nothing healthy to diverge from
                Some(src) => {
                    let names: Vec<String> = shared
                        .sessions
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .iter()
                        .cloned()
                        .collect();
                    sync_backend(shared, src, i, &names).is_ok()
                }
            };
            if resynced {
                shared.pool.mark_up(i);
            } else {
                shared.pool.note_probe_failure(i, interval);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatterable_covers_exactly_the_scan_shaped_verbs() {
        assert!(scatterable(&GqlCommand::Mine {
            dataset: "d".into(),
            out: "f".into(),
            k_pct: 10,
            min_records: 2,
            batch: 8,
        }));
        assert!(scatterable(&GqlCommand::Groups("f_1".into())));
        assert!(scatterable(&GqlCommand::Populate {
            name: "t".into(),
            from: Some(("s".into(), "d".into())),
        }));
        // Lineage re-materialization has no per-shard kernel.
        assert!(!scatterable(&GqlCommand::Populate {
            name: "t".into(),
            from: None,
        }));
        assert!(scatterable(&GqlCommand::MineWith {
            dataset: "d".into(),
            out: "m".into(),
            algo: "isa".into(),
            params: vec![],
        }));
        // Simplex replicates via broadcast instead.
        assert!(!scatterable(&GqlCommand::MineWith {
            dataset: "d".into(),
            out: "m".into(),
            algo: "simplex".into(),
            params: vec![],
        }));
        assert!(!scatterable(&GqlCommand::Lineage));
        // The classification is the effect table's scatter column, not a
        // router-local list: every row claiming "never scatters" must
        // refuse, and only scatter-capable rows may ever pass.
        for row in EffectTable::rows() {
            if row.scatter == gea_server::Scatter::Never {
                assert!(
                    EffectTable::row(row.verb).is_some(),
                    "{} lost its row",
                    row.verb
                );
            }
        }
    }

    #[test]
    fn home_affinity_is_stable_and_in_range() {
        for n in 1..=5u64 {
            let h = (fnv1a("default") % n) as usize;
            assert!(h < n as usize);
            assert_eq!(h, (fnv1a("default") % n) as usize);
        }
        // Different sessions can land on different homes (not a strict
        // requirement, but the hash must at least not be constant).
        let spread: std::collections::BTreeSet<u64> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| fnv1a(s) % 4)
            .collect();
        assert!(spread.len() > 1);
    }
}
