//! The `gea-router` binary: a distributed shard router speaking the GQL
//! wire protocol in front of multiple `gea-server` backends.

use std::process::ExitCode;
use std::time::Duration;

use gea_router::{Router, RouterConfig};

fn usage() -> String {
    "usage: gea-router [options]\n\
     \n\
     options:\n\
       --addr HOST:PORT        bind address (default 127.0.0.1:7787; port 0 = ephemeral)\n\
       --backend HOST:PORT     a gea-server backend, in shard order (repeatable, required)\n\
       --active N              backends active at start; 0 = all (default 0)\n\
       --workers N             client worker threads (default 4)\n\
       --queue N               accepted connections that may wait (default 16)\n\
       --health-interval-ms N  backend health-probe cadence (default 500)\n\
       --connect-timeout-ms N  per-backend connect timeout (default 2000)\n\
       --help                  this text\n\
     \n\
     The router scatters mine/populate/groups across the active backends\n\
     and replicates every other write; replies are byte-identical to a\n\
     single gea-server. Admin verbs: `backends`, `rebalance <k>`."
        .to_string()
}

fn parse_args(args: &[String]) -> Result<RouterConfig, String> {
    let mut config = RouterConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = &args[i];
        let mut value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--backend" => config.backends.push(value("--backend")?),
            "--active" => {
                config.active = value("--active")?
                    .parse()
                    .map_err(|_| "--active needs a number".to_string())?
            }
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?
            }
            "--queue" => {
                config.queue_depth = value("--queue")?
                    .parse()
                    .map_err(|_| "--queue needs a number".to_string())?
            }
            "--health-interval-ms" => {
                let ms: u64 = value("--health-interval-ms")?
                    .parse()
                    .map_err(|_| "--health-interval-ms needs a number".to_string())?;
                config.health_interval = Duration::from_millis(ms);
            }
            "--connect-timeout-ms" => {
                let ms: u64 = value("--connect-timeout-ms")?
                    .parse()
                    .map_err(|_| "--connect-timeout-ms needs a number".to_string())?;
                config.connect_timeout = Duration::from_millis(ms);
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown option {other}\n\n{}", usage())),
        }
        i += 1;
    }
    if config.backends.is_empty() {
        return Err(format!("at least one --backend is required\n\n{}", usage()));
    }
    Ok(config)
}

/// SIGINT/SIGTERM handling without external crates: a signal flips an
/// atomic; a watcher thread turns that into a graceful shutdown.
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static SIGNALLED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
    }

    #[cfg(unix)]
    pub fn install() {
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }

    #[cfg(not(unix))]
    pub fn install() {}

    pub fn watch(handle: gea_router::RouterHandle) {
        std::thread::Builder::new()
            .name("gea-router-signals".to_string())
            .spawn(move || loop {
                if SIGNALLED.load(Ordering::SeqCst) {
                    handle.shutdown();
                    return;
                }
                std::thread::sleep(std::time::Duration::from_millis(100));
            })
            .ok();
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(config) => config,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let router = match Router::bind(config.clone()) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("gea-router: cannot bind {}: {e}", config.addr);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "gea-router listening on {} over {} backend(s)",
        router.local_addr(),
        config.backends.len()
    );
    sig::install();
    sig::watch(router.handle());
    match router.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("gea-router: {e}");
            ExitCode::FAILURE
        }
    }
}
