//! The backend pool: per-backend health state with probe backoff, and
//! the connections a client handler (or the health thread) holds to
//! individual backends.
//!
//! Health is a pool-wide fact (`AtomicBool` per backend) so a transport
//! failure observed by one handler fails every other handler's pending
//! requests against that backend *fast* — they check `is_up` before
//! sending instead of discovering the loss one timeout at a time. The
//! health thread is the only writer that brings a backend back, and it
//! only does so after re-replicating every known session (see
//! [`crate::Router`]'s health loop).

use std::io::{self};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use gea_server::client::GeaClient;
use gea_server::wire::Reply;

/// Ceiling for the probe backoff so a restarted backend is never more
/// than a few seconds from re-admission.
const MAX_BACKOFF: Duration = Duration::from_secs(5);

/// One configured backend's shared state.
pub(crate) struct BackendState {
    addr: String,
    up: AtomicBool,
    /// Consecutive failed probes, for exponential backoff.
    fails: AtomicU32,
    /// Millis since pool epoch before which a down backend is not probed.
    next_probe_ms: AtomicU64,
    /// Bumped on every re-admission, so handlers drop connections that
    /// predate a backend restart instead of failing once on the stale
    /// socket.
    admissions: AtomicU64,
}

/// The fixed, ordered set of configured backends. Order is identity:
/// shard *i* of a scatter always goes to the *i*-th healthy active
/// backend, and the active set is always the prefix `[0, active)`.
pub struct BackendPool {
    epoch: Instant,
    backends: Vec<BackendState>,
}

impl BackendPool {
    pub(crate) fn new(addrs: &[String]) -> BackendPool {
        BackendPool {
            epoch: Instant::now(),
            backends: addrs
                .iter()
                .map(|addr| BackendState {
                    addr: addr.clone(),
                    up: AtomicBool::new(true),
                    fails: AtomicU32::new(0),
                    next_probe_ms: AtomicU64::new(0),
                    admissions: AtomicU64::new(0),
                })
                .collect(),
        }
    }

    /// Number of configured backends.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the pool is empty (it never is for a bound router).
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The `i`-th backend's address.
    pub fn addr(&self, i: usize) -> &str {
        &self.backends[i].addr
    }

    /// Whether backend `i` is currently believed healthy.
    pub fn is_up(&self, i: usize) -> bool {
        self.backends[i].up.load(Ordering::SeqCst)
    }

    /// Record a transport failure against backend `i`: pending requests
    /// from every handler now fail fast instead of re-discovering the
    /// loss, and the health thread takes over re-admission.
    pub(crate) fn mark_down(&self, i: usize) {
        self.backends[i].up.store(false, Ordering::SeqCst);
    }

    /// Re-admit backend `i` (health thread only, after resync).
    pub(crate) fn mark_up(&self, i: usize) {
        self.backends[i].admissions.fetch_add(1, Ordering::SeqCst);
        self.backends[i].up.store(true, Ordering::SeqCst);
        self.backends[i].fails.store(0, Ordering::SeqCst);
        self.backends[i].next_probe_ms.store(0, Ordering::SeqCst);
    }

    /// The re-admission counter for backend `i`; a handler connection
    /// stamped with an older value predates a restart and must be
    /// re-established.
    pub(crate) fn admissions(&self, i: usize) -> u64 {
        self.backends[i].admissions.load(Ordering::SeqCst)
    }

    /// Whether a down backend's backoff window has elapsed.
    pub(crate) fn due_for_probe(&self, i: usize) -> bool {
        let now_ms = self.epoch.elapsed().as_millis() as u64;
        now_ms >= self.backends[i].next_probe_ms.load(Ordering::SeqCst)
    }

    /// Record a failed probe and push the next one out exponentially
    /// (base `interval`, capped at [`MAX_BACKOFF`]).
    pub(crate) fn note_probe_failure(&self, i: usize, interval: Duration) {
        let fails = self.backends[i].fails.fetch_add(1, Ordering::SeqCst) + 1;
        let backoff = interval
            .saturating_mul(1u32 << fails.min(6))
            .min(MAX_BACKOFF);
        let next = (self.epoch.elapsed() + backoff).as_millis() as u64;
        self.backends[i].next_probe_ms.store(next, Ordering::SeqCst);
    }
}

/// Resolve and connect with a bounded timeout, so a black-holed backend
/// cannot hang a handler.
fn connect_timeout(addr: &str, timeout: Duration) -> io::Result<TcpStream> {
    let mut last = io::Error::new(io::ErrorKind::AddrNotAvailable, "no address resolved");
    let addrs: Vec<SocketAddr> = addr.to_socket_addrs()?.collect();
    for a in addrs {
        match TcpStream::connect_timeout(&a, timeout) {
            Ok(s) => return Ok(s),
            Err(e) => last = e,
        }
    }
    Err(last)
}

/// One live connection to one backend, remembering which session the
/// backend-side connection is attached to (its server-side `current`),
/// so data commands can lazily re-align it after the client `use`s a
/// different session.
pub(crate) struct BackendConn {
    client: GeaClient,
    /// The backend connection's server-side current session. Servers
    /// initialize to `"default"`.
    pub(crate) session: String,
    /// [`BackendPool::admissions`] at connect time; a mismatch means the
    /// backend restarted underneath this connection.
    pub(crate) admission: u64,
}

impl BackendConn {
    pub(crate) fn connect(addr: &str, timeout: Duration) -> io::Result<BackendConn> {
        let stream = connect_timeout(addr, timeout)?;
        // Hand the connected stream to GeaClient by address reuse: the
        // client re-connects internally, so just connect directly.
        drop(stream);
        Ok(BackendConn {
            client: GeaClient::connect(addr)?,
            session: "default".to_string(),
            admission: 0,
        })
    }

    /// One request/reply round trip.
    pub(crate) fn request(&mut self, line: &str) -> io::Result<Reply> {
        self.client.request(line)
    }
}

/// One short-lived liveness probe: connect and `ping`. Any parseable
/// reply — even `ERR EBUSY` from a saturated server — counts as alive;
/// only transport failures are death.
pub(crate) fn probe(addr: &str, timeout: Duration) -> bool {
    let Ok(mut conn) = BackendConn::connect(addr, timeout) else {
        return false;
    };
    conn.request("ping").is_ok()
}
