//! # gea-exec — the sharded parallel execution engine
//!
//! Every operator in `gea-core` is single-threaded; this crate fans the
//! embarrassingly parallel ones — `mine` materialization, `populate`
//! (all three evaluation strategies), and `aggregate` — across a
//! hand-rolled scoped worker pool, one contiguous shard per job, and
//! merges the shard results with an order-stable reduction.
//!
//! The contract is **byte identity**: for any shard count and any thread
//! count, a sharded driver returns exactly the bits the serial operator
//! would. That holds because
//!
//! * the tag-rotated [`gea_sage::ExpressionMatrix`] stores each tag's
//!   values as one contiguous physical row, so partitioning by tag (for
//!   `aggregate`) or by library (for `populate`) splits the input into
//!   ranges whose per-item arithmetic never crosses a shard boundary;
//! * every shard runs the *serial* per-item code (`gea-core` exposes its
//!   per-row arithmetic precisely so no floating-point reassociation can
//!   creep in); and
//! * shards are merged by concatenation in shard-index order, which by
//!   construction is the serial iteration order.
//!
//! The pool is built on [`std::thread::scope`] — the build is offline, so
//! no rayon — and sized by [`ExecConfig`] (re-exported from `gea-core`),
//! which defaults to the machine's available parallelism.

#![warn(missing_docs)]

pub mod drivers;
pub mod parts;
pub mod pool;
pub mod scratch;
pub mod session_ext;
pub mod shard;

pub use drivers::{
    aggregate_sharded, aggregate_tags_sharded, isa_mine_sharded, merge_shards, mine_sharded,
    populate_columnar_sharded, populate_indexed_sharded, populate_scan_sharded, populate_sharded,
    simplex_mine_sharded,
};
pub use gea_core::session::{ExecConfig, ExecEvent};
pub use parts::{
    aggregate_rows_part, isa_clusters_from_modules, isa_modules_part, mine_clusters_part,
    populate_hits_part,
};
pub use pool::run_jobs;
pub use scratch::ScratchPool;
pub use session_ext::{
    calculate_fascicles_sharded, form_control_groups_sharded, mine_with_backend_sharded,
    populate_session_sharded,
};
pub use shard::ShardPlan;

/// Wall/busy accounting for one sharded execution. `busy_us` sums the
/// per-job busy times, so `busy_us / wall_us` approximates the achieved
/// parallelism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Number of shards the input was split into.
    pub shards: usize,
    /// Wall-clock duration of the parallel section, microseconds.
    pub wall_us: u64,
    /// Summed per-worker busy time (CPU-time proxy), microseconds.
    pub busy_us: u64,
}

impl ExecStats {
    /// Tag these stats with an operator name, producing the event the
    /// session-level wrappers note on the [`gea_core::GeaSession`].
    pub fn event(self, op: &'static str) -> ExecEvent {
        ExecEvent {
            op,
            shards: self.shards,
            wall_us: self.wall_us,
            busy_us: self.busy_us,
        }
    }
}
