//! Shard-scoped partial computations for cross-process scatter/gather.
//!
//! `gea-router` partitions a macro operation across N `gea-server`
//! backends with the *same* [`ShardPlan`] the in-process drivers use:
//! backend *i* of *k* computes shard *i*'s partial with the functions
//! here (the exact per-item serial kernels from `gea-core`), ships the
//! partial back, and the router concatenates the k partials in shard
//! order with [`merge_shards`](crate::drivers::merge_shards). Because
//! each function evaluates precisely the range `ShardPlan::range(i)`
//! with the serial code, the concatenation is byte-identical to the
//! serial operator — the same argument (and the same plan arithmetic)
//! as the in-process sharded drivers, lifted across process boundaries.
//!
//! One subtlety: [`ShardPlan::new`] clamps the shard count to the item
//! count, so when an operation has fewer items than backends the plan is
//! *shorter* than `k`. Every function here returns an **empty partial**
//! for shard indexes at or past `plan.len()` — a backend asked for shard
//! 2 of 3 over a 2-group mine contributes nothing, exactly as if the
//! serial loop had never reached it.

use gea_cluster::ToleranceVector;
use gea_core::mine::{materialize_cluster, mine_groups, MinedCluster, Miner};
use gea_core::populate::{columnar_prune_with, resolve_conditions};
use gea_core::sumy::{aggregate_tag_rows_with, SumyRow, SumyTable};
use gea_core::EnumTable;
use gea_mine::isa::{converge_seed, dedupe_modules, IsaModule, IsaParams, IsaScores};
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;
use gea_sage::ExpressionMatrix;

use crate::shard::ShardPlan;

/// Resolve shard `i` of `k` over `n` items, honouring the plan clamp:
/// `None` when the plan is shorter than `k` and this shard got no items.
fn plan_range(n: usize, shard: usize, shards: usize) -> Option<(usize, usize)> {
    let plan = ShardPlan::new(n, shards);
    if shard >= plan.len() {
        return None;
    }
    Some(plan.range(shard))
}

/// Shard `shard` of `shards` of a `mine` run: the clustering pass
/// ([`mine_groups`]) is recomputed serially — it is iterative and cheap,
/// and rerunning it on every backend is what keeps the group list (and
/// therefore the shard boundaries) identical everywhere — then only this
/// shard's slice of clusters is materialized, mirroring
/// [`mine_sharded`](crate::drivers::mine_sharded)'s per-shard job.
pub fn mine_clusters_part(
    table: &EnumTable,
    base_name: &str,
    miner: &Miner,
    tolerance: Option<&ToleranceVector>,
    shard: usize,
    shards: usize,
) -> Vec<MinedCluster> {
    let groups = mine_groups(table, miner, tolerance);
    let Some((lo, hi)) = plan_range(groups.len(), shard, shards) else {
        return Vec::new();
    };
    groups[lo..hi]
        .iter()
        .enumerate()
        .map(|(off, (records, attrs))| {
            materialize_cluster(table, base_name, lo + off, records.clone(), attrs.clone())
        })
        .collect()
}

/// Shard `shard` of `shards` of an ISA run: the z-scored views are built
/// locally (deterministic from the table), the seed range is partitioned,
/// and each seed converges with the serial [`converge_seed`] — the same
/// job [`isa_mine_sharded`](crate::drivers::isa_mine_sharded) runs.
/// Gather with [`isa_clusters_from_modules`] after concatenating the
/// per-shard module lists in shard order.
pub fn isa_modules_part(
    table: &EnumTable,
    params: &IsaParams,
    shard: usize,
    shards: usize,
) -> Vec<Option<IsaModule>> {
    let scores = IsaScores::build(table);
    let Some((lo, hi)) = plan_range(params.seeds, shard, shards) else {
        return Vec::new();
    };
    (lo..hi)
        .map(|seed| converge_seed(&scores, seed, params.seeds, params))
        .collect()
}

/// The gather half of a scattered ISA run: dedupe the seed-order module
/// list (the serial seed order, by the shard-order concatenation) and
/// materialize the surviving clusters — identical to the tail of
/// [`isa_mine_sharded`](crate::drivers::isa_mine_sharded).
pub fn isa_clusters_from_modules(
    table: &EnumTable,
    base_name: &str,
    modules: Vec<Option<IsaModule>>,
) -> Vec<MinedCluster> {
    dedupe_modules(modules)
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| materialize_cluster(table, base_name, i, records, attrs))
        .collect()
}

/// Shard `shard` of `shards` of a `populate` qualification: the library
/// axis is partitioned and this range is pruned with the serial columnar
/// kernel, exactly like
/// [`populate_columnar_sharded`](crate::drivers::populate_columnar_sharded)'s
/// per-shard job. Hits come back in library order within the shard, so
/// shard-order concatenation is the serial hit order.
pub fn populate_hits_part(
    sumy: &SumyTable,
    table: &EnumTable,
    shard: usize,
    shards: usize,
) -> Vec<LibraryId> {
    let resolved = resolve_conditions(sumy, table);
    let plan = ShardPlan::for_libraries(table, shards);
    if shard >= plan.len() {
        return Vec::new();
    }
    let (lo, hi) = plan.range(shard);
    let mut candidates = Vec::new();
    columnar_prune_with(&resolved, table, lo, hi, &mut candidates);
    candidates
        .iter()
        .map(|&l| LibraryId((lo + l as usize) as u32))
        .collect()
}

/// Shard `shard` of `shards` of a compact-tag aggregation: the requested
/// tag list is partitioned and this slice runs the blocked columnar
/// kernel, exactly like
/// [`aggregate_tags_sharded`](crate::drivers::aggregate_tags_sharded)'s
/// per-shard fill.
pub fn aggregate_rows_part(
    matrix: &ExpressionMatrix,
    tags: &[TagId],
    shard: usize,
    shards: usize,
) -> Vec<SumyRow> {
    let Some((lo, hi)) = plan_range(tags.len(), shard, shards) else {
        return Vec::new();
    };
    let mut rows = Vec::with_capacity(hi - lo);
    aggregate_tag_rows_with(matrix, &tags[lo..hi], &mut |row| rows.push(row));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drivers::merge_shards;
    use gea_core::session::GeaSession;
    use gea_core::sumy::aggregate_tags;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};
    use gea_sage::TissueType;

    fn demo_session() -> GeaSession {
        let (corpus, _) = generate(&GeneratorConfig::demo(42));
        let mut s = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        s.create_tissue_dataset("Ebrain", &TissueType::Brain)
            .unwrap();
        s
    }

    #[test]
    fn aggregate_parts_concatenate_to_serial_rows() {
        let s = demo_session();
        let table = s.enum_table("Ebrain").unwrap();
        let tags: Vec<TagId> = (0..table.n_tags()).map(|t| TagId(t as u32)).collect();
        let serial = aggregate_tags("x", &table.matrix, &tags);
        for k in [1usize, 2, 3, 7, 1000] {
            let parts: Vec<Vec<SumyRow>> = (0..k)
                .map(|i| aggregate_rows_part(&table.matrix, &tags, i, k))
                .collect();
            let merged = SumyTable::new("x", merge_shards(parts));
            assert_eq!(serial, merged, "k={k}");
        }
    }

    #[test]
    fn oversized_shard_index_is_empty() {
        let s = demo_session();
        let table = s.enum_table("Ebrain").unwrap();
        // 2 tags over 5 shards: the plan clamps to 2; shards 2..5 get nothing.
        let tags = [TagId(0), TagId(1)];
        assert!(!aggregate_rows_part(&table.matrix, &tags, 0, 5).is_empty());
        assert!(aggregate_rows_part(&table.matrix, &tags, 2, 5).is_empty());
        assert!(aggregate_rows_part(&table.matrix, &tags, 4, 5).is_empty());
    }
}
