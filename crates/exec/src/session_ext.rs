//! Session-level wrappers: the `GeaSession` macro operations with their
//! parallelizable inner operators routed through the sharded drivers.
//!
//! Each wrapper reads the session's own [`ExecConfig`], runs the parallel
//! section, notes an [`gea_core::ExecEvent`] on the session (which
//! front-ends like `gea-server` drain into their `stats` counters), and
//! hands the result to the *same* bookkeeping code the serial macro
//! operation uses — so lineage, relational materialization, and naming
//! are identical by construction, and the data is identical by the
//! drivers' byte-identity contract.

use gea_cluster::FascicleParams;
use gea_core::mine::Miner;
use gea_core::session::{ControlGroups, GeaError, GeaSession};
use gea_mine::isa::IsaParams;
use gea_mine::simplex::SimplexParams;
use gea_mine::{MineBackend, ResolvedParams};
use gea_sage::library::LibraryProperty;

use crate::drivers::{
    aggregate_tags_sharded, isa_mine_sharded, mine_sharded, populate_columnar_sharded,
    simplex_mine_sharded,
};
use crate::ExecStats;

/// [`GeaSession::calculate_fascicles`] with the per-cluster
/// materialization fanned across the session's executor. Byte-identical
/// to the serial macro operation.
pub fn calculate_fascicles_sharded(
    session: &mut GeaSession,
    dataset: &str,
    out: &str,
    width_fraction: f64,
    params: &FascicleParams,
) -> Result<Vec<String>, GeaError> {
    let cfg = session.exec_config();
    let table = session.enum_table(dataset)?.clone();
    let tol = gea_core::mine::generate_metadata(&table, width_fraction);
    let (clusters, stats) = mine_sharded(
        &table,
        out,
        &Miner::Fascicles(params.clone()),
        Some(&tol),
        &cfg,
    );
    session.note_exec(stats.event("mine"));
    session.install_mined_fascicles(dataset, width_fraction, params, &table, clusters)
}

/// Run a registry [`MineBackend`] over `dataset` through the sharded
/// drivers and install the results as fascicles, recording backend
/// provenance (`backend.name()` plus the resolved parameters) on every
/// fascicle record. The lineage operation label is the backend name in
/// title case (`isa` → `ISA`, `simplex` → `Simplex`), so mined tables of
/// different algorithms are distinguishable in `lineage` output.
///
/// The `fascicles` backend routes through
/// [`calculate_fascicles_sharded`]'s historic path, keeping its lineage
/// byte-identical to the pre-backend toolkit; `isa` and `simplex` run
/// their dedicated sharded drivers ([`isa_mine_sharded`],
/// [`simplex_mine_sharded`]), each byte-identical to the serial
/// `MineBackend::mine` for every shard × thread configuration.
pub fn mine_with_backend_sharded(
    session: &mut GeaSession,
    dataset: &str,
    out: &str,
    backend: &dyn MineBackend,
    params: &ResolvedParams,
) -> Result<Vec<String>, GeaError> {
    let cfg = session.exec_config();
    match backend.name() {
        "fascicles" => {
            let n_tags = session.enum_table(dataset)?.n_tags();
            let fp = FascicleParams {
                min_compact_attrs: n_tags * params.uint("k_pct") as usize / 100,
                min_records: params.uint("min_records") as usize,
                batch_size: params.uint("batch") as usize,
            };
            calculate_fascicles_sharded(session, dataset, out, gea_mine::WIDTH_FRACTION, &fp)
        }
        "isa" => {
            let table = session.enum_table(dataset)?.clone();
            let (clusters, stats) =
                isa_mine_sharded(&table, out, &IsaParams::from_resolved(params), &cfg);
            session.note_exec(stats.event("mine"));
            install_backend_clusters(session, dataset, "ISA", backend, params, &table, clusters)
        }
        "simplex" => {
            let table = session.enum_table(dataset)?.clone();
            let (clusters, stats) =
                simplex_mine_sharded(&table, out, &SimplexParams::from_resolved(params), &cfg);
            session.note_exec(stats.event("mine"));
            install_backend_clusters(
                session, dataset, "Simplex", backend, params, &table, clusters,
            )
        }
        other => Err(GeaError::NotFound {
            kind: "mining backend",
            name: other.to_string(),
        }),
    }
}

fn install_backend_clusters(
    session: &mut GeaSession,
    dataset: &str,
    operation: &str,
    backend: &dyn MineBackend,
    params: &ResolvedParams,
    table: &gea_core::EnumTable,
    clusters: Vec<gea_core::mine::MinedCluster>,
) -> Result<Vec<String>, GeaError> {
    let mut lineage_params = vec![("tissue_dataset".to_string(), dataset.to_string())];
    lineage_params.extend(params.to_strings());
    session.install_mined_clusters(
        dataset,
        operation,
        lineage_params,
        backend.name(),
        params.to_strings(),
        table,
        clusters,
    )
}

/// [`GeaSession::form_control_groups`] with the three compact-tag
/// aggregations routed through [`aggregate_tags_sharded`]. The wall/busy
/// times of the three parallel sections are summed into one `aggregate`
/// event.
pub fn form_control_groups_sharded(
    session: &mut GeaSession,
    fascicle: &str,
    property: LibraryProperty,
) -> Result<ControlGroups, GeaError> {
    let cfg = session.exec_config();
    let mut total = ExecStats::default();
    let result = session.form_control_groups_with(fascicle, property, |name, matrix, tags| {
        let (sumy, stats) = aggregate_tags_sharded(name, matrix, tags, &cfg);
        total.shards += stats.shards;
        total.wall_us += stats.wall_us;
        total.busy_us += stats.busy_us;
        sumy
    });
    if total.shards > 0 {
        session.note_exec(total.event("aggregate"));
    }
    result
}

/// [`GeaSession::populate_from_sumy`] with library qualification routed
/// through [`populate_columnar_sharded`] (the same pruning kernel the
/// serial macro operation uses). Byte-identical to the serial path: the
/// shard plan preserves library order, so the hit list — and everything
/// the shared bookkeeping derives from it — is the same.
pub fn populate_session_sharded(
    session: &mut GeaSession,
    name: &str,
    sumy: &str,
    dataset: &str,
) -> Result<usize, GeaError> {
    let cfg = session.exec_config();
    let mut noted = None;
    let result = session.populate_from_sumy_with(name, sumy, dataset, |s, t| {
        let (libs, _pstats, exec) = populate_columnar_sharded(s, t, &cfg);
        noted = Some(exec);
        libs
    });
    if let Some(stats) = noted {
        session.note_exec(stats.event("populate"));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_core::ExecConfig;
    use gea_sage::clean::CleaningConfig;
    use gea_sage::generate::{generate, GeneratorConfig};
    use gea_sage::TissueType;

    fn sessions() -> (GeaSession, GeaSession) {
        let (corpus, _) = generate(&GeneratorConfig::demo(77));
        let serial = GeaSession::open(corpus.clone(), &CleaningConfig::default()).unwrap();
        let sharded = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
        (serial, sharded)
    }

    fn fascicle_params(s: &GeaSession) -> FascicleParams {
        let n_tags = s.enum_table("Ebrain").unwrap().n_tags();
        FascicleParams {
            min_compact_attrs: n_tags * 7 / 10,
            min_records: 3,
            batch_size: 6,
        }
    }

    #[test]
    fn sharded_session_pipeline_matches_serial() {
        let (mut serial, mut sharded) = sessions();
        sharded.set_exec_config(ExecConfig {
            threads: 4,
            shards: 3,
        });
        for s in [&mut serial, &mut sharded] {
            s.create_tissue_dataset("Ebrain", &TissueType::Brain)
                .unwrap();
        }
        let params = fascicle_params(&serial);
        let names_serial = serial
            .calculate_fascicles("Ebrain", "brain", 0.10, &params)
            .unwrap();
        let names_sharded =
            calculate_fascicles_sharded(&mut sharded, "Ebrain", "brain", 0.10, &params).unwrap();
        assert_eq!(names_serial, names_sharded);
        for name in &names_serial {
            assert_eq!(serial.sumy(name).unwrap(), sharded.sumy(name).unwrap());
            assert_eq!(
                serial.enum_table(name).unwrap().matrix,
                sharded.enum_table(name).unwrap().matrix
            );
        }
        // Executor activity was noted on the sharded session only.
        assert!(serial.drain_exec_events().is_empty());
        let events = sharded.drain_exec_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, "mine");

        // Control groups, where a pure fascicle exists.
        for name in &names_serial {
            let a = serial.form_control_groups(name, LibraryProperty::Cancer);
            let b = form_control_groups_sharded(&mut sharded, name, LibraryProperty::Cancer);
            match (a, b) {
                (Ok(ga), Ok(gb)) => {
                    assert_eq!(ga, gb);
                    for n in [&ga.in_fascicle, &ga.outside_fascicle, &ga.contrast] {
                        assert_eq!(serial.sumy(n).unwrap(), sharded.sumy(n).unwrap());
                    }
                    let events = sharded.drain_exec_events();
                    assert_eq!(events.len(), 1);
                    assert_eq!(events[0].op, "aggregate");
                    return;
                }
                (Err(_), Err(_)) => continue,
                (a, b) => panic!("serial/sharded disagreed: {a:?} vs {b:?}"),
            }
        }
    }
}
