//! The sharded parallel drivers: byte-identical fan-out/merge versions of
//! `aggregate`, `populate` (scan, columnar, indexed), and `mine`.
//!
//! Every driver follows the same shape: build a [`ShardPlan`] over the
//! operator's natural axis, run one job per shard on the scoped pool
//! ([`run_jobs`]), with each job executing the *serial* per-item code from
//! `gea-core`, then merge in shard order. See each driver's comment for
//! why its merge reproduces the serial result exactly — including the
//! deterministic work counters in [`PopulateStats`].

use std::time::Instant;

use gea_cluster::ToleranceVector;
use gea_core::mine::{materialize_cluster, mine_groups, MinedCluster, Miner};
use gea_core::populate::{
    columnar_prune_range, index_probe, library_satisfies, resolve_conditions, PopulateIndex,
    PopulateStats,
};
use gea_core::sumy::{aggregate_row, aggregate_tags_row, SumyTable};
use gea_core::{EnumTable, ExecConfig};
use gea_mine::isa::{converge_seed, dedupe_modules, IsaParams, IsaScores};
use gea_mine::simplex::{
    assign_range, clr_embed, groups_from_assignment, kmedoids_with, SimplexParams,
};
use gea_relstore::index::intersect_row_lists;
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;
use gea_sage::ExpressionMatrix;

use crate::pool::run_jobs;
use crate::shard::ShardPlan;
use crate::ExecStats;

/// Run one job per shard of `plan`, timing the whole parallel section and
/// each job's busy time, and return the per-shard results in shard order
/// plus the filled-in [`ExecStats`].
fn run_sharded<T: Send>(
    cfg: &ExecConfig,
    plan: &ShardPlan,
    job: impl Fn(usize, usize, usize) -> T + Sync,
) -> (Vec<T>, ExecStats) {
    let start = Instant::now();
    let results = run_jobs(cfg.threads, plan.len(), |i| {
        let (lo, hi) = plan.range(i);
        let begin = Instant::now();
        let out = job(i, lo, hi);
        (out, begin.elapsed().as_micros() as u64)
    });
    let wall_us = start.elapsed().as_micros() as u64;
    let busy_us = results.iter().map(|(_, b)| b).sum();
    let outs = results.into_iter().map(|(out, _)| out).collect();
    (
        outs,
        ExecStats {
            shards: plan.len(),
            wall_us,
            busy_us,
        },
    )
}

/// Sharded [`gea_core::sumy::aggregate`]: partition the tag rows, compute
/// each shard's rows with the serial per-tag arithmetic
/// ([`aggregate_row`]), and concatenate in shard order. The concatenation
/// is the serial row order, and `SumyTable::new`'s stable sort of unique
/// tags maps equal inputs to equal outputs — byte-identical.
pub fn aggregate_sharded(
    name: &str,
    matrix: &ExpressionMatrix,
    cfg: &ExecConfig,
) -> (SumyTable, ExecStats) {
    assert!(
        matrix.n_libraries() > 0,
        "cannot aggregate an ENUM table with no libraries"
    );
    let plan = ShardPlan::new(matrix.n_tags(), cfg.shards);
    let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| {
        (lo..hi)
            .map(|t| aggregate_row(matrix, TagId(t as u32)))
            .collect::<Vec<_>>()
    });
    let rows = shards.into_iter().flatten().collect();
    (SumyTable::new(name, rows), stats)
}

/// Sharded [`gea_core::sumy::aggregate_tags`]: partition the *requested
/// tag list* (not the matrix) into contiguous slices; each shard runs the
/// serial [`aggregate_tags_row`] arithmetic over its slice.
pub fn aggregate_tags_sharded(
    name: &str,
    matrix: &ExpressionMatrix,
    tags: &[TagId],
    cfg: &ExecConfig,
) -> (SumyTable, ExecStats) {
    assert!(
        matrix.n_libraries() > 0,
        "cannot aggregate an ENUM table with no libraries"
    );
    let plan = ShardPlan::new(tags.len(), cfg.shards);
    let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| {
        tags[lo..hi]
            .iter()
            .map(|&tid| aggregate_tags_row(matrix, tid))
            .collect::<Vec<_>>()
    });
    let rows = shards.into_iter().flatten().collect();
    (SumyTable::new(name, rows), stats)
}

/// Sharded [`gea_core::populate::populate_scan`]: partition the libraries;
/// each shard tests its range with the serial [`library_satisfies`] check
/// (early exit per library, one comparison charged per evaluated
/// condition). A library's qualification and comparison count depend only
/// on its own cells, so concatenated hits are the serial hit order and
/// summed shard comparisons equal the serial total.
pub fn populate_scan_sharded(
    sumy: &SumyTable,
    table: &EnumTable,
    cfg: &ExecConfig,
) -> (Vec<LibraryId>, PopulateStats, ExecStats) {
    let resolved = resolve_conditions(sumy, table);
    let plan = ShardPlan::for_libraries(table, cfg.shards);
    let (shards, exec) = run_sharded(cfg, &plan, |_, lo, hi| {
        let mut comparisons = 0u64;
        let hits: Vec<LibraryId> = (lo..hi)
            .map(|l| LibraryId(l as u32))
            .filter(|&lib| library_satisfies(table, &resolved, lib, None, &mut comparisons))
            .collect();
        (hits, comparisons)
    });
    let mut stats = PopulateStats {
        candidates: table.n_libraries(),
        ..PopulateStats::default()
    };
    let mut hits = Vec::new();
    for (shard_hits, comparisons) in shards {
        hits.extend(shard_hits);
        stats.comparisons += comparisons;
    }
    (hits, stats, exec)
}

/// Sharded [`gea_core::populate::populate_columnar`]: partition the
/// libraries; each shard runs the serial pruning loop
/// ([`columnar_prune_range`]) over its range, stopping when *its*
/// candidates empty. Pruning decisions are per-library, so each range
/// survives exactly the libraries the global loop would; and since the
/// global loop stops only when every range is empty, the serial
/// rows-processed count is the maximum over shards — the merged
/// comparison counter is therefore `max(rows) × n_libraries`, exactly the
/// serial charge.
pub fn populate_columnar_sharded(
    sumy: &SumyTable,
    table: &EnumTable,
    cfg: &ExecConfig,
) -> (Vec<LibraryId>, PopulateStats, ExecStats) {
    let resolved = resolve_conditions(sumy, table);
    let n = table.n_libraries();
    let plan = ShardPlan::for_libraries(table, cfg.shards);
    let (shards, exec) = run_sharded(cfg, &plan, |_, lo, hi| {
        columnar_prune_range(&resolved, table, lo, hi)
    });
    let mut hits = Vec::new();
    let mut max_rows = 0usize;
    for (shard_hits, rows_processed) in shards {
        hits.extend(shard_hits);
        max_rows = max_rows.max(rows_processed);
    }
    let stats = PopulateStats {
        candidates: n,
        comparisons: (max_rows * n) as u64,
        ..PopulateStats::default()
    };
    (hits, stats, exec)
}

/// Sharded [`gea_core::populate::populate_indexed`]: the index probe and
/// candidate-list intersection stay serial (they are cheap and
/// order-sensitive); the surviving candidate list is partitioned and
/// verified in parallel with the serial per-candidate check. Falls back to
/// [`populate_scan_sharded`] when no index hits, like the serial driver.
pub fn populate_indexed_sharded(
    sumy: &SumyTable,
    table: &EnumTable,
    index: &PopulateIndex,
    cfg: &ExecConfig,
) -> (Vec<LibraryId>, PopulateStats, ExecStats) {
    let resolved = resolve_conditions(sumy, table);
    let (hit_lists, covered) = index_probe(sumy, index);
    let indexes_hit = hit_lists.len();
    if indexes_hit == 0 {
        return populate_scan_sharded(sumy, table, cfg);
    }
    let candidates = intersect_row_lists(hit_lists);
    let mut stats = PopulateStats {
        indexes_hit,
        candidates: candidates.len(),
        comparisons: 0,
    };
    let plan = ShardPlan::new(candidates.len(), cfg.shards);
    let (shards, exec) = run_sharded(cfg, &plan, |_, lo, hi| {
        let mut comparisons = 0u64;
        let hits: Vec<LibraryId> = candidates[lo..hi]
            .iter()
            .map(|&r| LibraryId(r as u32))
            .filter(|&lib| {
                library_satisfies(table, &resolved, lib, Some(&covered), &mut comparisons)
            })
            .collect();
        (hits, comparisons)
    });
    let mut hits = Vec::new();
    for (shard_hits, comparisons) in shards {
        hits.extend(shard_hits);
        stats.comparisons += comparisons;
    }
    (hits, stats, exec)
}

/// Sharded [`gea_core::populate::populate`] (the macro-operation): a
/// sharded scan followed by the same serial materialization of the result
/// ENUM table.
pub fn populate_sharded(
    name: &str,
    sumy: &SumyTable,
    table: &EnumTable,
    cfg: &ExecConfig,
) -> (EnumTable, ExecStats) {
    let (libs, _, exec) = populate_scan_sharded(sumy, table, cfg);
    let restricted = table.with_libraries(name, &libs);
    let tag_ids: Vec<TagId> = sumy
        .tags()
        .filter_map(|t| restricted.matrix.id_of(t))
        .collect();
    (restricted.select_tags(name, &tag_ids), exec)
}

/// Sharded [`gea_core::mine::mine`]: the clustering pass
/// ([`mine_groups`]) stays serial — the greedy/k-means/agglomerative
/// algorithms are iterative — but each found cluster's materialization
/// (member submatrix selection plus compact-tag aggregation, the dominant
/// cost at mining scale) is independent, so clusters are partitioned
/// across the pool and concatenated in cluster order.
pub fn mine_sharded(
    table: &EnumTable,
    base_name: &str,
    miner: &Miner,
    tolerance: Option<&ToleranceVector>,
    cfg: &ExecConfig,
) -> (Vec<MinedCluster>, ExecStats) {
    let groups = mine_groups(table, miner, tolerance);
    let plan = ShardPlan::new(groups.len(), cfg.shards);
    let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| {
        groups[lo..hi]
            .iter()
            .enumerate()
            .map(|(off, (records, attrs))| {
                materialize_cluster(table, base_name, lo + off, records.clone(), attrs.clone())
            })
            .collect::<Vec<_>>()
    });
    (shards.into_iter().flatten().collect(), stats)
}

/// Sharded [`gea_mine::IsaBackend`]: the z-scored views are built once
/// (read-only, shared), the *seed range* is partitioned, and each shard
/// iterates its seeds with the serial [`converge_seed`]. Seeds never
/// interact, so concatenating the per-shard module lists in shard order is
/// the serial seed order; the shared [`dedupe_modules`] then collapses
/// duplicates identically — byte-identical to `IsaBackend::mine`.
pub fn isa_mine_sharded(
    table: &EnumTable,
    base_name: &str,
    params: &IsaParams,
    cfg: &ExecConfig,
) -> (Vec<MinedCluster>, ExecStats) {
    let scores = IsaScores::build(table);
    let plan = ShardPlan::new(params.seeds, cfg.shards);
    let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| {
        (lo..hi)
            .map(|seed| converge_seed(&scores, seed, params.seeds, params))
            .collect::<Vec<_>>()
    });
    let modules: Vec<_> = shards.into_iter().flatten().collect();
    let groups = dedupe_modules(modules);
    let clusters = groups
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| materialize_cluster(table, base_name, i, records, attrs))
        .collect();
    (clusters, stats)
}

/// Sharded [`gea_mine::SimplexBackend`]: medoid initialization and updates
/// stay serial (they are `O(k·n)` over a handful of medoids and
/// tie-sensitive); the `O(n·k)` assignment step — [`assign_range`]'s
/// documented shard seam — is partitioned over the point range each
/// round. Per-point nearest-medoid decisions are independent, so the
/// concatenation equals `assign_range(.., 0, n)` comparison for
/// comparison, and the whole k-medoids trajectory is byte-identical to
/// the serial `SimplexBackend::mine`. The returned stats sum every
/// assignment round's parallel section.
pub fn simplex_mine_sharded(
    table: &EnumTable,
    base_name: &str,
    params: &SimplexParams,
    cfg: &ExecConfig,
) -> (Vec<MinedCluster>, ExecStats) {
    let points = clr_embed(table, params.zero_repl);
    let plan = ShardPlan::new(points.len(), cfg.shards);
    let mut total = ExecStats::default();
    let (assign, medoids) = kmedoids_with(&points, params.k, params.max_iters, |pts, meds| {
        let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| assign_range(pts, meds, lo, hi));
        total.shards = stats.shards;
        total.wall_us += stats.wall_us;
        total.busy_us += stats.busy_us;
        shards.into_iter().flatten().collect()
    });
    let groups = groups_from_assignment(table.n_tags(), medoids.len(), &assign);
    let clusters = groups
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| materialize_cluster(table, base_name, i, records, attrs))
        .collect();
    (clusters, total)
}
