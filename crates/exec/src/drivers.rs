//! The sharded parallel drivers: byte-identical fan-out/merge versions of
//! `aggregate`, `populate` (scan, columnar, indexed), and `mine`.
//!
//! Every driver follows the same shape: build a [`ShardPlan`] over the
//! operator's natural axis, run one job per shard on the scoped pool
//! ([`run_jobs`]), with each job executing the *serial* per-item code from
//! `gea-core`, then merge in shard order. See each driver's comment for
//! why its merge reproduces the serial result exactly — including the
//! deterministic work counters in [`PopulateStats`].

use std::mem::MaybeUninit;
use std::sync::Mutex;
use std::time::Instant;

use gea_cluster::ToleranceVector;
use gea_core::mine::{materialize_cluster, mine_groups, MinedCluster, Miner};
use gea_core::populate::{
    columnar_prune_with, index_probe, library_satisfies, materialize_populate, resolve_conditions,
    PopulateIndex, PopulateStats,
};
use gea_core::sumy::{aggregate_rows_range_with, aggregate_tag_rows_with, SumyRow, SumyTable};
use gea_core::{EnumTable, ExecConfig};
use gea_mine::isa::{converge_seed, dedupe_modules, IsaParams, IsaScores};
use gea_mine::simplex::{
    assign_range, clr_embed, groups_from_assignment, kmedoids_with, SimplexParams,
};
use gea_relstore::index::intersect_row_lists;
use gea_sage::library::LibraryId;
use gea_sage::tag::TagId;
use gea_sage::ExpressionMatrix;

use crate::pool::run_jobs;
use crate::scratch::ScratchPool;
use crate::shard::ShardPlan;
use crate::ExecStats;

/// Run one job per shard of `plan`, timing the whole parallel section and
/// each job's busy time, and return the per-shard results in shard order
/// plus the filled-in [`ExecStats`].
///
/// The worker count is clamped to the host's parallelism: these jobs are
/// pure compute, so oversubscribing a smaller host buys nothing but
/// context switches — on a 1-core runner a 4-thread config now runs the
/// shards inline instead of paying the scheduler to interleave them.
/// Results are byte-identical at any worker count (that is the crate's
/// contract), so the clamp is invisible except in wall time.
fn run_sharded<T: Send>(
    cfg: &ExecConfig,
    plan: &ShardPlan,
    job: impl Fn(usize, usize, usize) -> T + Sync,
) -> (Vec<T>, ExecStats) {
    let hw = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let start = Instant::now();
    let results = run_jobs(cfg.threads.min(hw), plan.len(), |i| {
        let (lo, hi) = plan.range(i);
        let begin = Instant::now();
        let out = job(i, lo, hi);
        (out, begin.elapsed().as_micros() as u64)
    });
    let wall_us = start.elapsed().as_micros() as u64;
    let busy_us = results.iter().map(|(_, b)| b).sum();
    let outs = results.into_iter().map(|(out, _)| out).collect();
    (
        outs,
        ExecStats {
            shards: plan.len(),
            wall_us,
            busy_us,
        },
    )
}

/// Concatenate per-shard row vectors in shard order without growth
/// reallocations: one exact-capacity allocation, then a move-extend per
/// shard. (The old `flatten().collect()` merge could not size the output
/// up front, so it grew — and re-copied — the accumulated rows.) Used by
/// the cluster-materialization drivers; the aggregate drivers go one step
/// further and skip the merge entirely ([`fill_rows_sharded`]).
///
/// Public because this *is* the determinism seam: concatenation in
/// shard-index order equals serial iteration order, whether the shards
/// were computed by this process's pool or shipped back from remote
/// backends (`gea-router` scatter/gather reuses it unchanged).
pub fn merge_shards<T>(shards: Vec<Vec<T>>) -> Vec<T> {
    let total = shards.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    for shard in shards {
        out.extend(shard);
    }
    out
}

/// Fan a row-producing kernel over `plan`, each shard writing its rows
/// straight into its disjoint slice of one exact-capacity output vector.
/// This *is* the shard merge for the aggregate drivers: per-shard staging
/// vectors and the final move of every row are gone — the allocation and
/// copy that used to eat the sharded `aggregate` win on small hosts.
///
/// `fill(lo, hi, sink)` must emit exactly `hi - lo` rows, in order, for
/// the plan range `[lo, hi)`. Each shard's slice is split off the
/// vector's spare capacity up front behind its own (never contended)
/// mutex, so the parallel writes are all safe code; the one `unsafe` is
/// the final `set_len`, sound because the slices partition `[0, total)`
/// and every job is checked to have filled its slice before the pool
/// joins. If a job panics, the panic propagates with the vector still at
/// length zero — rows written so far leak; they are not double-dropped.
fn fill_rows_sharded(
    cfg: &ExecConfig,
    plan: &ShardPlan,
    total: usize,
    fill: impl Fn(usize, usize, &mut dyn FnMut(SumyRow)) + Sync,
) -> (Vec<SumyRow>, ExecStats) {
    let mut out: Vec<SumyRow> = Vec::with_capacity(total);
    let stats = {
        let mut spare = &mut out.spare_capacity_mut()[..total];
        let mut parts: Vec<Mutex<&mut [MaybeUninit<SumyRow>]>> = Vec::with_capacity(plan.len());
        for i in 0..plan.len() {
            let (lo, hi) = plan.range(i);
            let (head, tail) = spare.split_at_mut(hi - lo);
            parts.push(Mutex::new(head));
            spare = tail;
        }
        let (_, stats) = run_sharded(cfg, plan, |i, lo, hi| {
            let mut part = parts[i].lock().expect("shard output slice poisoned");
            let mut next = 0usize;
            fill(lo, hi, &mut |row| {
                part[next] = MaybeUninit::new(row);
                next += 1;
            });
            assert_eq!(next, hi - lo, "kernel row count diverged from shard range");
        });
        stats
    };
    // SAFETY: the shard slices partition the first `total` slots, every
    // job filled its whole slice (asserted above), and `run_sharded`
    // joined all jobs before returning.
    unsafe { out.set_len(total) };
    (out, stats)
}

/// Sharded [`gea_core::sumy::aggregate`]: partition the tag rows, compute
/// each shard's rows with the blocked columnar kernel
/// ([`aggregate_rows_range_with`] — the same kernel, and therefore the
/// same per-tag operation order, as the serial operator), writing them
/// in place in shard order ([`fill_rows_sharded`]). The assembled vector
/// is the serial row order, and `SumyTable::new` maps equal inputs to
/// equal outputs — byte-identical.
pub fn aggregate_sharded(
    name: &str,
    matrix: &ExpressionMatrix,
    cfg: &ExecConfig,
) -> (SumyTable, ExecStats) {
    assert!(
        matrix.n_libraries() > 0,
        "cannot aggregate an ENUM table with no libraries"
    );
    let plan = ShardPlan::new(matrix.n_tags(), cfg.shards);
    let (rows, stats) = fill_rows_sharded(cfg, &plan, matrix.n_tags(), |lo, hi, sink| {
        aggregate_rows_range_with(matrix, lo, hi, sink)
    });
    (SumyTable::new(name, rows), stats)
}

/// Sharded [`gea_core::sumy::aggregate_tags`]: partition the *requested
/// tag list* (not the matrix) into contiguous slices; each shard runs the
/// blocked kernel ([`aggregate_tag_rows_with`]) over its slice, writing
/// in place like [`aggregate_sharded`].
pub fn aggregate_tags_sharded(
    name: &str,
    matrix: &ExpressionMatrix,
    tags: &[TagId],
    cfg: &ExecConfig,
) -> (SumyTable, ExecStats) {
    assert!(
        matrix.n_libraries() > 0,
        "cannot aggregate an ENUM table with no libraries"
    );
    let plan = ShardPlan::new(tags.len(), cfg.shards);
    let (rows, stats) = fill_rows_sharded(cfg, &plan, tags.len(), |lo, hi, sink| {
        aggregate_tag_rows_with(matrix, &tags[lo..hi], sink)
    });
    (SumyTable::new(name, rows), stats)
}

/// Sharded [`gea_core::populate::populate_scan`]: partition the libraries;
/// each shard tests its range with the serial [`library_satisfies`] check
/// (early exit per library, one comparison charged per evaluated
/// condition). A library's qualification and comparison count depend only
/// on its own cells, so concatenated hits are the serial hit order and
/// summed shard comparisons equal the serial total.
pub fn populate_scan_sharded(
    sumy: &SumyTable,
    table: &EnumTable,
    cfg: &ExecConfig,
) -> (Vec<LibraryId>, PopulateStats, ExecStats) {
    let resolved = resolve_conditions(sumy, table);
    let plan = ShardPlan::for_libraries(table, cfg.shards);
    let (shards, exec) = run_sharded(cfg, &plan, |_, lo, hi| {
        let mut comparisons = 0u64;
        let hits: Vec<LibraryId> = (lo..hi)
            .map(|l| LibraryId(l as u32))
            .filter(|&lib| library_satisfies(table, &resolved, lib, None, &mut comparisons))
            .collect();
        (hits, comparisons)
    });
    let mut stats = PopulateStats {
        candidates: table.n_libraries(),
        ..PopulateStats::default()
    };
    let mut hits = Vec::new();
    for (shard_hits, comparisons) in shards {
        hits.extend(shard_hits);
        stats.comparisons += comparisons;
    }
    (hits, stats, exec)
}

/// Sharded [`gea_core::populate::populate_columnar`]: partition the
/// libraries; each shard runs the serial pruning loop
/// ([`columnar_prune_range`]) over its range, stopping when *its*
/// candidates empty. Pruning decisions are per-library, so each range
/// survives exactly the libraries the global loop would; and since the
/// global loop stops only when every range is empty, the serial
/// rows-processed count is the maximum over shards — the merged
/// comparison counter is therefore `max(rows) × n_libraries`, exactly the
/// serial charge.
pub fn populate_columnar_sharded(
    sumy: &SumyTable,
    table: &EnumTable,
    cfg: &ExecConfig,
) -> (Vec<LibraryId>, PopulateStats, ExecStats) {
    let resolved = resolve_conditions(sumy, table);
    let n = table.n_libraries();
    let plan = ShardPlan::for_libraries(table, cfg.shards);
    let scratch: ScratchPool<Vec<u32>> = ScratchPool::new();
    let (shards, exec) = run_sharded(cfg, &plan, |_, lo, hi| {
        let mut candidates = scratch.take();
        let rows_processed = columnar_prune_with(&resolved, table, lo, hi, &mut candidates);
        let hits: Vec<LibraryId> = candidates
            .iter()
            .map(|&l| LibraryId((lo + l as usize) as u32))
            .collect();
        scratch.put(candidates);
        (hits, rows_processed)
    });
    let mut hits = Vec::new();
    let mut max_rows = 0usize;
    for (shard_hits, rows_processed) in shards {
        hits.extend(shard_hits);
        max_rows = max_rows.max(rows_processed);
    }
    let stats = PopulateStats {
        candidates: n,
        comparisons: (max_rows * n) as u64,
        ..PopulateStats::default()
    };
    (hits, stats, exec)
}

/// Sharded [`gea_core::populate::populate_indexed`]: the index probe and
/// candidate-list intersection stay serial (they are cheap and
/// order-sensitive); the surviving candidate list is partitioned and
/// verified in parallel with the serial per-candidate check. Falls back to
/// [`populate_scan_sharded`] when no index hits, like the serial driver.
pub fn populate_indexed_sharded(
    sumy: &SumyTable,
    table: &EnumTable,
    index: &PopulateIndex,
    cfg: &ExecConfig,
) -> (Vec<LibraryId>, PopulateStats, ExecStats) {
    let resolved = resolve_conditions(sumy, table);
    let (hit_lists, covered) = index_probe(sumy, index);
    let indexes_hit = hit_lists.len();
    if indexes_hit == 0 {
        return populate_scan_sharded(sumy, table, cfg);
    }
    let candidates = intersect_row_lists(hit_lists);
    let mut stats = PopulateStats {
        indexes_hit,
        candidates: candidates.len(),
        comparisons: 0,
    };
    let plan = ShardPlan::new(candidates.len(), cfg.shards);
    let (shards, exec) = run_sharded(cfg, &plan, |_, lo, hi| {
        let mut comparisons = 0u64;
        let hits: Vec<LibraryId> = candidates[lo..hi]
            .iter()
            .map(|&r| LibraryId(r as u32))
            .filter(|&lib| {
                library_satisfies(table, &resolved, lib, Some(&covered), &mut comparisons)
            })
            .collect();
        (hits, comparisons)
    });
    let mut hits = Vec::new();
    for (shard_hits, comparisons) in shards {
        hits.extend(shard_hits);
        stats.comparisons += comparisons;
    }
    (hits, stats, exec)
}

/// Sharded [`gea_core::populate::populate`] (the macro-operation): the
/// sharded columnar pruning (matching the serial macro's evaluation
/// strategy — identical hits either way) followed by the same serial
/// materialization ([`materialize_populate`]) of the result ENUM table.
pub fn populate_sharded(
    name: &str,
    sumy: &SumyTable,
    table: &EnumTable,
    cfg: &ExecConfig,
) -> (EnumTable, ExecStats) {
    let (libs, _, exec) = populate_columnar_sharded(sumy, table, cfg);
    (materialize_populate(name, sumy, table, &libs), exec)
}

/// Sharded [`gea_core::mine::mine`]: the clustering pass
/// ([`mine_groups`]) stays serial — the greedy/k-means/agglomerative
/// algorithms are iterative — but each found cluster's materialization
/// (member submatrix selection plus compact-tag aggregation, the dominant
/// cost at mining scale) is independent, so clusters are partitioned
/// across the pool and concatenated in cluster order.
pub fn mine_sharded(
    table: &EnumTable,
    base_name: &str,
    miner: &Miner,
    tolerance: Option<&ToleranceVector>,
    cfg: &ExecConfig,
) -> (Vec<MinedCluster>, ExecStats) {
    let groups = mine_groups(table, miner, tolerance);
    let plan = ShardPlan::new(groups.len(), cfg.shards);
    let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| {
        groups[lo..hi]
            .iter()
            .enumerate()
            .map(|(off, (records, attrs))| {
                materialize_cluster(table, base_name, lo + off, records.clone(), attrs.clone())
            })
            .collect::<Vec<_>>()
    });
    (merge_shards(shards), stats)
}

/// Sharded [`gea_mine::IsaBackend`]: the z-scored views are built once
/// (read-only, shared), the *seed range* is partitioned, and each shard
/// iterates its seeds with the serial [`converge_seed`]. Seeds never
/// interact, so concatenating the per-shard module lists in shard order is
/// the serial seed order; the shared [`dedupe_modules`] then collapses
/// duplicates identically — byte-identical to `IsaBackend::mine`.
pub fn isa_mine_sharded(
    table: &EnumTable,
    base_name: &str,
    params: &IsaParams,
    cfg: &ExecConfig,
) -> (Vec<MinedCluster>, ExecStats) {
    let scores = IsaScores::build(table);
    let plan = ShardPlan::new(params.seeds, cfg.shards);
    let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| {
        (lo..hi)
            .map(|seed| converge_seed(&scores, seed, params.seeds, params))
            .collect::<Vec<_>>()
    });
    let modules: Vec<_> = shards.into_iter().flatten().collect();
    let groups = dedupe_modules(modules);
    let clusters = groups
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| materialize_cluster(table, base_name, i, records, attrs))
        .collect();
    (clusters, stats)
}

/// Sharded [`gea_mine::SimplexBackend`]: medoid initialization and updates
/// stay serial (they are `O(k·n)` over a handful of medoids and
/// tie-sensitive); the `O(n·k)` assignment step — [`assign_range`]'s
/// documented shard seam — is partitioned over the point range each
/// round. Per-point nearest-medoid decisions are independent, so the
/// concatenation equals `assign_range(.., 0, n)` comparison for
/// comparison, and the whole k-medoids trajectory is byte-identical to
/// the serial `SimplexBackend::mine`. The returned stats sum every
/// assignment round's parallel section.
pub fn simplex_mine_sharded(
    table: &EnumTable,
    base_name: &str,
    params: &SimplexParams,
    cfg: &ExecConfig,
) -> (Vec<MinedCluster>, ExecStats) {
    let points = clr_embed(table, params.zero_repl);
    let plan = ShardPlan::new(points.len(), cfg.shards);
    let mut total = ExecStats::default();
    let (assign, medoids) = kmedoids_with(&points, params.k, params.max_iters, |pts, meds| {
        let (shards, stats) = run_sharded(cfg, &plan, |_, lo, hi| assign_range(pts, meds, lo, hi));
        total.shards = stats.shards;
        total.wall_us += stats.wall_us;
        total.busy_us += stats.busy_us;
        shards.into_iter().flatten().collect()
    });
    let groups = groups_from_assignment(table.n_tags(), medoids.len(), &assign);
    let clusters = groups
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| materialize_cluster(table, base_name, i, records, attrs))
        .collect();
    (clusters, total)
}
