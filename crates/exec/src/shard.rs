//! Contiguous, stable-order input partitioning.

use gea_core::EnumTable;

/// A partition of `n` items (tag rows, libraries, clusters — anything
/// indexed `0..n`) into at most `k` contiguous half-open ranges of
/// near-equal size, in stable ascending order.
///
/// Invariants: ranges are non-empty (unless `n == 0`, which yields the
/// single empty range `[0, 0)`), adjacent, and cover `0..n` exactly —
/// concatenating per-range results in plan order therefore reproduces the
/// serial iteration order. The first `n % k` ranges are one item longer,
/// so the plan is deterministic in `n` and `k` alone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    n: usize,
    bounds: Vec<(usize, usize)>,
}

impl ShardPlan {
    /// Partition `n` items into at most `shards` contiguous ranges.
    /// `shards` is clamped to `[1, max(n, 1)]` so no range is empty.
    pub fn new(n: usize, shards: usize) -> ShardPlan {
        let k = shards.max(1).min(n.max(1));
        let base = n / k;
        let rem = n % k;
        let mut bounds = Vec::with_capacity(k);
        let mut lo = 0;
        for i in 0..k {
            let len = base + usize::from(i < rem);
            bounds.push((lo, lo + len));
            lo += len;
        }
        debug_assert_eq!(lo, n);
        ShardPlan { n, bounds }
    }

    /// Partition an ENUM table's tag rows — the axis the rotated layout
    /// stores contiguously, and the natural sharding axis for
    /// tag-at-a-time operators like `aggregate`.
    pub fn for_tag_rows(table: &EnumTable, shards: usize) -> ShardPlan {
        ShardPlan::new(table.n_tags(), shards)
    }

    /// Partition an ENUM table's libraries — the sharding axis for
    /// library-at-a-time operators like `populate`.
    pub fn for_libraries(table: &EnumTable, shards: usize) -> ShardPlan {
        ShardPlan::new(table.n_libraries(), shards)
    }

    /// Number of shards in the plan (at least 1).
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// Whether the plan has no shards. Never true — a plan always has at
    /// least one (possibly empty) range — but clippy insists `len` has a
    /// companion.
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// Total items partitioned.
    pub fn n_items(&self) -> usize {
        self.n
    }

    /// The `i`-th half-open range `[lo, hi)`.
    pub fn range(&self, i: usize) -> (usize, usize) {
        self.bounds[i]
    }

    /// All ranges in shard order.
    pub fn ranges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.bounds.iter().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_exactly_in_order() {
        for n in [0usize, 1, 2, 3, 7, 10, 100, 101] {
            for k in [1usize, 2, 3, 4, 7, 16, 200] {
                let plan = ShardPlan::new(n, k);
                assert_eq!(plan.n_items(), n);
                assert!(!plan.is_empty());
                assert!(plan.len() <= k.max(1));
                let mut expect = 0;
                for (lo, hi) in plan.ranges() {
                    assert_eq!(lo, expect, "n={n} k={k}");
                    assert!(hi >= lo);
                    expect = hi;
                }
                assert_eq!(expect, n, "n={n} k={k}");
            }
        }
    }

    #[test]
    fn near_equal_sizes() {
        let plan = ShardPlan::new(10, 3);
        let sizes: Vec<usize> = plan.ranges().map(|(lo, hi)| hi - lo).collect();
        assert_eq!(sizes, vec![4, 3, 3]);
    }

    #[test]
    fn empty_input_is_one_empty_shard() {
        let plan = ShardPlan::new(0, 8);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.range(0), (0, 0));
    }

    #[test]
    fn deterministic() {
        assert_eq!(ShardPlan::new(97, 7), ShardPlan::new(97, 7));
    }
}
