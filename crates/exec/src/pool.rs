//! A hand-rolled scoped worker pool.
//!
//! The build is offline — no rayon — so parallel fan-out is a
//! [`std::thread::scope`] with a shared atomic job counter: each worker
//! repeatedly claims the next job index and runs it, which load-balances
//! uneven shards without any channel per job. Results are returned in
//! *job-index order* regardless of completion order, so callers get an
//! order-stable reduction for free.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Run `n_jobs` jobs (`job(i)` for `i in 0..n_jobs`) on up to `threads`
/// workers and return the results indexed by job, i.e. `out[i] == job(i)`.
///
/// With `threads <= 1` or fewer than two jobs, runs inline on the calling
/// thread — the parallel and serial paths execute the same `job` closure,
/// so they are trivially identical. A panicking job propagates the panic
/// to the caller (via the scope).
pub fn run_jobs<T, F>(threads: usize, n_jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(n_jobs);
    if workers <= 1 {
        return (0..n_jobs).map(&job).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let job = &job;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n_jobs {
                    break;
                }
                let out = job(i);
                if tx.send((i, out)).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<T>> = (0..n_jobs).map(|_| None).collect();
    for (i, out) in rx {
        slots[i] = Some(out);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        for threads in [1usize, 2, 4, 9] {
            let out = run_jobs(threads, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_is_empty() {
        let out: Vec<usize> = run_jobs(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn uneven_jobs_all_run() {
        // More workers than jobs, and jobs with very different costs.
        let out = run_jobs(8, 3, |i| {
            if i == 0 {
                (0..200_000u64).sum::<u64>()
            } else {
                i as u64
            }
        });
        assert_eq!(out[1], 1);
        assert_eq!(out[2], 2);
    }

    #[test]
    #[should_panic(expected = "scoped thread panicked")]
    fn job_panic_propagates() {
        run_jobs(2, 8, |i| {
            if i == 3 {
                panic!("job three failed");
            }
            i
        });
    }
}
