//! A tiny lock-striped-enough scratch-buffer pool for shard jobs.
//!
//! Several drivers need a per-job working buffer (candidate selection
//! vectors, hit staging) whose size is data-dependent but stable across
//! jobs. Allocating one per job puts an allocator round trip on every
//! shard; a [`ScratchPool`] lets each job check a buffer out, reuse its
//! capacity, and return it — the pool holds at most one buffer per
//! concurrent worker, so the steady-state allocation count is the worker
//! count, not the shard count.
//!
//! The pool hands buffers out *dirty*: consumers must clear or overwrite
//! them (the kernels in `gea-core` that accept scratch, e.g.
//! `columnar_prune_with`, clear on entry). Determinism is unaffected —
//! a buffer's capacity never influences results.

use std::sync::Mutex;

/// A pool of reusable scratch values (typically `Vec<T>`s whose capacity
/// is worth keeping warm).
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    slots: Mutex<Vec<T>>,
}

impl<T: Default> ScratchPool<T> {
    /// An empty pool.
    pub fn new() -> ScratchPool<T> {
        ScratchPool {
            slots: Mutex::new(Vec::new()),
        }
    }

    /// Check a scratch value out: a previously returned one (contents
    /// unspecified) if available, `T::default()` otherwise.
    pub fn take(&self) -> T {
        self.slots
            .lock()
            .expect("scratch pool poisoned")
            .pop()
            .unwrap_or_default()
    }

    /// Return a scratch value for reuse by later jobs.
    pub fn put(&self, value: T) {
        self.slots
            .lock()
            .expect("scratch pool poisoned")
            .push(value);
    }

    /// How many buffers are parked in the pool (for tests/metrics).
    pub fn parked(&self) -> usize {
        self.slots.lock().expect("scratch pool poisoned").len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_returned_capacity() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        let mut v = pool.take();
        assert!(v.is_empty());
        v.reserve(1024);
        let cap = v.capacity();
        pool.put(v);
        assert_eq!(pool.parked(), 1);
        let v2 = pool.take();
        assert!(v2.capacity() >= cap, "capacity was not kept warm");
        assert_eq!(pool.parked(), 0);
    }

    #[test]
    fn concurrent_take_put_is_safe() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let pool = &pool;
                s.spawn(move || {
                    for i in 0..100 {
                        let mut v = pool.take();
                        v.clear();
                        v.push(t * 1000 + i);
                        assert_eq!(v.len(), 1);
                        pool.put(v);
                    }
                });
            }
        });
        assert!(pool.parked() >= 1 && pool.parked() <= 4);
    }
}
