//! Property tests for the mining backends' mathematical contracts:
//! Aitchison-distance invariants for the simplex backend (permutation
//! invariance, perturbation invariance, zero-replacement monotonicity)
//! and fixpoint idempotence for ISA — a converged module must be exactly
//! fixed by one more refinement step.

// The proptest shim's macro recurses once per token of the block.
#![recursion_limit = "1024"]

use proptest::prelude::*;

use gea_mine::isa::{converge_seed, isa_step, IsaParams, IsaScores};
use gea_mine::simplex::{aitchison, clr, zero_replace};

use gea_core::EnumTable;
use gea_sage::corpus::library_meta;
use gea_sage::library::{NeoplasticState, TissueSource};
use gea_sage::tag::{Tag, TagUniverse};
use gea_sage::{ExpressionMatrix, TissueType};

fn rotate(x: &[f64], by: usize) -> Vec<f64> {
    let mut v = x.to_vec();
    v.rotate_left(by % x.len().max(1));
    v
}

fn l2(x: &[f64]) -> f64 {
    x.iter().map(|v| v * v).sum::<f64>().sqrt()
}

/// Pairs of strictly positive compositions of a shared length.
fn positive_pair() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (2usize..10).prop_flat_map(|n| {
        (
            prop::collection::vec(0.01f64..100.0, n),
            prop::collection::vec(0.01f64..100.0, n),
        )
    })
}

fn small_enum(values: Vec<Vec<f64>>) -> EnumTable {
    let n_libs = values[0].len();
    let universe =
        TagUniverse::from_tags((0..values.len() as u32).map(|i| Tag::from_code(i * 53).unwrap()));
    let libs = (0..n_libs)
        .map(|i| {
            library_meta(
                &format!("L{i}"),
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            )
        })
        .collect();
    EnumTable::new("E", ExpressionMatrix::from_rows(universe, libs, values))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying the same permutation (a rotation) to both compositions
    /// leaves the Aitchison distance unchanged: the metric has no
    /// preferred component order.
    #[test]
    fn aitchison_is_permutation_invariant(pair in positive_pair(), by in 0usize..10) {
        let (a, b) = pair;
        let d = aitchison(&a, &b);
        let d_rot = aitchison(&rotate(&a, by), &rotate(&b, by));
        prop_assert!((d - d_rot).abs() <= 1e-9 * (1.0 + d), "{d} vs {d_rot}");
    }

    /// Perturbing both compositions by the same composition `p`
    /// (component-wise product, the simplex group operation) is an
    /// isometry: `d(a∘p, b∘p) = d(a, b)`.
    #[test]
    fn aitchison_is_perturbation_invariant(pair in positive_pair(), scale in 0.1f64..10.0) {
        let (a, b) = pair;
        let p: Vec<f64> = a.iter().zip(&b).map(|(x, y)| (x + y) * scale).collect();
        let ap: Vec<f64> = a.iter().zip(&p).map(|(x, q)| x * q).collect();
        let bp: Vec<f64> = b.iter().zip(&p).map(|(x, q)| x * q).collect();
        let d = aitchison(&a, &b);
        let d_pert = aitchison(&ap, &bp);
        prop_assert!((d - d_pert).abs() <= 1e-9 * (1.0 + d), "{d} vs {d_pert}");
    }

    /// Zero-replacement smoothing is monotone: growing the additive
    /// constant pulls a count vector toward the uniform composition, so
    /// its Aitchison distance from uniform never increases. (Pairwise
    /// log-ratios `ln((x_t+α)/(x_s+α))` all shrink in magnitude as α
    /// grows, and the clr norm is a fixed combination of them.)
    #[test]
    fn zero_replacement_is_monotone_toward_uniform(
        x in prop::collection::vec(0.0f64..50.0, 2..10),
        alpha in 0.01f64..5.0,
        delta in 0.01f64..5.0,
    ) {
        let near = l2(&clr(&zero_replace(&x, alpha)));
        let far = l2(&clr(&zero_replace(&x, alpha + delta)));
        prop_assert!(far <= near + 1e-9, "alpha {alpha} -> {near}, +{delta} -> {far}");
    }

    /// ISA convergence means fixpoint: re-applying the refinement step to
    /// a converged module returns exactly the same (libraries, tags).
    #[test]
    fn isa_converged_modules_are_idempotent(
        values in (2usize..8, 2usize..8).prop_flat_map(|(t, l)| {
            prop::collection::vec(prop::collection::vec(0.0f64..100.0, l), t)
        }),
        t_tags in 0.2f64..2.5,
        t_libs in 0.2f64..2.5,
    ) {
        let table = small_enum(values);
        let params = IsaParams { seeds: 4, t_tags, t_libs, max_iters: 60 };
        let scores = IsaScores::build(&table);
        for seed in 0..params.seeds {
            if let Some(m) = converge_seed(&scores, seed, params.seeds, &params) {
                if m.converged {
                    let (libs, tags) = isa_step(&scores, &m.tags, &params);
                    prop_assert_eq!(
                        (libs, tags),
                        (m.libs.clone(), m.tags.clone()),
                        "seed {} converged but is not fixed",
                        seed
                    );
                }
            }
        }
    }
}
