//! The Iterative Signature Algorithm (Bergmann, Ihmels & Barkai 2003),
//! mapped onto GEA's worlds: *genes* are SAGE tags, *conditions* are
//! libraries. Starting from a deterministic seed tag set, the algorithm
//! alternates two thresholded projections until a fixpoint:
//!
//! 1. score every library by the mean of the seed tags' row-z-scores and
//!    keep those at least `t_libs` standard deviations high;
//! 2. score every tag by the mean of the kept libraries' column-z-scores
//!    and keep those at least `t_tags` standard deviations high.
//!
//! A converged (tags, libraries) pair is a *transcription module*: a
//! candidate fascicle whose compact tags are the signature itself.
//!
//! Everything is deterministic by construction — seeds are fixed strided
//! subsets of the tag universe visited in order, thresholds have no random
//! component, and ties never arise because membership is a predicate, not
//! a ranking. That makes the per-seed loop embarrassingly parallel:
//! `gea-exec` shards the seed range and concatenates in seed order, which
//! is byte-identical to the serial loop.

use gea_core::EnumTable;
use gea_sage::tag::TagId;

use crate::ResolvedParams;

/// Resolved ISA parameters (see [`crate::IsaBackend`] for the schema).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IsaParams {
    /// Number of strided seed tag sets to iterate (modules are deduped).
    pub seeds: usize,
    /// Tag threshold, in standard deviations of the tag score vector.
    pub t_tags: f64,
    /// Library threshold, in standard deviations of the library scores.
    pub t_libs: f64,
    /// Iteration cap per seed; a seed still oscillating here is kept
    /// as-is (deterministically) rather than discarded.
    pub max_iters: usize,
}

impl IsaParams {
    /// Extract from a resolved parameter set (panics on schema mismatch —
    /// impossible for params resolved against [`crate::IsaBackend`]).
    pub fn from_resolved(p: &ResolvedParams) -> IsaParams {
        IsaParams {
            seeds: p.uint("seeds") as usize,
            t_tags: p.float("t_tags"),
            t_libs: p.float("t_libs"),
            max_iters: p.uint("max_iters") as usize,
        }
    }
}

/// The two z-scored views of the expression matrix ISA iterates over,
/// computed once per `mine` and shared (read-only) across seed workers.
#[derive(Debug, Clone)]
pub struct IsaScores {
    /// `row_z[t][l]`: tag `t`'s expression in library `l`, z-scored
    /// across libraries (the view that scores libraries).
    row_z: Vec<Vec<f64>>,
    /// `col_z[t][l]`: the same cell z-scored within library `l`'s column,
    /// across tags (the view that scores tags).
    col_z: Vec<Vec<f64>>,
}

fn mean_sd(values: impl Iterator<Item = f64> + Clone) -> (f64, f64) {
    let n = values.clone().count();
    if n == 0 {
        return (0.0, 0.0);
    }
    let mean = values.clone().sum::<f64>() / n as f64;
    let var = values.map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
    (mean, var.sqrt())
}

impl IsaScores {
    /// Z-score the table's matrix both ways.
    pub fn build(table: &EnumTable) -> IsaScores {
        let n_tags = table.n_tags();
        let n_libs = table.n_libraries();
        let rows: Vec<&[f64]> = (0..n_tags)
            .map(|t| table.matrix.tag_row(TagId(t as u32)))
            .collect();

        let mut row_z = Vec::with_capacity(n_tags);
        for row in &rows {
            let (mean, sd) = mean_sd(row.iter().copied());
            row_z.push(zscore(row, mean, sd));
        }

        let mut col_z = vec![vec![0.0; n_libs]; n_tags];
        for l in 0..n_libs {
            let column = rows.iter().map(|row| row[l]);
            let (mean, sd) = mean_sd(column);
            if sd > 0.0 {
                for (t, row) in rows.iter().enumerate() {
                    col_z[t][l] = (row[l] - mean) / sd;
                }
            }
        }
        IsaScores { row_z, col_z }
    }

    fn n_tags(&self) -> usize {
        self.row_z.len()
    }

    fn n_libs(&self) -> usize {
        self.row_z.first().map_or(0, |r| r.len())
    }
}

fn zscore(row: &[f64], mean: f64, sd: f64) -> Vec<f64> {
    if sd > 0.0 {
        row.iter().map(|v| (v - mean) / sd).collect()
    } else {
        vec![0.0; row.len()]
    }
}

/// Threshold a score vector: keep indices whose score is positive and at
/// least `t` standard deviations of the score vector. Membership is a
/// pure predicate over the scores, so the result is order-free.
fn threshold(scores: &[f64], t: f64) -> Vec<usize> {
    let (_, sd) = mean_sd(scores.iter().copied());
    let cut = t * sd;
    scores
        .iter()
        .enumerate()
        .filter(|(_, &s)| s > 0.0 && s >= cut)
        .map(|(i, _)| i)
        .collect()
}

/// One ISA refinement step: project the tag set onto library scores,
/// threshold, then project the kept libraries back onto tag scores and
/// threshold. Returns `(libraries, tags)`; either may be empty (a dead
/// module). Public so the fixpoint-idempotence property can be tested
/// directly: for a converged module, `isa_step` is the identity.
pub fn isa_step(
    scores: &IsaScores,
    tags: &[usize],
    params: &IsaParams,
) -> (Vec<usize>, Vec<usize>) {
    if tags.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let inv = 1.0 / tags.len() as f64;
    let lib_scores: Vec<f64> = (0..scores.n_libs())
        .map(|l| tags.iter().map(|&t| scores.row_z[t][l]).sum::<f64>() * inv)
        .collect();
    let libs = threshold(&lib_scores, params.t_libs);
    if libs.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let inv = 1.0 / libs.len() as f64;
    let tag_scores: Vec<f64> = (0..scores.n_tags())
        .map(|t| libs.iter().map(|&l| scores.col_z[t][l]).sum::<f64>() * inv)
        .collect();
    (libs, threshold(&tag_scores, params.t_tags))
}

/// A converged (or iteration-capped) transcription module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IsaModule {
    /// Member libraries (indices into the mined table), ascending.
    pub libs: Vec<usize>,
    /// Signature tags (indices into the mined table), ascending.
    pub tags: Vec<usize>,
    /// Whether the module reached a true fixpoint before `max_iters`.
    pub converged: bool,
}

/// Iterate seed `seed` (of `n_seeds` strided seed sets) to convergence.
/// Returns `None` if the module dies (either projection empties out).
pub fn converge_seed(
    scores: &IsaScores,
    seed: usize,
    n_seeds: usize,
    params: &IsaParams,
) -> Option<IsaModule> {
    let mut tags: Vec<usize> = (seed..scores.n_tags()).step_by(n_seeds.max(1)).collect();
    if tags.is_empty() {
        return None;
    }
    let mut libs: Vec<usize> = Vec::new();
    let mut converged = false;
    for _ in 0..params.max_iters.max(1) {
        let (next_libs, next_tags) = isa_step(scores, &tags, params);
        if next_tags.is_empty() || next_libs.is_empty() {
            return None;
        }
        if next_tags == tags && next_libs == libs {
            converged = true;
            break;
        }
        tags = next_tags;
        libs = next_libs;
    }
    Some(IsaModule {
        libs,
        tags,
        converged,
    })
}

/// Drop dead seeds and collapse duplicate modules, keeping first-seed
/// order. Shared verbatim by the serial backend and the sharded driver so
/// their outputs agree byte-for-byte.
pub fn dedupe_modules(modules: Vec<Option<IsaModule>>) -> Vec<(Vec<usize>, Vec<usize>)> {
    let mut seen: Vec<(Vec<usize>, Vec<usize>)> = Vec::new();
    for module in modules.into_iter().flatten() {
        let group = (module.libs, module.tags);
        if !seen.contains(&group) {
            seen.push(group);
        }
    }
    seen
}

/// Run ISA end to end over a table: every seed in order, then dedupe.
/// Returns `(libraries, tags)` groups ready for materialization.
pub fn mine_groups(table: &EnumTable, params: &IsaParams) -> Vec<(Vec<usize>, Vec<usize>)> {
    let scores = IsaScores::build(table);
    let modules = (0..params.seeds)
        .map(|s| converge_seed(&scores, s, params.seeds, params))
        .collect();
    dedupe_modules(modules)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gea_core::EnumTable;
    use gea_sage::corpus::library_meta;
    use gea_sage::library::{NeoplasticState, TissueSource};
    use gea_sage::tag::{Tag, TagUniverse};
    use gea_sage::{ExpressionMatrix, TissueType};

    fn table(values: Vec<Vec<f64>>) -> EnumTable {
        let n_libs = values[0].len();
        let universe = TagUniverse::from_tags(
            (0..values.len() as u32).map(|i| Tag::from_code(i * 101).unwrap()),
        );
        let libs = (0..n_libs)
            .map(|i| {
                library_meta(
                    &format!("L{i}"),
                    TissueType::Brain,
                    NeoplasticState::Normal,
                    TissueSource::BulkTissue,
                )
            })
            .collect();
        EnumTable::new("E", ExpressionMatrix::from_rows(universe, libs, values))
    }

    fn params() -> IsaParams {
        IsaParams {
            seeds: 4,
            t_tags: 0.5,
            t_libs: 1.0,
            max_iters: 50,
        }
    }

    /// A planted module: tags 0–3 are high exactly in libraries 0–2.
    fn planted() -> Vec<Vec<f64>> {
        (0..8)
            .map(|t| {
                (0..9)
                    .map(|l| {
                        let base = ((t * 13 + l * 7) % 5) as f64;
                        if t < 4 && l < 3 {
                            base + 40.0
                        } else {
                            base
                        }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn recovers_the_planted_module() {
        let groups = mine_groups(&table(planted()), &params());
        assert!(
            groups.contains(&(vec![0, 1, 2], vec![0, 1, 2, 3])),
            "planted module not recovered: {groups:?}"
        );
    }

    #[test]
    fn converged_modules_are_fixpoints() {
        let t = table(planted());
        let scores = IsaScores::build(&t);
        let p = params();
        let mut checked = 0;
        for seed in 0..p.seeds {
            if let Some(m) = converge_seed(&scores, seed, p.seeds, &p) {
                if m.converged {
                    let (libs, tags) = isa_step(&scores, &m.tags, &p);
                    assert_eq!((libs, tags), (m.libs, m.tags), "seed {seed} not a fixpoint");
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "no seed converged");
    }

    #[test]
    fn constant_matrix_yields_no_modules() {
        let groups = mine_groups(&table(vec![vec![1.0; 5]; 4]), &params());
        assert!(groups.is_empty(), "{groups:?}");
    }

    #[test]
    fn dedupe_keeps_first_occurrence_order() {
        let m = |libs: Vec<usize>, tags: Vec<usize>| {
            Some(IsaModule {
                libs,
                tags,
                converged: true,
            })
        };
        let groups = dedupe_modules(vec![
            m(vec![1], vec![2]),
            None,
            m(vec![0], vec![3]),
            m(vec![1], vec![2]),
        ]);
        assert_eq!(groups, vec![(vec![1], vec![2]), (vec![0], vec![3])]);
    }
}
