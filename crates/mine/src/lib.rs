//! # gea-mine — pluggable mining backends
//!
//! The thesis frames `mine` as the bridge from the extensional world
//! (ENUM tables of libraries) to the intensional one (fascicles with
//! their SUMY definitions), but the original toolkit hard-codes a single
//! algorithm. This crate turns the bridge into a subsystem: a
//! [`MineBackend`] trait with a typed parameter schema, a static
//! [registry](backends), and three backends —
//!
//! * [`FasciclesBackend`] (`fascicles`) — the thesis algorithm, adapted
//!   unchanged from `gea-core`;
//! * [`IsaBackend`] (`isa`) — the Iterative Signature Algorithm:
//!   seeded, thresholded tag/library signature refinement ([`isa`]);
//! * [`SimplexBackend`] (`simplex`) — Simcluster-style k-medoids under
//!   the Aitchison (log-ratio) geometry of count compositions
//!   ([`simplex`]).
//!
//! GQL reaches the registry through `mine <E> <name> with <algo>
//! [key=val …]`; `gea-check` validates parameter domains statically; and
//! `gea-exec` ships sharded drivers for both new backends that are
//! byte-identical to the serial `MineBackend::mine` paths here.
//!
//! ## Determinism rules
//!
//! Backends must be deterministic functions of `(table, base_name,
//! params)` — no RNG, no iteration over unordered maps, all tie-breaks
//! resolved toward the lowest index. This is what lets `gea-exec` fan a
//! backend out across shards and threads and still promise byte-identical
//! output, and what makes backend provenance in `session.gea` snapshots
//! meaningful on restore.

#![warn(missing_docs)]

pub mod isa;
pub mod simplex;

mod fascicles;
mod params;

pub use fascicles::{FasciclesBackend, FASCICLES_PARAMS, WIDTH_FRACTION};
pub use params::{resolve_params, ParamDomain, ParamSpec, ParamValue, ResolvedParams};

use gea_core::mine::{materialize_cluster, MinedCluster};
use gea_core::EnumTable;

/// Everything a backend sees: the table to mine, the base name for
/// cluster naming (`{base}_1`, `{base}_2`, …), and a parameter set
/// resolved against the backend's own schema.
#[derive(Debug, Clone, Copy)]
pub struct MineInput<'a> {
    /// The ENUM table being mined.
    pub table: &'a EnumTable,
    /// Base name for the resulting clusters.
    pub base_name: &'a str,
    /// Parameters, resolved by [`resolve_params`] against the backend.
    pub params: &'a ResolvedParams,
}

/// A mining algorithm: name, typed parameter schema, and the miner
/// itself. Implementations must follow the crate-level determinism rules.
pub trait MineBackend: Sync {
    /// Registry name, as written after `with` in GQL.
    fn name(&self) -> &'static str;

    /// The parameter schema (keys, domains, defaults).
    fn params(&self) -> &'static [ParamSpec];

    /// Mine `input.table` into named clusters.
    fn mine(&self, input: &MineInput<'_>) -> Vec<MinedCluster>;
}

/// Backend: the Iterative Signature Algorithm (see [`isa`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct IsaBackend;

/// ISA's parameter schema.
pub const ISA_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "seeds",
        domain: ParamDomain::UInt { min: 1, max: 4096 },
        default: ParamValue::UInt(8),
        help: "number of strided seed tag sets to iterate",
    },
    ParamSpec {
        key: "t_tags",
        domain: ParamDomain::Float {
            min_exclusive: 0.0,
            max: 1e6,
        },
        default: ParamValue::Float(2.0),
        help: "tag-score threshold, in standard deviations",
    },
    ParamSpec {
        key: "t_libs",
        domain: ParamDomain::Float {
            min_exclusive: 0.0,
            max: 1e6,
        },
        default: ParamValue::Float(1.5),
        help: "library-score threshold, in standard deviations",
    },
    ParamSpec {
        key: "max_iters",
        domain: ParamDomain::UInt {
            min: 1,
            max: 10_000,
        },
        default: ParamValue::UInt(50),
        help: "iteration cap per seed",
    },
];

impl MineBackend for IsaBackend {
    fn name(&self) -> &'static str {
        "isa"
    }

    fn params(&self) -> &'static [ParamSpec] {
        ISA_PARAMS
    }

    fn mine(&self, input: &MineInput<'_>) -> Vec<MinedCluster> {
        let params = isa::IsaParams::from_resolved(input.params);
        materialize_groups(input, isa::mine_groups(input.table, &params))
    }
}

/// Backend: Aitchison-distance k-medoids (see [`simplex`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimplexBackend;

/// Simplex clustering's parameter schema.
pub const SIMPLEX_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "k",
        domain: ParamDomain::UInt { min: 1, max: 4096 },
        default: ParamValue::UInt(3),
        help: "number of medoids (clamped to the library count)",
    },
    ParamSpec {
        key: "max_iters",
        domain: ParamDomain::UInt {
            min: 1,
            max: 10_000,
        },
        default: ParamValue::UInt(20),
        help: "cap on medoid-update rounds",
    },
    ParamSpec {
        key: "zero_repl",
        domain: ParamDomain::Float {
            min_exclusive: 0.0,
            max: 1e6,
        },
        default: ParamValue::Float(0.5),
        help: "additive zero replacement before the log-ratio transform",
    },
];

impl MineBackend for SimplexBackend {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn params(&self) -> &'static [ParamSpec] {
        SIMPLEX_PARAMS
    }

    fn mine(&self, input: &MineInput<'_>) -> Vec<MinedCluster> {
        let params = simplex::SimplexParams::from_resolved(input.params);
        materialize_groups(input, simplex::mine_groups(input.table, &params))
    }
}

/// Materialize `(libraries, tags)` groups into named clusters, in group
/// order — the same naming and aggregation path every miner shares.
pub fn materialize_groups(
    input: &MineInput<'_>,
    groups: Vec<(Vec<usize>, Vec<usize>)>,
) -> Vec<MinedCluster> {
    groups
        .into_iter()
        .enumerate()
        .map(|(i, (records, attrs))| {
            materialize_cluster(input.table, input.base_name, i, records, attrs)
        })
        .collect()
}

/// The static backend registry, in registration order.
pub fn backends() -> &'static [&'static dyn MineBackend] {
    static FASCICLES: FasciclesBackend = FasciclesBackend;
    static ISA: IsaBackend = IsaBackend;
    static SIMPLEX: SimplexBackend = SimplexBackend;
    static ALL: [&dyn MineBackend; 3] = [&FASCICLES, &ISA, &SIMPLEX];
    &ALL
}

/// Look a backend up by its registry name.
pub fn backend(name: &str) -> Option<&'static dyn MineBackend> {
    backends().iter().copied().find(|b| b.name() == name)
}

/// Comma-separated registry names, for error messages and help text.
pub fn backend_names() -> String {
    backends()
        .iter()
        .map(|b| b.name())
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_lists_all_three_backends() {
        assert_eq!(backend_names(), "fascicles, isa, simplex");
        for name in ["fascicles", "isa", "simplex"] {
            let b = backend(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(b.name(), name);
            assert!(!b.params().is_empty());
        }
        assert!(backend("pca").is_none());
    }

    #[test]
    fn every_schema_default_is_inside_its_domain() {
        for b in backends() {
            for spec in b.params() {
                assert!(
                    spec.domain.contains(&spec.default),
                    "{}::{} default {} outside {}",
                    b.name(),
                    spec.key,
                    spec.default,
                    spec.domain.describe()
                );
            }
        }
    }

    #[test]
    fn schema_keys_are_unique_per_backend() {
        for b in backends() {
            let mut keys: Vec<&str> = b.params().iter().map(|s| s.key).collect();
            keys.sort_unstable();
            keys.dedup();
            assert_eq!(
                keys.len(),
                b.params().len(),
                "{} has duplicate keys",
                b.name()
            );
        }
    }
}
