//! The thesis's Fascicles miner, wrapped as mining backend #1. The
//! algorithm itself stays in `gea-core`/`gea-cluster`; this adapter only
//! maps the schema (`k_pct`/`min_records`/`batch`) onto [`FascicleParams`]
//! exactly the way the engine's bare `mine` verb always has: the compact
//! floor is `n_tags × k_pct / 100` and the tolerance metadata uses the
//! fixed 10 % width fraction. `mine … with fascicles` therefore desugars
//! to the classic path with byte-identical results.

use gea_cluster::FascicleParams;
use gea_core::mine::{generate_metadata, mine, MinedCluster, Miner};

use crate::{MineBackend, MineInput, ParamDomain, ParamSpec, ParamValue};

/// Width fraction the engine has always used for `mine`'s tolerance
/// metadata (thesis §4.3).
pub const WIDTH_FRACTION: f64 = 0.10;

/// Backend #1: the thesis's Fascicles algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct FasciclesBackend;

/// Parameter schema shared with the GQL grammar (the bare `mine` verb's
/// positional `<k%> <min> <batch>` map onto these keys).
pub const FASCICLES_PARAMS: &[ParamSpec] = &[
    ParamSpec {
        key: "k_pct",
        domain: ParamDomain::UInt { min: 1, max: 100 },
        default: ParamValue::UInt(50),
        help: "compact-attribute floor as a percentage of the tag count",
    },
    ParamSpec {
        key: "min_records",
        domain: ParamDomain::UInt {
            min: 1,
            max: 1 << 20,
        },
        default: ParamValue::UInt(3),
        help: "minimum member libraries per fascicle",
    },
    ParamSpec {
        key: "batch",
        domain: ParamDomain::UInt {
            min: 1,
            max: 1 << 20,
        },
        default: ParamValue::UInt(6),
        help: "candidate batch size for the greedy search",
    },
];

impl MineBackend for FasciclesBackend {
    fn name(&self) -> &'static str {
        "fascicles"
    }

    fn params(&self) -> &'static [ParamSpec] {
        FASCICLES_PARAMS
    }

    fn mine(&self, input: &MineInput<'_>) -> Vec<MinedCluster> {
        let k_pct = input.params.uint("k_pct") as usize;
        let miner = Miner::Fascicles(FascicleParams {
            min_compact_attrs: input.table.n_tags() * k_pct / 100,
            min_records: input.params.uint("min_records") as usize,
            batch_size: input.params.uint("batch") as usize,
        });
        let tolerance = generate_metadata(input.table, WIDTH_FRACTION);
        mine(input.table, input.base_name, &miner, Some(&tolerance))
    }
}
