//! Simplex-space clustering of SAGE count compositions (after Simcluster,
//! Vêncio et al. 2007): libraries live on the simplex (only tag
//! *proportions* carry signal, not sequencing depth), where the principled
//! metric is Aitchison's distance — the Euclidean distance between
//! centered log-ratio (clr) transforms. Zero counts are smoothed away by
//! an additive replacement `zero_repl` before taking logs.
//!
//! Clustering is k-medoids in clr space, written to be **deterministic
//! with no RNG at all** (unlike the seeded k-means baseline in
//! `gea-cluster`): the first medoid is the 1-medoid optimum, later
//! medoids are greedy farthest points, and every arg-min/arg-max breaks
//! ties toward the lowest index. The assignment step — the `O(n·k)` hot
//! loop — is expressed as a range function so `gea-exec` can shard it
//! per medoid assignment without changing a single comparison.

use gea_cluster::distance::euclidean;
use gea_core::EnumTable;

use crate::ResolvedParams;

/// Resolved simplex parameters (see [`crate::SimplexBackend`] for the
/// schema).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexParams {
    /// Number of medoids (clamped to the library count).
    pub k: usize,
    /// Cap on medoid-update rounds.
    pub max_iters: usize,
    /// Additive zero-replacement constant applied to every count before
    /// the log-ratio transform. Must be strictly positive.
    pub zero_repl: f64,
}

impl SimplexParams {
    /// Extract from a resolved parameter set (panics on schema mismatch —
    /// impossible for params resolved against [`crate::SimplexBackend`]).
    pub fn from_resolved(p: &ResolvedParams) -> SimplexParams {
        SimplexParams {
            k: p.uint("k") as usize,
            max_iters: p.uint("max_iters") as usize,
            zero_repl: p.float("zero_repl"),
        }
    }
}

/// Additive zero replacement: shift every component by `alpha` so the
/// composition is strictly positive and log-transformable.
pub fn zero_replace(x: &[f64], alpha: f64) -> Vec<f64> {
    x.iter().map(|v| v + alpha).collect()
}

/// Centered log-ratio transform of a strictly positive composition:
/// `clr(x)_i = ln x_i − mean_j ln x_j`. Closure (rescaling to unit sum)
/// cancels in the subtraction, so counts can be passed directly.
pub fn clr(x: &[f64]) -> Vec<f64> {
    debug_assert!(x.iter().all(|&v| v > 0.0), "clr needs positive parts");
    let logs: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let mean = logs.iter().sum::<f64>() / logs.len().max(1) as f64;
    logs.iter().map(|l| l - mean).collect()
}

/// Aitchison distance between two strictly positive compositions: the
/// Euclidean distance of their clr transforms. Scale-invariant in each
/// argument, permutation- and perturbation-invariant as a metric.
pub fn aitchison(a: &[f64], b: &[f64]) -> f64 {
    euclidean(&clr(a), &clr(b))
}

/// Embed every library of `table` into clr space: smooth its count column
/// with `zero_repl`, then clr-transform. Row `l` is library `l`.
pub fn clr_embed(table: &EnumTable, zero_repl: f64) -> Vec<Vec<f64>> {
    table
        .matrix
        .library_ids()
        .map(|l| clr(&zero_replace(&table.matrix.library_column(l), zero_repl)))
        .collect()
}

/// Deterministic medoid seeding: the first medoid is the point minimizing
/// total distance to all points (the exact 1-medoid solution); each later
/// medoid is the point farthest from its nearest existing medoid. All
/// ties break toward the lowest index.
pub fn init_medoids(points: &[Vec<f64>], k: usize) -> Vec<usize> {
    let n = points.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let mut best = 0;
    let mut best_total = f64::INFINITY;
    for i in 0..n {
        let total: f64 = points.iter().map(|p| euclidean(&points[i], p)).sum();
        if total < best_total {
            best_total = total;
            best = i;
        }
    }
    let mut medoids = vec![best];
    let mut nearest: Vec<f64> = points.iter().map(|p| euclidean(p, &points[best])).collect();
    while medoids.len() < k.min(n) {
        let mut far = 0;
        let mut far_d = f64::NEG_INFINITY;
        for (i, &d) in nearest.iter().enumerate() {
            if !medoids.contains(&i) && d > far_d {
                far_d = d;
                far = i;
            }
        }
        medoids.push(far);
        for (i, d) in nearest.iter_mut().enumerate() {
            *d = d.min(euclidean(&points[i], &points[far]));
        }
    }
    medoids
}

/// Assign points `lo..hi` to their nearest medoid (ties toward the
/// lower medoid index). This is the shardable hot loop: the sharded
/// driver calls it per range, the serial path with `0..n`.
pub fn assign_range(points: &[Vec<f64>], medoids: &[usize], lo: usize, hi: usize) -> Vec<usize> {
    (lo..hi)
        .map(|i| {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (c, &m) in medoids.iter().enumerate() {
                let d = euclidean(&points[i], &points[m]);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            best
        })
        .collect()
}

/// Recompute each cluster's medoid: the member minimizing the summed
/// distance to its co-members (ties toward the lowest index; an emptied
/// cluster keeps its previous medoid so `k` never silently shrinks).
pub fn update_medoids(points: &[Vec<f64>], medoids: &[usize], assign: &[usize]) -> Vec<usize> {
    medoids
        .iter()
        .enumerate()
        .map(|(c, &old)| {
            let members: Vec<usize> = (0..points.len()).filter(|&i| assign[i] == c).collect();
            let mut best = old;
            let mut best_total = f64::INFINITY;
            for &i in &members {
                let total: f64 = members
                    .iter()
                    .map(|&j| euclidean(&points[i], &points[j]))
                    .sum();
                if total < best_total {
                    best_total = total;
                    best = i;
                }
            }
            best
        })
        .collect()
}

/// k-medoids with a pluggable assignment step. `assign_all` must be
/// observationally identical to `assign_range(points, medoids, 0, n)` —
/// the sharded driver passes a fan-out that satisfies this by
/// construction, so serial and sharded runs agree byte-for-byte.
pub fn kmedoids_with(
    points: &[Vec<f64>],
    k: usize,
    max_iters: usize,
    mut assign_all: impl FnMut(&[Vec<f64>], &[usize]) -> Vec<usize>,
) -> (Vec<usize>, Vec<usize>) {
    if points.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let mut medoids = init_medoids(points, k.max(1));
    let mut assign = assign_all(points, &medoids);
    for _ in 0..max_iters {
        let next = update_medoids(points, &medoids, &assign);
        if next == medoids {
            break;
        }
        medoids = next;
        assign = assign_all(points, &medoids);
    }
    (assign, medoids)
}

/// Convert an assignment into mining groups: one `(libraries, tags)` pair
/// per non-empty cluster in medoid order. Like the k-means/hierarchical
/// baselines, every tag is reported compact — the simplex metric has no
/// per-tag compactness notion.
pub fn groups_from_assignment(
    n_tags: usize,
    n_medoids: usize,
    assign: &[usize],
) -> Vec<(Vec<usize>, Vec<usize>)> {
    let all_tags: Vec<usize> = (0..n_tags).collect();
    (0..n_medoids)
        .filter_map(|c| {
            let members: Vec<usize> = (0..assign.len()).filter(|&i| assign[i] == c).collect();
            if members.is_empty() {
                None
            } else {
                Some((members, all_tags.clone()))
            }
        })
        .collect()
}

/// Run simplex clustering end to end over a table, serially. Returns
/// `(libraries, tags)` groups ready for materialization.
pub fn mine_groups(table: &EnumTable, params: &SimplexParams) -> Vec<(Vec<usize>, Vec<usize>)> {
    let points = clr_embed(table, params.zero_repl);
    let (assign, medoids) = kmedoids_with(&points, params.k, params.max_iters, |pts, meds| {
        assign_range(pts, meds, 0, pts.len())
    });
    groups_from_assignment(table.n_tags(), medoids.len(), &assign)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aitchison_is_scale_invariant() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![3.0, 1.0, 1.0];
        let scaled: Vec<f64> = a.iter().map(|v| v * 7.0).collect();
        assert!((aitchison(&a, &b) - aitchison(&scaled, &b)).abs() < 1e-12);
    }

    #[test]
    fn kmedoids_separates_two_blobs() {
        // Two tight compositions far apart on the simplex.
        let mut points = Vec::new();
        for i in 0..4 {
            points.push(clr(&[100.0 + i as f64, 1.0, 1.0]));
        }
        for i in 0..4 {
            points.push(clr(&[1.0, 100.0 + i as f64, 1.0]));
        }
        let (assign, medoids) =
            kmedoids_with(&points, 2, 20, |p, m| assign_range(p, m, 0, p.len()));
        assert_eq!(medoids.len(), 2);
        assert!(assign[..4].iter().all(|&c| c == assign[0]));
        assert!(assign[4..].iter().all(|&c| c == assign[4]));
        assert_ne!(assign[0], assign[4]);
    }

    #[test]
    fn k_is_clamped_to_point_count() {
        let points = vec![clr(&[1.0, 2.0]), clr(&[5.0, 1.0])];
        let (assign, medoids) =
            kmedoids_with(&points, 10, 20, |p, m| assign_range(p, m, 0, p.len()));
        assert_eq!(medoids.len(), 2);
        assert_eq!(assign.len(), 2);
    }

    #[test]
    fn empty_input_yields_no_clusters() {
        let (assign, medoids) = kmedoids_with(&[], 3, 10, |p, m| assign_range(p, m, 0, p.len()));
        assert!(assign.is_empty() && medoids.is_empty());
        assert!(groups_from_assignment(4, 0, &[]).is_empty());
    }
}
