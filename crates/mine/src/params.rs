//! Typed parameter schemas for mining backends.
//!
//! Every backend publishes a static `&[ParamSpec]` — key, typed domain,
//! default, and a help line. The GQL grammar parses `key=val` tokens
//! against the schema (so `mine … with isa seeds=oops` is a *parse*
//! error), `gea-check` validates domains statically, and the engine
//! resolves explicit overrides against defaults with [`resolve_params`]
//! before any work runs. Values are deliberately restricted to unsigned
//! integers and finite floats: both have canonical textual forms, which
//! keeps `GqlCommand::canonical()` a fixpoint and cache keys stable.

use std::fmt;

/// A parameter value: either an unsigned integer or a finite float.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamValue {
    /// Unsigned integer (counts: seeds, k, iteration caps, …).
    UInt(u64),
    /// Finite float (thresholds, smoothing constants, …).
    Float(f64),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::UInt(v) => write!(f, "{v}"),
            // Rust's f64 Display is the shortest round-tripping decimal,
            // so canonical() stays a fixpoint: "1.5" -> 1.5 -> "1.5".
            ParamValue::Float(v) => write!(f, "{v}"),
        }
    }
}

/// The typed domain a parameter's value must fall in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamDomain {
    /// An unsigned integer in `min..=max`.
    UInt {
        /// Smallest admissible value.
        min: u64,
        /// Largest admissible value.
        max: u64,
    },
    /// A finite float in `(min_exclusive, max]`.
    Float {
        /// Exclusive lower bound (e.g. `0.0` for "strictly positive").
        min_exclusive: f64,
        /// Inclusive upper bound.
        max: f64,
    },
}

impl ParamDomain {
    /// Whether `value` is of the domain's type *and* inside its bounds.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (self, value) {
            (ParamDomain::UInt { min, max }, ParamValue::UInt(v)) => min <= v && v <= max,
            (ParamDomain::Float { min_exclusive, max }, ParamValue::Float(v)) => {
                v.is_finite() && *v > *min_exclusive && *v <= *max
            }
            _ => false,
        }
    }

    /// Human-readable bounds, for diagnostics and `help`.
    pub fn describe(&self) -> String {
        match self {
            ParamDomain::UInt { min, max } => format!("integer {min}..={max}"),
            ParamDomain::Float { min_exclusive, max } => {
                format!("float > {min_exclusive}, <= {max}")
            }
        }
    }

    /// Parse a `key=val` right-hand side against the domain's *type* (the
    /// range is checked separately so the analyzer can report it with its
    /// own diagnostic code).
    pub fn parse_token(&self, token: &str) -> Result<ParamValue, String> {
        match self {
            ParamDomain::UInt { .. } => token
                .parse::<u64>()
                .map(ParamValue::UInt)
                .map_err(|_| format!("expected an unsigned integer, got {token:?}")),
            ParamDomain::Float { .. } => match token.parse::<f64>() {
                Ok(v) if v.is_finite() => Ok(ParamValue::Float(v)),
                _ => Err(format!("expected a finite number, got {token:?}")),
            },
        }
    }
}

/// One backend parameter: key, domain, default, help line.
#[derive(Debug, Clone, Copy)]
pub struct ParamSpec {
    /// The `key` in `key=val`.
    pub key: &'static str,
    /// Typed domain the value must fall in.
    pub domain: ParamDomain,
    /// Value used when the script does not override the key.
    pub default: ParamValue,
    /// One-line description for `help` output and docs.
    pub help: &'static str,
}

/// A fully resolved parameter set: every key of the backend's schema bound
/// to a domain-checked value, in schema order.
#[derive(Debug, Clone, PartialEq)]
pub struct ResolvedParams {
    values: Vec<(&'static str, ParamValue)>,
}

impl ResolvedParams {
    /// The bound `(key, value)` pairs, in schema order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, ParamValue)> + '_ {
        self.values.iter().copied()
    }

    /// Fetch an integer parameter. Panics if the key is absent or float —
    /// both are schema bugs, impossible for values built by
    /// [`resolve_params`] against the same backend.
    pub fn uint(&self, key: &str) -> u64 {
        match self.get(key) {
            Some(ParamValue::UInt(v)) => v,
            other => panic!("parameter {key:?} is not a resolved integer: {other:?}"),
        }
    }

    /// Fetch a float parameter. Panics on absent/integer keys (schema bug).
    pub fn float(&self, key: &str) -> f64 {
        match self.get(key) {
            Some(ParamValue::Float(v)) => v,
            other => panic!("parameter {key:?} is not a resolved float: {other:?}"),
        }
    }

    fn get(&self, key: &str) -> Option<ParamValue> {
        self.values.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// Render as owned `(key, value-text)` pairs — the shape session
    /// lineage and snapshot provenance store.
    pub fn to_strings(&self) -> Vec<(String, String)> {
        self.values
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }
}

/// Resolve explicit `key=val` overrides against a backend schema: unknown
/// keys, duplicate keys, type mismatches, and out-of-domain values are
/// errors; unmentioned keys take their defaults.
pub fn resolve_params(
    specs: &[ParamSpec],
    given: &[(String, ParamValue)],
) -> Result<ResolvedParams, String> {
    for (i, (key, value)) in given.iter().enumerate() {
        let Some(spec) = specs.iter().find(|s| s.key == key.as_str()) else {
            let known: Vec<&str> = specs.iter().map(|s| s.key).collect();
            return Err(format!(
                "unknown parameter {key:?} (expected one of: {})",
                known.join(", ")
            ));
        };
        if given[..i].iter().any(|(k, _)| k == key) {
            return Err(format!("duplicate parameter {key:?}"));
        }
        if !spec.domain.contains(value) {
            return Err(format!(
                "parameter {key} = {value} out of domain ({})",
                spec.domain.describe()
            ));
        }
    }
    let values = specs
        .iter()
        .map(|spec| {
            let explicit = given.iter().find(|(k, _)| k == spec.key).map(|(_, v)| *v);
            (spec.key, explicit.unwrap_or(spec.default))
        })
        .collect();
    Ok(ResolvedParams { values })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPECS: &[ParamSpec] = &[
        ParamSpec {
            key: "k",
            domain: ParamDomain::UInt { min: 1, max: 16 },
            default: ParamValue::UInt(3),
            help: "clusters",
        },
        ParamSpec {
            key: "alpha",
            domain: ParamDomain::Float {
                min_exclusive: 0.0,
                max: 100.0,
            },
            default: ParamValue::Float(0.5),
            help: "smoothing",
        },
    ];

    #[test]
    fn defaults_fill_unmentioned_keys() {
        let r = resolve_params(SPECS, &[]).unwrap();
        assert_eq!(r.uint("k"), 3);
        assert_eq!(r.float("alpha"), 0.5);
    }

    #[test]
    fn overrides_are_domain_checked() {
        let r = resolve_params(SPECS, &[("k".into(), ParamValue::UInt(5))]).unwrap();
        assert_eq!(r.uint("k"), 5);
        let err = resolve_params(SPECS, &[("k".into(), ParamValue::UInt(0))]).unwrap_err();
        assert!(err.contains("out of domain"), "{err}");
        let err = resolve_params(SPECS, &[("alpha".into(), ParamValue::Float(0.0))]).unwrap_err();
        assert!(err.contains("out of domain"), "{err}");
    }

    #[test]
    fn unknown_duplicate_and_mistyped_keys_are_rejected() {
        let err = resolve_params(SPECS, &[("q".into(), ParamValue::UInt(1))]).unwrap_err();
        assert!(err.contains("unknown parameter"), "{err}");
        let err = resolve_params(
            SPECS,
            &[
                ("k".into(), ParamValue::UInt(2)),
                ("k".into(), ParamValue::UInt(3)),
            ],
        )
        .unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = resolve_params(SPECS, &[("k".into(), ParamValue::Float(2.0))]).unwrap_err();
        assert!(err.contains("out of domain"), "{err}");
    }

    #[test]
    fn value_display_round_trips_through_parse() {
        for v in [
            ParamValue::Float(1.5),
            ParamValue::Float(2.0),
            ParamValue::Float(0.0625),
            ParamValue::UInt(8),
        ] {
            let domain = match v {
                ParamValue::UInt(_) => ParamDomain::UInt {
                    min: 0,
                    max: u64::MAX,
                },
                ParamValue::Float(_) => ParamDomain::Float {
                    min_exclusive: -1.0,
                    max: 1e9,
                },
            };
            assert_eq!(domain.parse_token(&v.to_string()).unwrap(), v);
        }
    }
}
