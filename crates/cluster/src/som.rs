//! Self-organizing map — the Golub et al. baseline (§2.3.2: "the SOM is
//! particularly well suited to identifying a small number of prominent
//! classes in a small data set").
//!
//! A rectangular grid of prototype vectors trained online with a Gaussian
//! neighborhood and exponentially decaying learning rate; records are then
//! assigned to their best-matching unit, each occupied unit forming one
//! cluster.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::AttrSource;
use crate::distance::euclidean;

/// SOM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SomParams {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns. The thesis's Golub reference used small grids such as
    /// 1×2 for two-class separation.
    pub cols: usize,
    /// Training epochs (full passes over the records).
    pub epochs: usize,
    /// Initial learning rate, decayed exponentially to ~1% of itself.
    pub learning_rate: f64,
    /// RNG seed for prototype initialization and record order shuffling.
    pub seed: u64,
}

impl Default for SomParams {
    fn default() -> SomParams {
        SomParams {
            rows: 1,
            cols: 2,
            epochs: 60,
            learning_rate: 0.5,
            seed: 0,
        }
    }
}

/// A trained SOM.
#[derive(Debug, Clone, PartialEq)]
pub struct SomResult {
    /// Best-matching unit (grid cell index, row-major) per record.
    pub assignments: Vec<usize>,
    /// Prototype vectors, one per grid cell (row-major).
    pub prototypes: Vec<Vec<f64>>,
    /// Grid shape `(rows, cols)`.
    pub shape: (usize, usize),
}

impl SomResult {
    /// Re-label assignments densely 0..k over *occupied* units, in order of
    /// first appearance — a flat clustering.
    pub fn clusters(&self) -> Vec<usize> {
        let mut map = std::collections::HashMap::new();
        let mut next = 0usize;
        self.assignments
            .iter()
            .map(|&bmu| {
                *map.entry(bmu).or_insert_with(|| {
                    let l = next;
                    next += 1;
                    l
                })
            })
            .collect()
    }
}

fn grid_distance2(shape: (usize, usize), a: usize, b: usize) -> f64 {
    let (ra, ca) = (a / shape.1, a % shape.1);
    let (rb, cb) = (b / shape.1, b % shape.1);
    let dr = ra as f64 - rb as f64;
    let dc = ca as f64 - cb as f64;
    dr * dr + dc * dc
}

/// Train a SOM over the records of `data`.
pub fn som<D: AttrSource>(data: &D, params: &SomParams) -> SomResult {
    let n = data.n_records();
    let units = params.rows * params.cols;
    assert!(units > 0, "grid must be non-empty");
    assert!(n > 0, "need at least one record");
    let records: Vec<Vec<f64>> = (0..n).map(|r| data.record_vector(r)).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Initialize prototypes as perturbed copies of random records.
    let mut prototypes: Vec<Vec<f64>> = (0..units)
        .map(|_| {
            let base = &records[rng.gen_range(0..n)];
            base.iter()
                .map(|v| v + rng.gen_range(-0.01..0.01) * (v.abs() + 1.0))
                .collect()
        })
        .collect();

    let shape = (params.rows, params.cols);
    let initial_radius = (params.rows.max(params.cols) as f64 / 2.0).max(1.0);
    let total_steps = (params.epochs * n).max(1) as f64;
    let mut step = 0f64;
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..params.epochs {
        // Shuffle record order each epoch.
        for i in (1..order.len()).rev() {
            order.swap(i, rng.gen_range(0..=i));
        }
        for &r in &order {
            let t = step / total_steps;
            let lr = params.learning_rate * (0.01f64).powf(t);
            let radius = initial_radius * (0.1f64 / initial_radius).powf(t).max(1e-3);
            let record = &records[r];
            let bmu = prototypes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| euclidean(record, a).total_cmp(&euclidean(record, b)))
                .map(|(i, _)| i)
                .expect("non-empty grid");
            for (u, proto) in prototypes.iter_mut().enumerate() {
                let g2 = grid_distance2(shape, bmu, u);
                let influence = (-g2 / (2.0 * radius * radius)).exp();
                if influence < 1e-4 {
                    continue;
                }
                for (p, v) in proto.iter_mut().zip(record) {
                    *p += lr * influence * (v - *p);
                }
            }
            step += 1.0;
        }
    }

    let assignments = records
        .iter()
        .map(|record| {
            prototypes
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| euclidean(record, a).total_cmp(&euclidean(record, b)))
                .map(|(i, _)| i)
                .expect("non-empty grid")
        })
        .collect();
    SomResult {
        assignments,
        prototypes,
        shape,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn two_blobs() -> Dataset {
        Dataset::from_records(&[
            vec![0.0, 0.0],
            vec![0.3, 0.2],
            vec![0.1, 0.4],
            vec![9.9, 10.0],
            vec![10.1, 9.8],
            vec![10.0, 10.3],
        ])
    }

    #[test]
    fn one_by_two_grid_separates_two_classes() {
        // The Golub-style setup: a 1×2 SOM splitting the data in two.
        let result = som(&two_blobs(), &SomParams::default());
        let clusters = result.clusters();
        assert_eq!(clusters[0], clusters[1]);
        assert_eq!(clusters[0], clusters[2]);
        assert_eq!(clusters[3], clusters[4]);
        assert_eq!(clusters[3], clusters[5]);
        assert_ne!(clusters[0], clusters[3]);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = SomParams {
            seed: 9,
            ..SomParams::default()
        };
        let r1 = som(&two_blobs(), &p);
        let r2 = som(&two_blobs(), &p);
        assert_eq!(r1.assignments, r2.assignments);
    }

    #[test]
    fn prototypes_land_near_blob_centers() {
        let result = som(&two_blobs(), &SomParams::default());
        // One prototype near (0.13, 0.2), the other near (10, 10).
        let near_origin = result
            .prototypes
            .iter()
            .any(|p| euclidean(p, &[0.13, 0.2]) < 1.0);
        let near_ten = result
            .prototypes
            .iter()
            .any(|p| euclidean(p, &[10.0, 10.0]) < 1.0);
        assert!(
            near_origin && near_ten,
            "prototypes: {:?}",
            result.prototypes
        );
    }

    #[test]
    fn cluster_labels_are_dense() {
        let result = som(
            &two_blobs(),
            &SomParams {
                rows: 3,
                cols: 3,
                ..SomParams::default()
            },
        );
        let clusters = result.clusters();
        let max = *clusters.iter().max().unwrap();
        let mut seen: Vec<usize> = clusters.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen, (0..=max).collect::<Vec<_>>());
    }
}
