//! Hierarchical agglomerative clustering — the baseline of Eisen et al.
//! (§2.3.2): "the hierarchical pairwise average-linkage cluster algorithm is
//! applied, and the standard correlation coefficient is used for the
//! distance measurement."
//!
//! Bottom-up merging under a chosen linkage; the full merge history (the
//! dendrogram) is retained and can be cut into any number of flat clusters.

use crate::dataset::AttrSource;
use crate::distance::{correlation_distance, euclidean};

/// Inter-cluster linkage rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average of pairwise distances (UPGMA) — the Eisen et al.
    /// choice.
    Average,
}

/// Record-to-record metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean distance.
    Euclidean,
    /// `1 − Pearson correlation` — the expression-profile metric.
    Correlation,
}

/// One merge step: clusters `a` and `b` (node ids) joined at `height`.
///
/// Node ids follow scipy convention: leaves are `0..n`; the merge at step
/// `s` creates node `n + s`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First child node id.
    pub a: usize,
    /// Second child node id.
    pub b: usize,
    /// Linkage distance at which the merge happened.
    pub height: f64,
    /// Number of leaves under the new node.
    pub size: usize,
}

/// A full agglomerative clustering: `n − 1` merges over `n` leaves.
#[derive(Debug, Clone, PartialEq)]
pub struct Dendrogram {
    /// Number of leaf records.
    pub n_leaves: usize,
    /// Merges in the order performed; heights are non-decreasing for
    /// average/complete linkage on a metric space.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// Cut into exactly `k` flat clusters (1 ≤ k ≤ n) by undoing the last
    /// `k − 1` merges. Returns a cluster index per leaf, labeled 0..k in
    /// order of first appearance.
    pub fn cut(&self, k: usize) -> Vec<usize> {
        let n = self.n_leaves;
        assert!(k >= 1 && k <= n, "k = {k} out of range for {n} leaves");
        // Union-find over the first n - k merges.
        let mut parent: Vec<usize> = (0..2 * n - 1).collect();
        fn find(parent: &mut [usize], x: usize) -> usize {
            let mut root = x;
            while parent[root] != root {
                root = parent[root];
            }
            let mut cur = x;
            while parent[cur] != root {
                let next = parent[cur];
                parent[cur] = root;
                cur = next;
            }
            root
        }
        for (s, merge) in self.merges.iter().take(n - k).enumerate() {
            let node = n + s;
            let ra = find(&mut parent, merge.a);
            let rb = find(&mut parent, merge.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0;
        let mut map: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (leaf, slot) in labels.iter_mut().enumerate() {
            let root = find(&mut parent, leaf);
            let label = *map.entry(root).or_insert_with(|| {
                let l = next;
                next += 1;
                l
            });
            *slot = label;
        }
        labels
    }
}

/// Agglomerate the records of `data` under the given metric and linkage.
pub fn agglomerate<D: AttrSource>(data: &D, metric: Metric, linkage: Linkage) -> Dendrogram {
    let n = data.n_records();
    assert!(n >= 1, "need at least one record");
    let records: Vec<Vec<f64>> = (0..n).map(|r| data.record_vector(r)).collect();
    let dist = |a: &[f64], b: &[f64]| match metric {
        Metric::Euclidean => euclidean(a, b),
        Metric::Correlation => correlation_distance(a, b),
    };

    // Active clusters: node id, member leaves.
    struct Active {
        node: usize,
        members: Vec<usize>,
    }
    let mut active: Vec<Active> = (0..n)
        .map(|r| Active {
            node: r,
            members: vec![r],
        })
        .collect();

    // Leaf-level distance matrix (condensed, row-major upper triangle).
    let leaf_dist: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| dist(&records[i], &records[j])).collect())
        .collect();

    let linkage_dist = |a: &Active, b: &Active| -> f64 {
        let mut acc: f64 = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => f64::NEG_INFINITY,
            Linkage::Average => 0.0,
        };
        for &i in &a.members {
            for &j in &b.members {
                let d = leaf_dist[i][j];
                match linkage {
                    Linkage::Single => acc = acc.min(d),
                    Linkage::Complete => acc = acc.max(d),
                    Linkage::Average => acc += d,
                }
            }
        }
        if linkage == Linkage::Average {
            acc / (a.members.len() * b.members.len()) as f64
        } else {
            acc
        }
    };

    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_node = n;
    while active.len() > 1 {
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..active.len() {
            for j in (i + 1)..active.len() {
                let d = linkage_dist(&active[i], &active[j]);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, height) = best;
        let b = active.swap_remove(j);
        let a = std::mem::replace(
            &mut active[i],
            Active {
                node: next_node,
                members: Vec::new(),
            },
        );
        let mut members = a.members;
        members.extend(b.members);
        let size = members.len();
        merges.push(Merge {
            a: a.node,
            b: b.node,
            height,
            size,
        });
        active[i].members = members;
        next_node += 1;
    }
    Dendrogram {
        n_leaves: n,
        merges,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn blobs() -> Dataset {
        Dataset::from_records(&[
            vec![0.0, 0.0],
            vec![0.5, 0.0],
            vec![0.0, 0.5],
            vec![20.0, 20.0],
            vec![20.5, 20.0],
        ])
    }

    #[test]
    fn cut_recovers_blobs() {
        let dend = agglomerate(&blobs(), Metric::Euclidean, Linkage::Average);
        assert_eq!(dend.merges.len(), 4);
        let labels = dend.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
    }

    #[test]
    fn cut_extremes() {
        let dend = agglomerate(&blobs(), Metric::Euclidean, Linkage::Average);
        let one = dend.cut(1);
        assert!(one.iter().all(|&l| l == 0));
        let all = dend.cut(5);
        let mut sorted = all.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn average_linkage_heights_are_monotone() {
        let dend = agglomerate(&blobs(), Metric::Euclidean, Linkage::Average);
        for pair in dend.merges.windows(2) {
            assert!(pair[1].height >= pair[0].height - 1e-12);
        }
    }

    #[test]
    fn correlation_metric_groups_coexpressed_profiles() {
        // Profiles 0 and 1 are scaled copies (r = 1); profile 2 is
        // anti-correlated.
        let d = Dataset::from_records(&[
            vec![1.0, 2.0, 3.0, 4.0],
            vec![10.0, 20.0, 30.0, 40.0],
            vec![4.0, 3.0, 2.0, 1.0],
        ]);
        let dend = agglomerate(&d, Metric::Correlation, Linkage::Average);
        let labels = dend.cut(2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
        assert!(dend.merges[0].height < 1e-9);
    }

    #[test]
    fn linkages_differ_on_chains() {
        // A chain: single linkage merges everything early; complete resists.
        let d = Dataset::from_records(&[vec![0.0], vec![1.0], vec![2.0], vec![3.0]]);
        let single = agglomerate(&d, Metric::Euclidean, Linkage::Single);
        let complete = agglomerate(&d, Metric::Euclidean, Linkage::Complete);
        let last_single = single.merges.last().unwrap().height;
        let last_complete = complete.merges.last().unwrap().height;
        assert!(last_single <= last_complete);
        assert_eq!(last_single, 1.0);
        assert_eq!(last_complete, 3.0);
    }

    #[test]
    fn merge_sizes_track_leaves() {
        let dend = agglomerate(&blobs(), Metric::Euclidean, Linkage::Average);
        assert_eq!(dend.merges.last().unwrap().size, 5);
    }
}
