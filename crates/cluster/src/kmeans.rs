//! k-means clustering — one of the baselines the thesis surveys (§2.3.1:
//! "self-organizing map and k-means clustering methods employ a 'top-down'
//! approach, in which the user pre-defines the number of clusters").
//!
//! Lloyd's algorithm with k-means++ seeding, deterministic under the given
//! seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dataset::AttrSource;
use crate::distance::euclidean;

/// k-means configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansParams {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// RNG seed for k-means++ initialization.
    pub seed: u64,
}

impl Default for KMeansParams {
    fn default() -> KMeansParams {
        KMeansParams {
            k: 2,
            max_iters: 100,
            seed: 0,
        }
    }
}

/// A k-means result.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansResult {
    /// Cluster index (0..k) per record.
    pub assignments: Vec<usize>,
    /// Final centroids, `k` rows of `n_attrs` values.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances of records to their centroids.
    pub inertia: f64,
    /// Lloyd iterations performed.
    pub iterations: usize,
}

/// Run k-means over the records of `data`.
///
/// Panics when `k` is zero or exceeds the record count.
pub fn kmeans<D: AttrSource>(data: &D, params: &KMeansParams) -> KMeansResult {
    let n = data.n_records();
    let k = params.k;
    assert!(k > 0 && k <= n, "k = {k} out of range for {n} records");
    let records: Vec<Vec<f64>> = (0..n).map(|r| data.record_vector(r)).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);

    // k-means++ seeding.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(records[rng.gen_range(0..n)].clone());
    while centroids.len() < k {
        let d2: Vec<f64> = records
            .iter()
            .map(|r| {
                centroids
                    .iter()
                    .map(|c| euclidean(r, c))
                    .fold(f64::INFINITY, f64::min)
                    .powi(2)
            })
            .collect();
        let total: f64 = d2.iter().sum();
        let next = if total <= 0.0 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen_range(0.0..total);
            let mut chosen = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                if target < w {
                    chosen = i;
                    break;
                }
                target -= w;
            }
            chosen
        };
        centroids.push(records[next].clone());
    }

    let mut assignments = vec![0usize; n];
    let mut iterations = 0;
    for _ in 0..params.max_iters {
        iterations += 1;
        // Assignment step.
        let mut changed = false;
        for (r, record) in records.iter().enumerate() {
            let nearest = centroids
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| euclidean(record, a).total_cmp(&euclidean(record, b)))
                .map(|(i, _)| i)
                .expect("k > 0");
            if assignments[r] != nearest {
                assignments[r] = nearest;
                changed = true;
            }
        }
        // Update step.
        let n_attrs = data.n_attrs();
        let mut sums = vec![vec![0.0; n_attrs]; k];
        let mut counts = vec![0usize; k];
        for (r, record) in records.iter().enumerate() {
            counts[assignments[r]] += 1;
            for (s, v) in sums[assignments[r]].iter_mut().zip(record) {
                *s += v;
            }
        }
        for (c, (sum, count)) in sums.into_iter().zip(&counts).enumerate() {
            if *count > 0 {
                centroids[c] = sum.into_iter().map(|s| s / *count as f64).collect();
            }
            // Empty clusters keep their previous centroid.
        }
        if !changed && iterations > 1 {
            break;
        }
    }

    let inertia = records
        .iter()
        .zip(&assignments)
        .map(|(r, &c)| euclidean(r, &centroids[c]).powi(2))
        .sum();
    KMeansResult {
        assignments,
        centroids,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    fn two_blobs() -> Dataset {
        Dataset::from_records(&[
            vec![0.0, 0.1],
            vec![0.2, 0.0],
            vec![0.1, 0.2],
            vec![10.0, 10.1],
            vec![10.2, 9.9],
            vec![9.9, 10.0],
        ])
    }

    #[test]
    fn separates_two_blobs() {
        let result = kmeans(
            &two_blobs(),
            &KMeansParams {
                k: 2,
                max_iters: 50,
                seed: 1,
            },
        );
        let a = result.assignments[0];
        assert!(result.assignments[..3].iter().all(|&c| c == a));
        let b = result.assignments[3];
        assert_ne!(a, b);
        assert!(result.assignments[3..].iter().all(|&c| c == b));
        assert!(result.inertia < 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let p = KMeansParams {
            k: 2,
            max_iters: 50,
            seed: 42,
        };
        let r1 = kmeans(&two_blobs(), &p);
        let r2 = kmeans(&two_blobs(), &p);
        assert_eq!(r1.assignments, r2.assignments);
        assert_eq!(r1.inertia, r2.inertia);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let d = two_blobs();
        let result = kmeans(
            &d,
            &KMeansParams {
                k: 6,
                max_iters: 50,
                seed: 3,
            },
        );
        assert!(result.inertia < 1e-18);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_k_larger_than_n() {
        kmeans(
            &two_blobs(),
            &KMeansParams {
                k: 7,
                max_iters: 10,
                seed: 0,
            },
        );
    }
}
