//! The Fascicles algorithm (Jagadish, Madar, Ng — VLDB 1999; thesis §2.5.1).
//!
//! A *fascicle* is a set of records that "more or less agree" — within a
//! per-attribute tolerance — on at least `k` attributes, the fascicle's
//! *compact attributes*. Given the tolerance vector `t` and minimum compact
//! count `k`, the miner finds fascicles with at least `min_records` members.
//! If a fascicle consists of only cancerous libraries, its compact tags
//! collectively form a signature of the cancer — the thesis's route to
//! candidate genes.
//!
//! Two miners are provided:
//!
//! * [`mine_greedy`] — the production algorithm: seed-and-grow. Every
//!   record seeds a candidate fascicle, which greedily absorbs whichever
//!   remaining record keeps the most compact attributes, as long as at
//!   least `k` remain; duplicate grown sets are collapsed. Each growth
//!   round is linear in records × attributes, matching the §3.3.1
//!   complexity claim. Seeds are processed in batches of `batch_size`
//!   (the memory-bounded phase structure of the VLDB paper, surfaced in
//!   the thesis's GUI as "how big of a chunk phase 1 would use").
//!   Fascicles may overlap — "a library may be included in multiple
//!   clusters" (§3.1.1).
//! * [`mine_exact`] — exhaustive enumeration of record subsets, feasible
//!   only for small inputs; used to cross-validate the greedy miner in
//!   tests. Reports all *maximal* qualifying fascicles, which may overlap.

use crate::dataset::AttrSource;
use crate::tolerance::ToleranceVector;

/// Mining parameters (the thesis's Figure 4.6 inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct FascicleParams {
    /// `k` — minimum number of compact attributes.
    pub min_compact_attrs: usize,
    /// Minimum number of records in a reported fascicle ("min size = the
    /// minimum # of tuples per set").
    pub min_records: usize,
    /// Records ingested per phase-1 batch.
    pub batch_size: usize,
}

impl Default for FascicleParams {
    fn default() -> FascicleParams {
        FascicleParams {
            min_compact_attrs: 1,
            min_records: 2,
            batch_size: 6, // the thesis's example batch size
        }
    }
}

/// A mined fascicle.
#[derive(Debug, Clone, PartialEq)]
pub struct Fascicle {
    /// Member records, ascending.
    pub records: Vec<usize>,
    /// Compact attributes, ascending.
    pub compact_attrs: Vec<usize>,
    /// Per-compact-attribute value ranges `(lo, hi)`, aligned with
    /// `compact_attrs`.
    pub compact_ranges: Vec<(f64, f64)>,
}

impl Fascicle {
    /// Number of member records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the fascicle has no members.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The value range of a compact attribute, if it is compact here.
    pub fn range_of(&self, attr: usize) -> Option<(f64, f64)> {
        self.compact_attrs
            .binary_search(&attr)
            .ok()
            .map(|i| self.compact_ranges[i])
    }

    /// Re-verify the fascicle invariant against the data: every listed
    /// compact attribute's spread over the member records is within
    /// tolerance, and the recorded ranges are exact.
    pub fn verify<D: AttrSource>(&self, data: &D, tol: &ToleranceVector) -> bool {
        for (&attr, &(lo, hi)) in self.compact_attrs.iter().zip(&self.compact_ranges) {
            let vals = data.attr_values(attr);
            let actual_lo = self
                .records
                .iter()
                .map(|&r| vals[r])
                .fold(f64::INFINITY, f64::min);
            let actual_hi = self
                .records
                .iter()
                .map(|&r| vals[r])
                .fold(f64::NEG_INFINITY, f64::max);
            if actual_lo != lo || actual_hi != hi || !tol.is_compact(attr, lo, hi) {
                return false;
            }
        }
        true
    }
}

/// Internal candidate: member records plus the per-attribute envelope.
#[derive(Debug, Clone)]
struct Candidate {
    records: Vec<usize>,
    lo: Vec<f64>,
    hi: Vec<f64>,
    compact: usize,
}

impl Candidate {
    fn singleton<D: AttrSource>(data: &D, record: usize) -> Candidate {
        let n_attrs = data.n_attrs();
        let mut lo = Vec::with_capacity(n_attrs);
        for a in 0..n_attrs {
            lo.push(data.attr_values(a)[record]);
        }
        let hi = lo.clone();
        Candidate {
            records: vec![record],
            compact: n_attrs,
            lo,
            hi,
        }
    }

    /// Compact attributes the union of `self` and `other` would retain.
    fn union_compact(&self, other: &Candidate, tol: &ToleranceVector) -> usize {
        let mut count = 0;
        for a in 0..self.lo.len() {
            let lo = self.lo[a].min(other.lo[a]);
            let hi = self.hi[a].max(other.hi[a]);
            if tol.is_compact(a, lo, hi) {
                count += 1;
            }
        }
        count
    }

    fn merge(&mut self, other: Candidate, tol: &ToleranceVector) {
        self.records.extend(other.records);
        self.records.sort_unstable();
        let mut compact = 0;
        for a in 0..self.lo.len() {
            self.lo[a] = self.lo[a].min(other.lo[a]);
            self.hi[a] = self.hi[a].max(other.hi[a]);
            if tol.is_compact(a, self.lo[a], self.hi[a]) {
                compact += 1;
            }
        }
        self.compact = compact;
    }

    fn into_fascicle(self, tol: &ToleranceVector) -> Fascicle {
        let mut compact_attrs = Vec::new();
        let mut compact_ranges = Vec::new();
        for a in 0..self.lo.len() {
            if tol.is_compact(a, self.lo[a], self.hi[a]) {
                compact_attrs.push(a);
                compact_ranges.push((self.lo[a], self.hi[a]));
            }
        }
        Fascicle {
            records: self.records,
            compact_attrs,
            compact_ranges,
        }
    }
}

/// Grow one seed: repeatedly absorb the record whose addition keeps the
/// most compact attributes, while at least `k` remain.
fn grow_seed<D: AttrSource>(data: &D, tol: &ToleranceVector, k: usize, seed: usize) -> Candidate {
    let mut grown = Candidate::singleton(data, seed);
    let mut available: Vec<bool> = vec![true; data.n_records()];
    available[seed] = false;
    loop {
        let mut best: Option<(usize, usize)> = None; // (record, compact)
        for (r, &avail) in available.iter().enumerate() {
            if !avail {
                continue;
            }
            let other = Candidate::singleton(data, r);
            let compact = grown.union_compact(&other, tol);
            if compact >= k && best.map(|(_, c)| compact > c).unwrap_or(true) {
                best = Some((r, compact));
            }
        }
        match best {
            Some((r, _)) => {
                available[r] = false;
                grown.merge(Candidate::singleton(data, r), tol);
            }
            None => break,
        }
    }
    grown
}

/// The batched seed-and-grow miner. Returns qualifying fascicles sorted by
/// descending member count (ties by first record id); duplicate grown sets
/// are collapsed, and a fascicle that is a subset of another reported
/// fascicle is dropped.
pub fn mine_greedy<D: AttrSource>(
    data: &D,
    tol: &ToleranceVector,
    params: &FascicleParams,
) -> Vec<Fascicle> {
    assert_eq!(
        tol.len(),
        data.n_attrs(),
        "tolerance vector must cover every attribute"
    );
    assert!(params.batch_size > 0, "batch size must be positive");
    let k = params.min_compact_attrs;
    let mut grown: Vec<Candidate> = Vec::new();
    let mut batch_start = 0;
    while batch_start < data.n_records() {
        let batch_end = (batch_start + params.batch_size).min(data.n_records());
        for seed in batch_start..batch_end {
            let candidate = grow_seed(data, tol, k, seed);
            if candidate.records.len() >= params.min_records
                && candidate.compact >= k
                && !grown.iter().any(|g| g.records == candidate.records)
            {
                grown.push(candidate);
            }
        }
        batch_start = batch_end;
    }
    // Drop fascicles subsumed by a larger one.
    let sets: Vec<Vec<usize>> = grown.iter().map(|g| g.records.clone()).collect();
    let mut fascicles: Vec<Fascicle> = grown
        .into_iter()
        .filter(|c| {
            !sets.iter().any(|other| {
                other.len() > c.records.len() && c.records.iter().all(|r| other.contains(r))
            })
        })
        .map(|c| c.into_fascicle(tol))
        .collect();
    fascicles.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.records.cmp(&b.records))
    });
    fascicles
}

/// Exhaustive miner for small inputs (≤ 22 records): every record subset of
/// size ≥ `min_records` with ≥ `k` compact attributes, filtered to the
/// *maximal* qualifying subsets.
pub fn mine_exact<D: AttrSource>(
    data: &D,
    tol: &ToleranceVector,
    params: &FascicleParams,
) -> Vec<Fascicle> {
    let n = data.n_records();
    assert!(n <= 22, "mine_exact is exponential; got {n} records");
    assert_eq!(tol.len(), data.n_attrs());
    let k = params.min_compact_attrs;

    let compact_count = |members: u32| -> usize {
        let mut count = 0;
        for a in 0..data.n_attrs() {
            let vals = data.attr_values(a);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for (r, &v) in vals.iter().enumerate().take(n) {
                if members & (1 << r) != 0 {
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            if tol.is_compact(a, lo, hi) {
                count += 1;
            }
        }
        count
    };

    // Collect all qualifying subsets, then keep the maximal ones.
    let mut qualifying: Vec<u32> = Vec::new();
    for members in 1u32..(1 << n) {
        if (members.count_ones() as usize) < params.min_records {
            continue;
        }
        if compact_count(members) >= k {
            qualifying.push(members);
        }
    }
    let all = qualifying.clone();
    qualifying.retain(|&m| !all.iter().any(|&other| other != m && other & m == m));

    let mut fascicles: Vec<Fascicle> = qualifying
        .into_iter()
        .map(|members| {
            let records: Vec<usize> = (0..n).filter(|r| members & (1 << r) != 0).collect();
            let mut compact_attrs = Vec::new();
            let mut compact_ranges = Vec::new();
            for a in 0..data.n_attrs() {
                let vals = data.attr_values(a);
                let lo = records
                    .iter()
                    .map(|&r| vals[r])
                    .fold(f64::INFINITY, f64::min);
                let hi = records
                    .iter()
                    .map(|&r| vals[r])
                    .fold(f64::NEG_INFINITY, f64::max);
                if tol.is_compact(a, lo, hi) {
                    compact_attrs.push(a);
                    compact_ranges.push((lo, hi));
                }
            }
            Fascicle {
                records,
                compact_attrs,
                compact_ranges,
            }
        })
        .collect();
    fascicles.sort_by(|a, b| {
        b.len()
            .cmp(&a.len())
            .then_with(|| a.records.cmp(&b.records))
    });
    fascicles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    /// The Table 2.2 fragment: 10 libraries × 5 tags.
    fn table_2_2() -> Dataset {
        Dataset::from_records(&[
            vec![1843.0, 3.0, 10.0, 15.0, 11.0], // SAGE_BB542_whitematter
            vec![1418.0, 7.0, 0.0, 30.0, 12.0],  // SAGE_Duke_1273
            vec![1251.0, 18.0, 0.0, 33.0, 20.0], // SAGE_Duke_757
            vec![1800.0, 0.0, 58.0, 40.0, 20.0], // SAGE_Duke_cerebellum
            vec![1050.0, 25.0, 1.0, 60.0, 15.0], // SAGE_Duke_GBM_H1110
            vec![1910.0, 1.0, 17.0, 74.0, 30.0], // SAGE_Duke_H1020
            vec![503.0, 8.0, 0.0, 0.0, 456.0],   // SAGE_95_259
            vec![364.0, 7.0, 7.0, 7.0, 222.0],   // SAGE_95_260
            vec![65.0, 5.0, 79.0, 9.0, 300.0],   // SAGE_Br_N
            vec![847.0, 4.0, 124.0, 0.0, 500.0], // SAGE_DCIS
        ])
    }

    /// The §2.5.1 tolerances. Note: the thesis states t_AAAAAAAAAT = 47 and
    /// claims libraries {0, 3, 5} are in a 5-D fascicle, but their actual
    /// spread on that tag is 58 − 10 = 48 — an off-by-one slip in the
    /// thesis's example. We use 48 so the example's *conclusion* holds.
    fn table_2_2_tolerances() -> ToleranceVector {
        ToleranceVector::from_values(vec![120.0, 3.0, 48.0, 60.0, 20.0])
    }

    #[test]
    fn thesis_example_fascicle_is_found_exactly() {
        let data = table_2_2();
        let tol = table_2_2_tolerances();
        let params = FascicleParams {
            min_compact_attrs: 5,
            min_records: 3,
            batch_size: 10,
        };
        let fascicles = mine_exact(&data, &tol, &params);
        let hit = fascicles
            .iter()
            .find(|f| f.records == vec![0, 3, 5])
            .expect("the thesis's {whitematter, cerebellum, H1020} fascicle");
        assert_eq!(hit.compact_attrs, vec![0, 1, 2, 3, 4]);
        assert!(hit.verify(&data, &tol));
    }

    #[test]
    fn greedy_finds_the_thesis_fascicle() {
        let data = table_2_2();
        let tol = table_2_2_tolerances();
        let params = FascicleParams {
            min_compact_attrs: 5,
            min_records: 3,
            batch_size: 6,
        };
        let fascicles = mine_greedy(&data, &tol, &params);
        assert!(
            fascicles.iter().any(|f| f.records == vec![0, 3, 5]),
            "greedy missed the planted fascicle: {:?}",
            fascicles.iter().map(|f| &f.records).collect::<Vec<_>>()
        );
        for f in &fascicles {
            assert!(f.verify(&data, &tol));
            assert!(f.compact_attrs.len() >= 5);
            assert!(f.len() >= 3);
        }
    }

    #[test]
    fn greedy_respects_min_records() {
        let data = table_2_2();
        let tol = table_2_2_tolerances();
        let params = FascicleParams {
            min_compact_attrs: 5,
            min_records: 4,
            batch_size: 10,
        };
        let fascicles = mine_greedy(&data, &tol, &params);
        assert!(fascicles.iter().all(|f| f.len() >= 4));
    }

    #[test]
    fn zero_tolerance_groups_only_identical_records() {
        let data = Dataset::from_records(&[vec![1.0, 2.0], vec![1.0, 2.0], vec![1.0, 3.0]]);
        let tol = ToleranceVector::from_values(vec![0.0, 0.0]);
        let params = FascicleParams {
            min_compact_attrs: 2,
            min_records: 2,
            batch_size: 3,
        };
        let fascicles = mine_greedy(&data, &tol, &params);
        assert_eq!(fascicles.len(), 1);
        assert_eq!(fascicles[0].records, vec![0, 1]);
    }

    #[test]
    fn exact_reports_maximal_overlapping_fascicles() {
        // Records 0,1 agree on attr 0; records 1,2 agree on attr 1. With
        // k = 1, both pairs are maximal 1-compact fascicles containing
        // record 1.
        let data = Dataset::from_records(&[vec![0.0, 0.0], vec![1.0, 10.0], vec![50.0, 11.0]]);
        let tol = ToleranceVector::from_values(vec![2.0, 2.0]);
        let params = FascicleParams {
            min_compact_attrs: 1,
            min_records: 2,
            batch_size: 3,
        };
        let fascicles = mine_exact(&data, &tol, &params);
        let sets: Vec<&Vec<usize>> = fascicles.iter().map(|f| &f.records).collect();
        assert!(sets.contains(&&vec![0, 1]));
        assert!(sets.contains(&&vec![1, 2]));
    }

    #[test]
    fn greedy_batching_covers_all_records() {
        let data = table_2_2();
        let tol = table_2_2_tolerances();
        for batch_size in [1, 2, 3, 5, 10] {
            let params = FascicleParams {
                min_compact_attrs: 4,
                min_records: 2,
                batch_size,
            };
            let fascicles = mine_greedy(&data, &tol, &params);
            for f in &fascicles {
                assert!(f.verify(&data, &tol), "batch_size {batch_size}");
            }
            // No duplicate or subsumed fascicles are reported.
            for (i, f) in fascicles.iter().enumerate() {
                for (j, g) in fascicles.iter().enumerate() {
                    if i != j {
                        assert!(
                            !f.records.iter().all(|r| g.records.contains(r)),
                            "fascicle {:?} subsumed by {:?}",
                            f.records,
                            g.records
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fascicle_range_lookup() {
        let data = table_2_2();
        let tol = table_2_2_tolerances();
        let params = FascicleParams {
            min_compact_attrs: 5,
            min_records: 3,
            batch_size: 10,
        };
        let f = mine_exact(&data, &tol, &params)
            .into_iter()
            .find(|f| f.records == vec![0, 3, 5])
            .unwrap();
        assert_eq!(f.range_of(0), Some((1800.0, 1910.0)));
        assert_eq!(f.range_of(1), Some((0.0, 3.0)));
    }
}
