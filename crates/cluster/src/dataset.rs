//! The clustering input: records × numeric attributes.
//!
//! In GEA the records are SAGE libraries and the attributes are tags, but
//! the algorithms in this crate are domain-agnostic. Data is stored
//! attribute-major, matching the rotated physical layout of the expression
//! matrix (one attribute's values across all records are contiguous), which
//! is the access pattern of compactness checks and tolerance generation.

/// Anything that can serve records × attributes to the miners.
pub trait AttrSource {
    /// Number of records (rows in the conceptual view; SAGE libraries).
    fn n_records(&self) -> usize;

    /// Number of attributes (columns in the conceptual view; tags).
    fn n_attrs(&self) -> usize;

    /// One attribute's values across all records, length [`Self::n_records`].
    fn attr_values(&self, attr: usize) -> &[f64];

    /// The value of `attr` for `record`.
    fn value(&self, record: usize, attr: usize) -> f64 {
        self.attr_values(attr)[record]
    }

    /// Materialize one record's values across all attributes.
    fn record_vector(&self, record: usize) -> Vec<f64> {
        (0..self.n_attrs())
            .map(|a| self.attr_values(a)[record])
            .collect()
    }
}

/// An owned attribute-major dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    n_records: usize,
    n_attrs: usize,
    /// `values[attr * n_records + record]`.
    values: Vec<f64>,
}

impl Dataset {
    /// Build from attribute-major storage. `values.len()` must equal
    /// `n_attrs * n_records`.
    pub fn from_attr_major(values: Vec<f64>, n_records: usize) -> Dataset {
        assert!(
            n_records > 0 && values.len().is_multiple_of(n_records),
            "values length {} not divisible by record count {}",
            values.len(),
            n_records
        );
        Dataset {
            n_records,
            n_attrs: values.len() / n_records,
            values,
        }
    }

    /// Build from record-major rows (each row one record).
    pub fn from_records(rows: &[Vec<f64>]) -> Dataset {
        assert!(!rows.is_empty(), "need at least one record");
        let n_records = rows.len();
        let n_attrs = rows[0].len();
        let mut values = vec![0.0; n_records * n_attrs];
        for (r, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), n_attrs, "ragged record {r}");
            for (a, &v) in row.iter().enumerate() {
                values[a * n_records + r] = v;
            }
        }
        Dataset {
            n_records,
            n_attrs,
            values,
        }
    }
}

impl AttrSource for Dataset {
    fn n_records(&self) -> usize {
        self.n_records
    }

    fn n_attrs(&self) -> usize {
        self.n_attrs
    }

    fn attr_values(&self, attr: usize) -> &[f64] {
        &self.values[attr * self.n_records..(attr + 1) * self.n_records]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_attr_views_agree() {
        let d = Dataset::from_records(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(d.n_records(), 2);
        assert_eq!(d.n_attrs(), 3);
        assert_eq!(d.attr_values(1), &[2.0, 5.0]);
        assert_eq!(d.record_vector(0), vec![1.0, 2.0, 3.0]);
        assert_eq!(d.value(1, 2), 6.0);
    }

    #[test]
    fn attr_major_roundtrip() {
        let d = Dataset::from_attr_major(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], 2);
        assert_eq!(d.n_attrs(), 3);
        assert_eq!(d.record_vector(1), vec![4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Dataset::from_records(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
