//! Fascicle-based semantic compression (Jagadish, Madar & Ng, VLDB 1999).
//!
//! The fascicle abstraction was invented for *semantic compression*: within
//! a fascicle, each compact attribute's values agree to within the
//! tolerance, so they can be stored once (a representative value) instead
//! of once per record — a lossy encoding whose per-cell error is bounded by
//! the tolerance. The thesis repurposes fascicles for signature discovery
//! (§2.5.1 cites the compression paper); this module implements the
//! original use, both as a correctness check on mined fascicles and as the
//! storage-saving ablation metric reported by `repro`.

use crate::dataset::AttrSource;
use crate::fascicle::Fascicle;
use crate::tolerance::ToleranceVector;

/// The result of compressing a dataset with a set of fascicles.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressionSummary {
    /// Total cells in the dataset (records × attributes).
    pub cells_total: usize,
    /// Cells elided by fascicle encoding: for each fascicle, each compact
    /// attribute stores one representative instead of one value per member.
    pub cells_saved: usize,
    /// Maximum absolute reconstruction error over all elided cells.
    pub max_error: f64,
    /// Largest tolerance-relative error (`|error| / tolerance`; ≤ 1 for a
    /// valid fascicle set with midpoint representatives... see
    /// [`compress`]).
    pub max_relative_error: f64,
}

impl CompressionSummary {
    /// Fraction of cells saved.
    pub fn ratio(&self) -> f64 {
        if self.cells_total == 0 {
            0.0
        } else {
            self.cells_saved as f64 / self.cells_total as f64
        }
    }
}

/// Compress `data` with `fascicles`: each fascicle's compact attributes are
/// replaced, for all member records, by the range midpoint. Overlapping
/// fascicles are applied first-wins per record (a record's cell is elided
/// at most once).
///
/// Returns the summary; the reconstruction error of every elided cell is
/// at most half the attribute's fascicle range, hence at most half the
/// tolerance — verified and reported.
pub fn compress<D: AttrSource>(
    data: &D,
    fascicles: &[Fascicle],
    tol: &ToleranceVector,
) -> CompressionSummary {
    let cells_total = data.n_records() * data.n_attrs();
    let mut elided = vec![false; cells_total];
    let mut cells_saved = 0usize;
    let mut max_error = 0.0f64;
    let mut max_relative_error = 0.0f64;
    for fascicle in fascicles {
        for (&attr, &(lo, hi)) in fascicle.compact_attrs.iter().zip(&fascicle.compact_ranges) {
            let representative = (lo + hi) / 2.0;
            let mut members_elided = 0usize;
            for &record in &fascicle.records {
                let idx = record * data.n_attrs() + attr;
                if elided[idx] {
                    continue;
                }
                elided[idx] = true;
                members_elided += 1;
                let actual = data.attr_values(attr)[record];
                let err = (actual - representative).abs();
                max_error = max_error.max(err);
                let t = tol.get(attr);
                if t > 0.0 {
                    max_relative_error = max_relative_error.max(err / t);
                }
            }
            // One representative replaces the elided members' cells.
            cells_saved += members_elided.saturating_sub(1);
        }
    }
    CompressionSummary {
        cells_total,
        cells_saved,
        max_error,
        max_relative_error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::fascicle::{mine_greedy, FascicleParams};

    fn data() -> Dataset {
        Dataset::from_records(&[
            vec![10.0, 100.0, 5.0],
            vec![11.0, 102.0, 50.0],
            vec![10.5, 101.0, 500.0],
            vec![90.0, 900.0, 5000.0],
        ])
    }

    #[test]
    fn compression_counts_and_error_bound() {
        let d = data();
        let tol = ToleranceVector::from_values(vec![2.0, 4.0, 10.0]);
        let fascicles = mine_greedy(
            &d,
            &tol,
            &FascicleParams {
                min_compact_attrs: 2,
                min_records: 3,
                batch_size: 4,
            },
        );
        assert_eq!(fascicles.len(), 1);
        assert_eq!(fascicles[0].records, vec![0, 1, 2]);
        let summary = compress(&d, &fascicles, &tol);
        assert_eq!(summary.cells_total, 12);
        // Two compact attrs × (3 members − 1) = 4 cells saved.
        assert_eq!(summary.cells_saved, 4);
        assert!((summary.ratio() - 4.0 / 12.0).abs() < 1e-12);
        // Midpoint representative error ≤ half the range ≤ half the
        // tolerance.
        assert!(summary.max_error <= 2.0);
        assert!(summary.max_relative_error <= 0.5 + 1e-12);
    }

    #[test]
    fn no_fascicles_no_savings() {
        let d = data();
        let tol = ToleranceVector::from_values(vec![2.0, 4.0, 10.0]);
        let summary = compress(&d, &[], &tol);
        assert_eq!(summary.cells_saved, 0);
        assert_eq!(summary.max_error, 0.0);
    }

    #[test]
    fn overlapping_fascicles_elide_each_cell_once() {
        let d = data();
        let tol = ToleranceVector::from_values(vec![2.0, 4.0, 10.0]);
        let fascicles = mine_greedy(
            &d,
            &tol,
            &FascicleParams {
                min_compact_attrs: 2,
                min_records: 3,
                batch_size: 4,
            },
        );
        // Apply the same fascicle twice; savings must not double-count.
        let doubled: Vec<Fascicle> = fascicles.iter().chain(fascicles.iter()).cloned().collect();
        let once = compress(&d, &fascicles, &tol);
        let twice = compress(&d, &doubled, &tol);
        // The second copy's members are already elided, so its per-attr
        // contribution is 0 elided → saturating_sub keeps it at 0.
        assert_eq!(once.cells_saved, twice.cells_saved);
    }
}
