//! Distance functions for the baseline clusterers.
//!
//! The thesis's survey (§2.3) names the distances the field used: Euclidean
//! distance for k-means-style methods, and the Pearson correlation
//! coefficient (as a similarity, used by Eisen et al. and Ng et al.) for
//! hierarchical clustering of expression profiles.

/// Euclidean distance between two equal-length vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Pearson correlation coefficient of two equal-length vectors; 0 when
/// either vector is constant (no linear relationship measurable).
pub fn pearson(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len() as f64;
    if a.is_empty() {
        return 0.0;
    }
    let mean_a = a.iter().sum::<f64>() / n;
    let mean_b = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in a.iter().zip(b) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a == 0.0 || var_b == 0.0 {
        return 0.0;
    }
    cov / (var_a.sqrt() * var_b.sqrt())
}

/// Correlation distance `1 − r`, in `[0, 2]`: 0 for perfectly co-expressed
/// profiles, 2 for perfectly anti-correlated ones.
pub fn correlation_distance(a: &[f64], b: &[f64]) -> f64 {
    1.0 - pearson(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn pearson_of_identical_profiles_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert!((pearson(&a, &a) - 1.0).abs() < 1e-12);
        // Scaling and shifting preserve correlation.
        let b: Vec<f64> = a.iter().map(|x| 10.0 * x + 5.0).collect();
        assert!((pearson(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_anticorrelated_is_minus_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [3.0, 2.0, 1.0];
        assert!((pearson(&a, &b) + 1.0).abs() < 1e-12);
        assert!((correlation_distance(&a, &b) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn constant_vector_has_zero_correlation() {
        assert_eq!(pearson(&[5.0, 5.0, 5.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(correlation_distance(&[5.0, 5.0], &[5.0, 5.0]), 1.0);
    }

    #[test]
    fn pearson_is_symmetric_and_bounded() {
        let a = [1.0, 5.0, 2.0, 8.0, 3.0];
        let b = [2.0, 4.0, 4.0, 9.0, 1.0];
        assert!((pearson(&a, &b) - pearson(&b, &a)).abs() < 1e-12);
        assert!(pearson(&a, &b).abs() <= 1.0 + 1e-12);
    }
}
