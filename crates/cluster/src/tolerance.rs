//! Compactness tolerance vectors — the fascicle miner's "metadata".
//!
//! The Fascicles algorithm takes a *tolerance vector* `t`: one value per
//! attribute, bounding how much the attribute may vary within a fascicle
//! for it to count as compact (§2.5.1). The thesis's GUI generates this
//! metadata as a percentage of each attribute's width: "The compact
//! tolerance can be 5, 10, 20 or other percentage of the range of the
//! attribute" (Figure 4.5).

use crate::dataset::AttrSource;

/// A per-attribute compactness tolerance.
#[derive(Debug, Clone, PartialEq)]
pub struct ToleranceVector {
    tolerances: Vec<f64>,
}

impl ToleranceVector {
    /// Use explicit per-attribute tolerances.
    pub fn from_values(tolerances: Vec<f64>) -> ToleranceVector {
        ToleranceVector { tolerances }
    }

    /// The thesis's metadata generator: tolerance = `fraction` × attribute
    /// width, computed over the whole dataset. For example, "if the width
    /// of the value of tag AAAAAAAAAA is 200, five percent of the width is
    /// selected as the compact tolerance, which is equal to 10."
    pub fn from_width_fraction<D: AttrSource>(data: &D, fraction: f64) -> ToleranceVector {
        assert!(fraction >= 0.0, "tolerance fraction must be non-negative");
        let tolerances = (0..data.n_attrs())
            .map(|a| {
                let vals = data.attr_values(a);
                let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
                let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                if hi > lo {
                    (hi - lo) * fraction
                } else {
                    0.0
                }
            })
            .collect();
        ToleranceVector { tolerances }
    }

    /// One tolerance per attribute.
    pub fn len(&self) -> usize {
        self.tolerances.len()
    }

    /// Whether there are no attributes.
    pub fn is_empty(&self) -> bool {
        self.tolerances.is_empty()
    }

    /// The tolerance for attribute `attr`.
    pub fn get(&self, attr: usize) -> f64 {
        self.tolerances[attr]
    }

    /// All tolerances in attribute order.
    pub fn as_slice(&self) -> &[f64] {
        &self.tolerances
    }

    /// Whether a value spread (`hi - lo`) is compact for `attr`. The spread
    /// must be within the tolerance *inclusive*: the thesis's example calls
    /// tag G with range [1, 4] compact "if the specified tolerance for tag
    /// G is at least 3".
    pub fn is_compact(&self, attr: usize, lo: f64, hi: f64) -> bool {
        hi - lo <= self.tolerances[attr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;

    #[test]
    fn width_fraction_matches_thesis_example() {
        // Attribute 0 has width 200; 5% → tolerance 10.
        let d = Dataset::from_records(&[vec![0.0], vec![200.0], vec![50.0]]);
        let t = ToleranceVector::from_width_fraction(&d, 0.05);
        assert_eq!(t.get(0), 10.0);
    }

    #[test]
    fn constant_attribute_has_zero_tolerance() {
        let d = Dataset::from_records(&[vec![7.0], vec![7.0]]);
        let t = ToleranceVector::from_width_fraction(&d, 0.1);
        assert_eq!(t.get(0), 0.0);
        // A constant attribute is still compact (spread 0 ≤ tolerance 0).
        assert!(t.is_compact(0, 7.0, 7.0));
    }

    #[test]
    fn compactness_is_inclusive() {
        // Thesis §2.5.1: range [1, 4] with tolerance 3 is compact.
        let t = ToleranceVector::from_values(vec![3.0]);
        assert!(t.is_compact(0, 1.0, 4.0));
        assert!(!t.is_compact(0, 1.0, 4.5));
    }

    #[test]
    fn explicit_values() {
        // The Table 2.2 example's tolerances.
        let t = ToleranceVector::from_values(vec![120.0, 3.0, 47.0, 60.0, 20.0]);
        assert_eq!(t.len(), 5);
        assert!(t.is_compact(0, 1800.0, 1910.0));
        assert!(!t.is_compact(1, 0.0, 25.0));
    }
}
