//! Clustering evaluation against known labels.
//!
//! The generator plants ground truth (tissue type, neoplastic state,
//! fascicle membership); these metrics score how well each algorithm
//! recovers it. Used by the baseline-comparison bench (`repro --exp
//! baselines`).

use std::collections::HashMap;

/// Cluster purity: each cluster votes for its majority label; purity is the
/// fraction of records covered by their cluster's majority. 1.0 means every
/// cluster is label-homogeneous (the thesis's "pure fascicle" generalized).
pub fn purity(assignments: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignments.len(), labels.len());
    if assignments.is_empty() {
        return 1.0;
    }
    let mut per_cluster: HashMap<usize, HashMap<usize, usize>> = HashMap::new();
    for (&c, &l) in assignments.iter().zip(labels) {
        *per_cluster.entry(c).or_default().entry(l).or_insert(0) += 1;
    }
    let majority_sum: usize = per_cluster
        .values()
        .map(|counts| counts.values().copied().max().unwrap_or(0))
        .sum();
    majority_sum as f64 / assignments.len() as f64
}

/// Rand index: fraction of record pairs on which the clustering and the
/// labeling agree (both together or both apart). 1.0 is perfect agreement.
pub fn rand_index(assignments: &[usize], labels: &[usize]) -> f64 {
    assert_eq!(assignments.len(), labels.len());
    let n = assignments.len();
    if n < 2 {
        return 1.0;
    }
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            let same_cluster = assignments[i] == assignments[j];
            let same_label = labels[i] == labels[j];
            if same_cluster == same_label {
                agree += 1;
            }
            total += 1;
        }
    }
    agree as f64 / total as f64
}

/// Number of distinct clusters used.
pub fn n_clusters(assignments: &[usize]) -> usize {
    let mut seen: Vec<usize> = assignments.to_vec();
    seen.sort_unstable();
    seen.dedup();
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clustering_scores_one() {
        let labels = [0, 0, 1, 1, 2];
        assert_eq!(purity(&labels, &labels), 1.0);
        assert_eq!(rand_index(&labels, &labels), 1.0);
    }

    #[test]
    fn label_permutation_does_not_matter() {
        let assignments = [5, 5, 9, 9];
        let labels = [1, 1, 0, 0];
        assert_eq!(purity(&assignments, &labels), 1.0);
        assert_eq!(rand_index(&assignments, &labels), 1.0);
    }

    #[test]
    fn mixed_cluster_lowers_purity() {
        let assignments = [0, 0, 0, 0];
        let labels = [0, 0, 1, 1];
        assert_eq!(purity(&assignments, &labels), 0.5);
        // Rand: pairs same-cluster: all 6; same-label: (0,1) and (2,3) → 2
        // agreements out of 6.
        assert!((rand_index(&assignments, &labels) - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_clusters_have_perfect_purity_but_poor_rand() {
        let assignments = [0, 1, 2, 3];
        let labels = [0, 0, 0, 0];
        assert_eq!(purity(&assignments, &labels), 1.0);
        assert_eq!(rand_index(&assignments, &labels), 0.0);
        assert_eq!(n_clusters(&assignments), 4);
    }

    #[test]
    fn empty_and_trivial_inputs() {
        assert_eq!(purity(&[], &[]), 1.0);
        assert_eq!(rand_index(&[0], &[7]), 1.0);
    }
}
