//! # gea-cluster — clustering algorithms for gene expression analysis
//!
//! The GEA toolkit's built-in miner is the **Fascicles** algorithm
//! (Jagadish, Madar, Ng — VLDB 1999), chosen because it scales to tens of
//! thousands of dimensions and directly yields compact-tag signatures
//! (thesis §2.5). This crate implements it along with the baseline
//! algorithms the thesis surveys — k-means, hierarchical average-linkage
//! with correlation distance (Eisen et al.), and a self-organizing map
//! (Golub et al.) — plus evaluation metrics for comparing them on planted
//! ground truth.
//!
//! * [`dataset`] — the records × attributes abstraction;
//! * [`tolerance`] — compactness tolerance vectors (the miner's metadata);
//! * [`fascicle`] — greedy batched miner and exact small-input miner;
//! * [`distance`] — Euclidean and Pearson-correlation distances;
//! * [`mod@kmeans`] / [`hierarchical`] / [`mod@som`] — baselines;
//! * [`eval`] — purity and Rand index against known labels;
//! * [`compression`] — the VLDB'99 semantic-compression use of fascicles.

#![warn(missing_docs)]

pub mod compression;
pub mod dataset;
pub mod distance;
pub mod eval;
pub mod fascicle;
pub mod hierarchical;
pub mod kmeans;
pub mod som;
pub mod tolerance;

pub use compression::{compress, CompressionSummary};
pub use dataset::{AttrSource, Dataset};
pub use fascicle::{mine_exact, mine_greedy, Fascicle, FascicleParams};
pub use hierarchical::{agglomerate, Dendrogram, Linkage, Metric};
pub use kmeans::{kmeans, KMeansParams, KMeansResult};
pub use som::{som, SomParams, SomResult};
pub use tolerance::ToleranceVector;
