//! Property-based tests for the clustering algorithms.

use proptest::prelude::*;

use gea_cluster::compression::compress;
use gea_cluster::dataset::{AttrSource, Dataset};
use gea_cluster::eval::{n_clusters, purity, rand_index};
use gea_cluster::{
    agglomerate, kmeans, mine_greedy, som, FascicleParams, KMeansParams, Linkage, Metric,
    SomParams, ToleranceVector,
};

fn dataset_strategy() -> impl Strategy<Value = Dataset> {
    (2usize..10, 1usize..6).prop_flat_map(|(n_records, n_attrs)| {
        prop::collection::vec(prop::collection::vec(0.0f64..100.0, n_attrs), n_records)
            .prop_map(|rows| Dataset::from_records(&rows))
    })
}

proptest! {
    #[test]
    fn kmeans_assignments_are_valid(d in dataset_strategy(), k in 1usize..4, seed in 0u64..100) {
        let k = k.min(d.n_records());
        let result = kmeans(&d, &KMeansParams { k, max_iters: 50, seed });
        prop_assert_eq!(result.assignments.len(), d.n_records());
        prop_assert!(result.assignments.iter().all(|&a| a < k));
        prop_assert!(result.inertia >= 0.0);
        prop_assert_eq!(result.centroids.len(), k);
        // Deterministic under the seed.
        let again = kmeans(&d, &KMeansParams { k, max_iters: 50, seed });
        prop_assert_eq!(again.assignments, result.assignments);
    }

    #[test]
    fn dendrogram_structure_is_sound(d in dataset_strategy()) {
        let n = d.n_records();
        let dend = agglomerate(&d, Metric::Euclidean, Linkage::Average);
        prop_assert_eq!(dend.n_leaves, n);
        prop_assert_eq!(dend.merges.len(), n - 1);
        if let Some(last) = dend.merges.last() {
            prop_assert_eq!(last.size, n);
        }
        // Every cut yields exactly k clusters covering all leaves.
        for k in 1..=n {
            let labels = dend.cut(k);
            prop_assert_eq!(labels.len(), n);
            prop_assert_eq!(n_clusters(&labels), k);
        }
    }

    #[test]
    fn hierarchical_heights_non_decreasing_for_complete_linkage(d in dataset_strategy()) {
        let dend = agglomerate(&d, Metric::Euclidean, Linkage::Complete);
        for w in dend.merges.windows(2) {
            prop_assert!(w[1].height >= w[0].height - 1e-9);
        }
    }

    #[test]
    fn som_assigns_every_record(d in dataset_strategy(), seed in 0u64..50) {
        let result = som(&d, &SomParams { rows: 1, cols: 2, epochs: 10, learning_rate: 0.5, seed });
        prop_assert_eq!(result.assignments.len(), d.n_records());
        prop_assert!(result.assignments.iter().all(|&a| a < 2));
        let clusters = result.clusters();
        prop_assert!(n_clusters(&clusters) <= 2);
    }

    #[test]
    fn tolerance_scales_linearly_with_fraction(d in dataset_strategy()) {
        let t1 = ToleranceVector::from_width_fraction(&d, 0.1);
        let t2 = ToleranceVector::from_width_fraction(&d, 0.2);
        for a in 0..d.n_attrs() {
            prop_assert!((t2.get(a) - 2.0 * t1.get(a)).abs() < 1e-9);
            prop_assert!(t1.get(a) >= 0.0);
        }
    }

    #[test]
    fn greedy_fascicles_compress_within_tolerance(
        d in dataset_strategy(),
        frac in 0.05f64..0.6,
    ) {
        let tol = ToleranceVector::from_width_fraction(&d, frac);
        let params = FascicleParams {
            min_compact_attrs: 1,
            min_records: 2,
            batch_size: 4,
        };
        let fascicles = mine_greedy(&d, &tol, &params);
        for f in &fascicles {
            prop_assert!(f.verify(&d, &tol));
        }
        let summary = compress(&d, &fascicles, &tol);
        prop_assert!(summary.cells_saved <= summary.cells_total);
        // Midpoint representatives err at most half the tolerance.
        prop_assert!(summary.max_relative_error <= 0.5 + 1e-9);
    }

    #[test]
    fn purity_and_rand_bounds(
        assignments in prop::collection::vec(0usize..4, 1..20),
        labels in prop::collection::vec(0usize..3, 1..20),
    ) {
        let n = assignments.len().min(labels.len());
        let a = &assignments[..n];
        let l = &labels[..n];
        let p = purity(a, l);
        prop_assert!((0.0..=1.0).contains(&p));
        let r = rand_index(a, l);
        prop_assert!((0.0..=1.0).contains(&r));
        // Purity is at least the largest label's frequency.
        let mut counts = [0usize; 3];
        for &x in l {
            counts[x] += 1;
        }
        let max_frac = *counts.iter().max().unwrap() as f64 / n as f64;
        prop_assert!(p >= max_frac - 1e-12);
    }
}
