//! Property-based tests for the relational algebra, CSV round-tripping and
//! physical rotation.

use proptest::prelude::*;

use gea_relstore::algebra::{
    aggregate, difference, distinct, equi_join, project, select, sort, union, AggExpr, AggFunc,
    SortKey,
};
use gea_relstore::csv::{export_csv, import_csv};
use gea_relstore::predicate::{CmpOp, Predicate};
use gea_relstore::rotate::rotate;
use gea_relstore::schema::Schema;
use gea_relstore::table::Table;
use gea_relstore::value::{DataType, Value};

fn test_schema() -> Schema {
    Schema::from_pairs(&[
        ("name", DataType::Text),
        ("group", DataType::Int),
        ("x", DataType::Float),
    ])
    .unwrap()
}

fn value_row() -> impl Strategy<Value = (String, i64, Option<f64>)> {
    (
        "[a-zA-Z,\"\\- ]{0,12}",
        0i64..5,
        prop::option::of(-100.0f64..100.0),
    )
}

fn arbitrary_table() -> impl Strategy<Value = Table> {
    prop::collection::vec(value_row(), 0..25).prop_map(|rows| {
        let mut t = Table::new(test_schema());
        for (name, group, x) in rows {
            t.push_row(vec![
                Value::Text(name),
                Value::Int(group),
                x.map(Value::Float).unwrap_or(Value::Null),
            ])
            .unwrap();
        }
        t
    })
}

proptest! {
    #[test]
    fn select_conjunction_composes(t in arbitrary_table(), lo in -50.0f64..0.0, hi in 0.0f64..50.0) {
        let p1 = Predicate::cmp("x", CmpOp::Ge, lo);
        let p2 = Predicate::cmp("x", CmpOp::Le, hi);
        let combined = select(&t, &p1.clone().and(p2.clone())).unwrap();
        let chained = select(&select(&t, &p1).unwrap(), &p2).unwrap();
        prop_assert_eq!(combined, chained);
    }

    #[test]
    fn select_never_invents_rows(t in arbitrary_table()) {
        let p = Predicate::cmp("group", CmpOp::Eq, 2);
        let s = select(&t, &p).unwrap();
        prop_assert!(s.n_rows() <= t.n_rows());
        // Every selected row exists in the input.
        let rows: Vec<Vec<Value>> = t.rows().collect();
        for r in s.rows() {
            prop_assert!(rows.contains(&r));
        }
    }

    #[test]
    fn projection_preserves_row_count(t in arbitrary_table()) {
        let p = project(&t, &["x", "name"]).unwrap();
        prop_assert_eq!(p.n_rows(), t.n_rows());
        prop_assert_eq!(p.n_cols(), 2);
        prop_assert_eq!(p.schema().column(0).name.as_str(), "x");
    }

    #[test]
    fn union_and_difference_counts(a in arbitrary_table(), b in arbitrary_table()) {
        let u = union(&a, &b).unwrap();
        prop_assert_eq!(u.n_rows(), a.n_rows() + b.n_rows());
        let d = difference(&a, &b).unwrap();
        prop_assert!(d.n_rows() <= a.n_rows());
        // difference(a, a) is empty; difference(a, empty) = a.
        prop_assert_eq!(difference(&a, &a).unwrap().n_rows(), 0);
        let empty = Table::new(test_schema());
        prop_assert_eq!(difference(&a, &empty).unwrap(), a);
    }

    #[test]
    fn distinct_is_idempotent(t in arbitrary_table()) {
        let once = distinct(&t);
        let twice = distinct(&once);
        prop_assert_eq!(&once, &twice);
        prop_assert!(once.n_rows() <= t.n_rows());
    }

    #[test]
    fn sort_is_a_permutation_and_ordered(t in arbitrary_table()) {
        let s = sort(&t, &[SortKey::asc("x"), SortKey::desc("group")]).unwrap();
        prop_assert_eq!(s.n_rows(), t.n_rows());
        // Ordered by the primary key under sort_cmp.
        for w in (0..s.n_rows()).collect::<Vec<_>>().windows(2) {
            let a = s.value(w[0], 2);
            let b = s.value(w[1], 2);
            prop_assert!(a.sort_cmp(b) != std::cmp::Ordering::Greater);
        }
        // Same multiset of rows.
        let mut orig: Vec<String> = t.rows().map(|r| format!("{r:?}")).collect();
        let mut sorted_rows: Vec<String> = s.rows().map(|r| format!("{r:?}")).collect();
        orig.sort();
        sorted_rows.sort();
        prop_assert_eq!(orig, sorted_rows);
    }

    #[test]
    fn group_by_partitions_rows(t in arbitrary_table()) {
        let g = aggregate(
            &t,
            &["group"],
            &[AggExpr::new(AggFunc::Count, "name", "n")],
        )
        .unwrap();
        let total: i64 = (0..g.n_rows())
            .map(|r| g.value_by_name(r, "n").unwrap().as_i64().unwrap())
            .sum();
        prop_assert_eq!(total, t.n_rows() as i64);
        // No duplicate groups.
        let mut keys: Vec<i64> = (0..g.n_rows())
            .map(|r| g.value_by_name(r, "group").unwrap().as_i64().unwrap())
            .collect();
        let before = keys.len();
        keys.sort_unstable();
        keys.dedup();
        prop_assert_eq!(keys.len(), before);
    }

    #[test]
    fn join_with_distinct_right_keys_bounds_output(t in arbitrary_table()) {
        // Right side: one row per group id.
        let schema = Schema::from_pairs(&[("gid", DataType::Int), ("label", DataType::Text)]).unwrap();
        let mut right = Table::new(schema);
        for gid in 0..5i64 {
            right
                .push_row(vec![Value::Int(gid), Value::Text(format!("g{gid}"))])
                .unwrap();
        }
        let j = equi_join(&t, &right, "group", "gid", "r_").unwrap();
        // Every left row matches exactly one right row.
        prop_assert_eq!(j.n_rows(), t.n_rows());
        prop_assert!(j.schema().index_of("label").is_ok());
    }

    #[test]
    fn csv_roundtrip_arbitrary_tables(t in arbitrary_table()) {
        let mut buf = Vec::new();
        export_csv(&t, &mut buf).unwrap();
        let back = import_csv(test_schema(), &mut buf.as_slice()).unwrap();
        prop_assert_eq!(back, t);
    }

    #[test]
    fn rotation_roundtrips_numeric_tables(
        names in prop::collection::btree_set("[a-z]{3,8}", 1..6),
        width in 1usize..5,
    ) {
        // Build (key TEXT, v0..v{width} FLOAT) with distinct keys.
        let mut cols = vec![("k".to_string(), DataType::Text)];
        for i in 0..width {
            cols.push((format!("v{i}"), DataType::Float));
        }
        let pairs: Vec<(&str, DataType)> = cols.iter().map(|(n, t)| (n.as_str(), *t)).collect();
        let schema = Schema::from_pairs(&pairs).unwrap();
        let mut t = Table::new(schema);
        for (i, name) in names.iter().enumerate() {
            let mut row: Vec<Value> = vec![Value::Text(name.clone())];
            for j in 0..width {
                row.push(Value::Float((i * width + j) as f64));
            }
            t.push_row(row).unwrap();
        }
        let rotated = rotate(&t, "k", "col").unwrap();
        prop_assert_eq!(rotated.n_rows(), width);
        prop_assert_eq!(rotated.n_cols(), names.len() + 1);
        let back = rotate(&rotated, "col", "k").unwrap();
        prop_assert_eq!(back.n_rows(), t.n_rows());
        for r in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                let orig = t.value(r, c);
                let restored = back.value(r, c);
                match (orig.as_f64(), restored.as_f64()) {
                    (Some(a), Some(b)) => prop_assert_eq!(a, b),
                    _ => prop_assert_eq!(orig.as_str(), restored.as_str()),
                }
            }
        }
    }
}
