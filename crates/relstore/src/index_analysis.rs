//! Index-budget analysis for populate() — the math behind thesis Table 3.1.
//!
//! With `n` tags total, `p` tags mentioned in a SUMY table, and `m` indexes
//! built, the thesis models the number of *index hits* `w` (indexed tags
//! that appear among the SUMY's `p` tags) binomially, treating each of the
//! `p` tags as an independent draw that is indexed with probability `m/n`:
//!
//! ```text
//! Prob(exactly w hits) = C(p, w) · (m/n)^w · (1 − m/n)^(p−w)
//! ```
//!
//! Table 3.1 then reports, for each `w`, the smallest `m` such that
//! `Prob(at least w hits) ≥ 0.999`.
//!
//! Because tags are in fact drawn *without* replacement, the exact
//! distribution is hypergeometric; [`min_indexes_hypergeometric`] is
//! provided alongside the thesis's binomial model. The exact model has
//! lower variance, so it requires *fewer* indexes (13 vs 17 at `w = 1`
//! under the thesis's parameters) — Table 3.1's binomial figures are
//! conservative.

/// A log-factorial table supporting stable binomial/hypergeometric tails.
#[derive(Debug, Clone)]
pub struct LnFactorial {
    cumulative: Vec<f64>,
}

impl LnFactorial {
    /// Precompute `ln(k!)` for `k = 0..=max`.
    pub fn up_to(max: usize) -> LnFactorial {
        let mut cumulative = Vec::with_capacity(max + 1);
        cumulative.push(0.0);
        let mut acc = 0.0;
        for k in 1..=max {
            acc += (k as f64).ln();
            cumulative.push(acc);
        }
        LnFactorial { cumulative }
    }

    /// `ln(k!)`.
    pub fn ln_factorial(&self, k: usize) -> f64 {
        self.cumulative[k]
    }

    /// `ln C(n, k)`; `-inf` when `k > n`.
    pub fn ln_choose(&self, n: usize, k: usize) -> f64 {
        if k > n {
            return f64::NEG_INFINITY;
        }
        self.ln_factorial(n) - self.ln_factorial(k) - self.ln_factorial(n - k)
    }
}

/// `Prob(exactly w of the p SUMY tags are indexed)` under the thesis's
/// binomial model with hit probability `m/n`.
pub fn prob_exactly_w_binomial(table: &LnFactorial, n: usize, p: usize, m: usize, w: usize) -> f64 {
    if w > p || m > n || n == 0 {
        return 0.0;
    }
    let q = m as f64 / n as f64;
    if q == 0.0 {
        return if w == 0 { 1.0 } else { 0.0 };
    }
    if q == 1.0 {
        return if w == p { 1.0 } else { 0.0 };
    }
    let ln_p = table.ln_choose(p, w) + w as f64 * q.ln() + (p - w) as f64 * (1.0 - q).ln();
    ln_p.exp()
}

/// `Prob(at least w hits)` under the binomial model.
pub fn prob_at_least_w_binomial(
    table: &LnFactorial,
    n: usize,
    p: usize,
    m: usize,
    w: usize,
) -> f64 {
    let below: f64 = (0..w)
        .map(|i| prob_exactly_w_binomial(table, n, p, m, i))
        .sum();
    (1.0 - below).clamp(0.0, 1.0)
}

/// `Prob(exactly w hits)` under the exact hypergeometric model: `p` tags
/// drawn without replacement from `n`, of which `m` are indexed.
pub fn prob_exactly_w_hypergeometric(
    table: &LnFactorial,
    n: usize,
    p: usize,
    m: usize,
    w: usize,
) -> f64 {
    if w > m || w > p || p > n || m > n || p - w > n - m {
        return 0.0;
    }
    let ln_p = table.ln_choose(m, w) + table.ln_choose(n - m, p - w) - table.ln_choose(n, p);
    ln_p.exp()
}

/// `Prob(at least w hits)` under the hypergeometric model.
pub fn prob_at_least_w_hypergeometric(
    table: &LnFactorial,
    n: usize,
    p: usize,
    m: usize,
    w: usize,
) -> f64 {
    let below: f64 = (0..w)
        .map(|i| prob_exactly_w_hypergeometric(table, n, p, m, i))
        .sum();
    (1.0 - below).clamp(0.0, 1.0)
}

fn min_indexes_with(
    prob: impl Fn(&LnFactorial, usize, usize, usize, usize) -> f64,
    n: usize,
    p: usize,
    w: usize,
    threshold: f64,
) -> Option<usize> {
    let table = LnFactorial::up_to(n.max(p));
    (w..=n).find(|&m| prob(&table, n, p, m, w) >= threshold)
}

/// Smallest `m` such that `Prob(at least w hits) ≥ threshold` under the
/// thesis's binomial model — one row of Table 3.1 via
/// `min_indexes_binomial(60000, 25000, w, 0.999)`.
pub fn min_indexes_binomial(n: usize, p: usize, w: usize, threshold: f64) -> Option<usize> {
    min_indexes_with(prob_at_least_w_binomial, n, p, w, threshold)
}

/// Smallest `m` under the exact hypergeometric model.
pub fn min_indexes_hypergeometric(n: usize, p: usize, w: usize, threshold: f64) -> Option<usize> {
    min_indexes_with(prob_at_least_w_hypergeometric, n, p, w, threshold)
}

/// One reproduced row of Table 3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table31Row {
    /// Required number of index hits `w`.
    pub w: usize,
    /// Smallest index budget `m` under the thesis's binomial model.
    pub m_binomial: usize,
    /// Smallest `m` under the exact hypergeometric model.
    pub m_hypergeometric: usize,
}

/// Regenerate Table 3.1 for `w = 1..=max_w` at the thesis's parameters
/// (`n` total tags, `p` SUMY tags, probability threshold).
pub fn table_3_1(n: usize, p: usize, max_w: usize, threshold: f64) -> Vec<Table31Row> {
    let table = LnFactorial::up_to(n.max(p));
    let mut rows = Vec::with_capacity(max_w);
    // Scan m upward once for each model; m is monotone in w.
    let mut m_bin = 1usize;
    let mut m_hyp = 1usize;
    for w in 1..=max_w {
        while prob_at_least_w_binomial(&table, n, p, m_bin, w) < threshold {
            m_bin += 1;
        }
        while prob_at_least_w_hypergeometric(&table, n, p, m_hyp, w) < threshold {
            m_hyp += 1;
        }
        rows.push(Table31Row {
            w,
            m_binomial: m_bin,
            m_hypergeometric: m_hyp,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_choose_small_cases() {
        let t = LnFactorial::up_to(10);
        assert!((t.ln_choose(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((t.ln_choose(10, 0).exp() - 1.0).abs() < 1e-12);
        assert_eq!(t.ln_choose(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn binomial_distribution_sums_to_one() {
        let t = LnFactorial::up_to(100);
        let total: f64 = (0..=20)
            .map(|w| prob_exactly_w_binomial(&t, 100, 20, 30, w))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn hypergeometric_distribution_sums_to_one() {
        let t = LnFactorial::up_to(100);
        let total: f64 = (0..=20)
            .map(|w| prob_exactly_w_hypergeometric(&t, 100, 20, 30, w))
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn at_least_is_monotone_in_m() {
        let t = LnFactorial::up_to(60_000);
        let mut prev = 0.0;
        for m in [5, 10, 20, 40, 80] {
            let p = prob_at_least_w_binomial(&t, 60_000, 25_000, m, 3);
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn reproduces_thesis_table_3_1_first_rows() {
        // Thesis Table 3.1 (n = 60,000, p = 25,000, threshold 0.999):
        // w = 1 → 17, w = 2 → 23, w = 3 → 27.
        assert_eq!(min_indexes_binomial(60_000, 25_000, 1, 0.999), Some(17));
        assert_eq!(min_indexes_binomial(60_000, 25_000, 2, 0.999), Some(23));
        assert_eq!(min_indexes_binomial(60_000, 25_000, 3, 0.999), Some(27));
    }

    #[test]
    fn reproduces_thesis_table_3_1_all_rows() {
        let expected_m = [17, 23, 27, 32, 36, 40, 44, 48, 51, 55];
        let rows = table_3_1(60_000, 25_000, 10, 0.999);
        for (row, &m) in rows.iter().zip(&expected_m) {
            assert_eq!(row.m_binomial, m, "w = {}", row.w);
            // The exact without-replacement model has lower variance, so it
            // never needs *more* indexes than the thesis's binomial model —
            // i.e. Table 3.1 is conservative.
            assert!(
                row.m_hypergeometric <= row.m_binomial,
                "hypergeometric needs more indexes at w = {}",
                row.w
            );
            assert!(row.m_hypergeometric >= row.w);
        }
        // Both columns are monotone in w.
        for pair in rows.windows(2) {
            assert!(pair[1].m_binomial >= pair[0].m_binomial);
            assert!(pair[1].m_hypergeometric >= pair[0].m_hypergeometric);
        }
    }

    #[test]
    fn degenerate_parameters() {
        let t = LnFactorial::up_to(10);
        assert_eq!(prob_exactly_w_binomial(&t, 10, 5, 0, 0), 1.0);
        assert_eq!(prob_exactly_w_binomial(&t, 10, 5, 0, 1), 0.0);
        assert_eq!(prob_exactly_w_binomial(&t, 10, 5, 10, 5), 1.0);
        assert_eq!(prob_at_least_w_binomial(&t, 10, 5, 10, 0), 1.0);
    }
}
