//! CSV import and export — the LOAD / EXPORT utilities.
//!
//! Thesis §4.6.2 leans on DB2's `LOAD` and `EXPORT` commands to move data
//! between files and tables (and laments that JDBC did not expose them).
//! This module provides the equivalent for [`Table`]: a typed CSV writer
//! and a reader that parses against a declared schema, with RFC-4180-style
//! quoting and the literal token `NULL` for SQL NULLs.

use std::io::{self, BufRead, BufReader, Read, Write};

use crate::schema::Schema;
use crate::table::{Table, TableError};
use crate::value::{DataType, Value};

/// Errors raised by CSV import.
#[derive(Debug)]
pub enum CsvError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A structural or parse failure, with line context.
    Malformed {
        /// 1-based line number.
        line: usize,
        /// Description.
        detail: String,
    },
    /// A parsed row failed table validation.
    Table(TableError),
}

impl From<io::Error> for CsvError {
    fn from(e: io::Error) -> CsvError {
        CsvError::Io(e)
    }
}

impl From<TableError> for CsvError {
    fn from(e: TableError) -> CsvError {
        CsvError::Table(e)
    }
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "i/o error: {e}"),
            CsvError::Malformed { line, detail } => {
                write!(f, "malformed CSV at line {line}: {detail}")
            }
            CsvError::Table(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CsvError {}

fn needs_quoting(s: &str) -> bool {
    s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') || s == "NULL"
}

fn write_field(out: &mut impl Write, value: &Value) -> io::Result<()> {
    match value {
        Value::Null => out.write_all(b"NULL"),
        Value::Text(s) if needs_quoting(s) => {
            out.write_all(b"\"")?;
            out.write_all(s.replace('"', "\"\"").as_bytes())?;
            out.write_all(b"\"")
        }
        other => out.write_all(other.to_string().as_bytes()),
    }
}

/// Export a table as CSV with a header row (the EXPORT utility).
pub fn export_csv(table: &Table, w: &mut impl Write) -> io::Result<()> {
    let mut out = io::BufWriter::new(w);
    for (i, col) in table.schema().columns().iter().enumerate() {
        if i > 0 {
            out.write_all(b",")?;
        }
        write_field(&mut out, &Value::Text(col.name.clone()))?;
    }
    out.write_all(b"\n")?;
    for r in 0..table.n_rows() {
        for c in 0..table.n_cols() {
            if c > 0 {
                out.write_all(b",")?;
            }
            write_field(&mut out, table.value(r, c))?;
        }
        out.write_all(b"\n")?;
    }
    out.flush()
}

/// Split one CSV record into fields, honoring double-quote escaping.
/// Returns `(fields, was_quoted)` pairs so `"NULL"` (quoted) can be
/// distinguished from `NULL` (the null token).
fn split_record(line: &str, lineno: usize) -> Result<Vec<(String, bool)>, CsvError> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                ',' => {
                    fields.push((std::mem::take(&mut field), quoted));
                    quoted = false;
                }
                '"' if field.is_empty() && !quoted => {
                    in_quotes = true;
                    quoted = true;
                }
                '"' => {
                    return Err(CsvError::Malformed {
                        line: lineno,
                        detail: "stray quote inside unquoted field".to_string(),
                    })
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(CsvError::Malformed {
            line: lineno,
            detail: "unterminated quoted field".to_string(),
        });
    }
    fields.push((field, quoted));
    Ok(fields)
}

fn parse_value(raw: &str, quoted: bool, dtype: DataType, lineno: usize) -> Result<Value, CsvError> {
    if raw == "NULL" && !quoted {
        return Ok(Value::Null);
    }
    let bad = |detail: String| CsvError::Malformed {
        line: lineno,
        detail,
    };
    match dtype {
        DataType::Text => Ok(Value::Text(raw.to_string())),
        DataType::Int => raw
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|e| bad(format!("bad INT {raw:?}: {e}"))),
        DataType::Float => raw
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|e| bad(format!("bad FLOAT {raw:?}: {e}"))),
        DataType::Bool => match raw {
            "true" | "TRUE" | "1" => Ok(Value::Bool(true)),
            "false" | "FALSE" | "0" => Ok(Value::Bool(false)),
            other => Err(bad(format!("bad BOOL {other:?}"))),
        },
    }
}

/// Import a CSV file against a declared schema (the LOAD utility). The
/// header row must name the schema's columns in order.
pub fn import_csv(schema: Schema, r: &mut impl Read) -> Result<Table, CsvError> {
    let reader = BufReader::new(r);
    let mut table = Table::new(schema);
    let mut lines = reader.lines().enumerate();

    // Header.
    let (_, header) = lines.next().ok_or(CsvError::Malformed {
        line: 1,
        detail: "missing header row".to_string(),
    })?;
    let header = header?;
    let header_fields = split_record(&header, 1)?;
    let expected: Vec<&str> = table
        .schema()
        .columns()
        .iter()
        .map(|c| c.name.as_str())
        .collect();
    let got: Vec<&str> = header_fields.iter().map(|(f, _)| f.as_str()).collect();
    if got != expected {
        return Err(CsvError::Malformed {
            line: 1,
            detail: format!("header {got:?} does not match schema {expected:?}"),
        });
    }

    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line?;
        if line.is_empty() {
            continue;
        }
        let fields = split_record(&line, lineno)?;
        if fields.len() != table.n_cols() {
            return Err(CsvError::Malformed {
                line: lineno,
                detail: format!("expected {} fields, got {}", table.n_cols(), fields.len()),
            });
        }
        let mut row = Vec::with_capacity(fields.len());
        for (c, (raw, quoted)) in fields.iter().enumerate() {
            let dtype = table.schema().column(c).dtype;
            row.push(parse_value(raw, *quoted, dtype, lineno)?);
        }
        table.push_row(row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("TagName", DataType::Text),
            ("TagNo", DataType::Int),
            ("GapValue", DataType::Float),
            ("Pure", DataType::Bool),
        ])
        .unwrap()
    }

    fn sample_table() -> Table {
        let mut t = Table::new(schema());
        t.push_row(vec![
            "AAACACCAAA".into(),
            557.into(),
            (-1.5).into(),
            true.into(),
        ])
        .unwrap();
        t.push_row(vec![
            "with,comma".into(),
            2.into(),
            Value::Null,
            false.into(),
        ])
        .unwrap();
        t.push_row(vec![
            "quote\"inside".into(),
            3.into(),
            0.25.into(),
            true.into(),
        ])
        .unwrap();
        t.push_row(vec!["NULL".into(), 4.into(), 1.0.into(), false.into()])
            .unwrap();
        t
    }

    #[test]
    fn roundtrip() {
        let t = sample_table();
        let mut buf = Vec::new();
        export_csv(&t, &mut buf).unwrap();
        let back = import_csv(schema(), &mut buf.as_slice()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn null_token_vs_quoted_null_text() {
        let t = sample_table();
        let mut buf = Vec::new();
        export_csv(&t, &mut buf).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // The NULL cell is bare; the "NULL" text value is quoted.
        assert!(text.contains(",NULL,"));
        assert!(text.contains("\"NULL\""));
        let back = import_csv(schema(), &mut buf.as_slice()).unwrap();
        assert!(back.value(1, 2).is_null());
        assert_eq!(back.value(3, 0).as_str(), Some("NULL"));
    }

    #[test]
    fn header_mismatch_rejected() {
        let bad = b"Wrong,Header,Row,Here\n";
        let err = import_csv(schema(), &mut bad.as_slice()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 1, .. }));
    }

    #[test]
    fn arity_and_type_errors_carry_line_numbers() {
        let bad = b"TagName,TagNo,GapValue,Pure\nA,1,2.0\n";
        let err = import_csv(schema(), &mut bad.as_slice()).unwrap_err();
        match err {
            CsvError::Malformed { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
        let bad = b"TagName,TagNo,GapValue,Pure\nA,notanint,2.0,true\n";
        let err = import_csv(schema(), &mut bad.as_slice()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { line: 2, .. }));
    }

    #[test]
    fn unterminated_quote_rejected() {
        let bad = b"TagName,TagNo,GapValue,Pure\n\"open,1,2.0,true\n";
        let err = import_csv(schema(), &mut bad.as_slice()).unwrap_err();
        assert!(matches!(err, CsvError::Malformed { .. }));
    }

    #[test]
    fn empty_lines_skipped() {
        let text = b"TagName,TagNo,GapValue,Pure\nA,1,2.0,true\n\nB,2,3.0,false\n";
        let t = import_csv(schema(), &mut text.as_slice()).unwrap();
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    fn bool_spellings() {
        let text = b"TagName,TagNo,GapValue,Pure\nA,1,2.0,TRUE\nB,2,3.0,0\n";
        let t = import_csv(schema(), &mut text.as_slice()).unwrap();
        assert_eq!(t.value(0, 3).as_bool(), Some(true));
        assert_eq!(t.value(1, 3).as_bool(), Some(false));
    }
}
