//! # gea-relstore — an embedded columnar relational substrate
//!
//! The GEA thesis runs on IBM DB2 7.0 through JDBC; this crate replaces
//! that stack with an in-process engine providing exactly what GEA's
//! extensional world needs (§3.2.4): relations, relational algebra extended
//! with aggregation and sorting, range indexes, and the physical-design
//! tricks the thesis describes — the rotated TAGS layout (§4.6.1) and
//! entropy-guided index selection for the high-dimensional populate()
//! operator (§3.3.2, Tables 3.1/3.2).
//!
//! * [`value`] / [`schema`] / [`table`] — typed columnar relations;
//! * [`predicate`] / [`algebra`] — selection, projection, join, union,
//!   difference, sorting and group-by aggregation;
//! * [`index`] — sorted range indexes and hit-list intersection;
//! * [`entropy`] — the highest-entropy attribute-ranking heuristic;
//! * [`index_analysis`] — the Table 3.1 index-budget math (binomial model
//!   as in the thesis, plus the exact hypergeometric refinement);
//! * [`rotate`] — Figure 4.30's physical rotation;
//! * [`catalog`] — the named-table session database with the redundancy
//!   check and the lineage feature's two deletion modes;
//! * [`csv`] — the LOAD/EXPORT file utilities of §4.6.2.

#![warn(missing_docs)]

pub mod algebra;
pub mod catalog;
pub mod csv;
pub mod entropy;
pub mod index;
pub mod index_analysis;
pub mod predicate;
pub mod rotate;
pub mod schema;
pub mod table;
pub mod value;

pub use algebra::{
    aggregate, difference, distinct, equi_join, project, rename, select, sort, union, AggExpr,
    AggFunc, SortKey,
};
pub use catalog::{CatalogError, Database};
pub use csv::{export_csv, import_csv, CsvError};
pub use index::SortedIndex;
pub use predicate::{CmpOp, Predicate};
pub use schema::{Column, Schema, SchemaError};
pub use table::{RowId, Table, TableError};
pub use value::{DataType, Value};
