//! Cell values and their types.
//!
//! The GEA database (thesis Appendix IV) needs only a small type system:
//! integers, doubles, strings — plus NULL, which the GAP structure uses for
//! overlapping ranges (§3.2.2). Values compare with SQL-style semantics:
//! NULL is incomparable to everything (including itself) under predicate
//! evaluation, but sorts first under ordering so `ORDER BY` is total.

use std::cmp::Ordering;
use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Text => "TEXT",
            DataType::Bool => "BOOL",
        })
    }
}

/// One cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL. A GAP level is NULL when the two ranges overlap (§3.2.2).
    Null,
    /// Integer value.
    Int(i64),
    /// Float value.
    Float(f64),
    /// String value.
    Text(String),
    /// Boolean value.
    Bool(bool),
}

impl Value {
    /// The value's type, or `None` for NULL (which belongs to every type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: Int and Float coerce to `f64`; everything else is
    /// `None`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (no float truncation).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is NULL or the types are
    /// incomparable; numeric types compare across Int/Float.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            _ => {
                let (a, b) = (self.as_f64()?, other.as_f64()?);
                a.partial_cmp(&b)
            }
        }
    }

    /// Total ordering for sorting: NULL first, then by type tag, then by
    /// value (NaN sorts last among floats).
    pub fn sort_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Text(_) => 3,
            }
        }
        match rank(self).cmp(&rank(other)) {
            Ordering::Equal => match (self, other) {
                (Value::Null, Value::Null) => Ordering::Equal,
                (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
                (Value::Text(a), Value::Text(b)) => a.cmp(b),
                _ => {
                    let a = self.as_f64().unwrap_or(f64::NAN);
                    let b = other.as_f64().unwrap_or(f64::NAN);
                    a.total_cmp(&b)
                }
            },
            unequal => unequal,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Value {
        match v {
            Some(inner) => inner.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_is_incomparable_under_sql_semantics() {
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
    }

    #[test]
    fn numeric_cross_type_comparison() {
        assert_eq!(
            Value::Int(2).sql_cmp(&Value::Float(2.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(3.0).sql_cmp(&Value::Int(3)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn incompatible_types_do_not_compare() {
        assert_eq!(Value::Text("a".into()).sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Float(1.0)), None);
    }

    #[test]
    fn sort_order_is_total_with_null_first() {
        let mut vals = [
            Value::Int(5),
            Value::Null,
            Value::Text("z".into()),
            Value::Float(1.5),
            Value::Bool(false),
        ];
        vals.sort_by(|a, b| a.sort_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Float(1.5));
        assert_eq!(vals[3], Value::Int(5));
        assert_eq!(vals[4], Value::Text("z".into()));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(2.5), Value::Float(2.5));
        assert_eq!(Value::from("hi"), Value::Text("hi".into()));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
        assert_eq!(Value::from(Some(4i64)), Value::Int(4));
    }

    #[test]
    fn display_matches_sql_conventions() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Float(1.25).to_string(), "1.25");
    }
}
