//! Entropy-based attribute ranking.
//!
//! "Our heuristic is to pick the tags with the highest entropy, that is,
//! highest variation. More specifically, we seek to build m indices for the
//! tags with the top-m highest entropy." (§3.3.2.) An attribute whose values
//! spread over many distinct levels discriminates rows well, so an index on
//! it prunes the most.

/// Shannon entropy (in bits) of a numeric attribute, estimated from an
/// equal-width histogram with `bins` buckets over the attribute's observed
/// range. Constant attributes have entropy 0.
pub fn entropy(values: &[f64], bins: usize) -> f64 {
    assert!(bins > 0, "need at least one bin");
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.len() < 2 {
        return 0.0;
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    if hi <= lo {
        return 0.0;
    }
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for v in &finite {
        let mut b = ((v - lo) / width) as usize;
        if b >= bins {
            b = bins - 1; // v == hi lands in the last bin
        }
        counts[b] += 1;
    }
    let n = finite.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Rank attributes by descending entropy. `rows` yields each attribute's
/// value vector; returns `(attribute index, entropy)` sorted highest first,
/// ties broken by attribute index for determinism.
pub fn rank_by_entropy<'a, I>(attributes: I, bins: usize) -> Vec<(usize, f64)>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    let mut ranked: Vec<(usize, f64)> = attributes
        .into_iter()
        .enumerate()
        .map(|(i, vals)| (i, entropy(vals, bins)))
        .collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    ranked
}

/// The top-`m` attribute indexes by entropy.
pub fn top_entropy_attributes<'a, I>(attributes: I, bins: usize, m: usize) -> Vec<usize>
where
    I: IntoIterator<Item = &'a [f64]>,
{
    rank_by_entropy(attributes, bins)
        .into_iter()
        .take(m)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_attribute_has_zero_entropy() {
        assert_eq!(entropy(&[4.0, 4.0, 4.0], 16), 0.0);
        assert_eq!(entropy(&[], 16), 0.0);
        assert_eq!(entropy(&[1.0], 16), 0.0);
    }

    #[test]
    fn uniform_spread_has_high_entropy() {
        let uniform: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let concentrated: Vec<f64> = (0..64).map(|i| if i == 0 { 100.0 } else { 0.0 }).collect();
        let hu = entropy(&uniform, 16);
        let hc = entropy(&concentrated, 16);
        assert!(hu > 3.9, "uniform entropy {hu}");
        assert!(hc < 0.2, "concentrated entropy {hc}");
    }

    #[test]
    fn entropy_is_bounded_by_log_bins() {
        let vals: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = entropy(&vals, 8);
        assert!(h <= 3.0 + 1e-9);
    }

    #[test]
    fn ranking_prefers_varied_attributes() {
        let flat = vec![5.0; 32];
        let spread: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let mid: Vec<f64> = (0..32).map(|i| (i % 4) as f64).collect();
        let attrs: Vec<&[f64]> = vec![&flat, &spread, &mid];
        let ranked = rank_by_entropy(attrs, 16);
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[1].0, 2);
        assert_eq!(ranked[2].0, 0);
        let top = top_entropy_attributes(
            vec![flat.as_slice(), spread.as_slice(), mid.as_slice()],
            16,
            2,
        );
        assert_eq!(top, vec![1, 2]);
    }

    #[test]
    fn nan_values_are_ignored() {
        let with_nan = [1.0, f64::NAN, 2.0, 3.0, 4.0];
        let without = [1.0, 2.0, 3.0, 4.0];
        assert!((entropy(&with_nan, 4) - entropy(&without, 4)).abs() < 1e-12);
    }
}
