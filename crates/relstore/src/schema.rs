//! Relation schemas.

use std::fmt;

use crate::value::DataType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name; unique within a schema.
    pub name: String,
    /// Declared type. NULLs are admitted in every column.
    pub dtype: DataType,
}

impl Column {
    /// Shorthand constructor.
    pub fn new(name: &str, dtype: DataType) -> Column {
        Column {
            name: name.to_string(),
            dtype,
        }
    }
}

/// Errors raised by schema construction and lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two columns share a name.
    DuplicateColumn(String),
    /// A referenced column does not exist.
    UnknownColumn(String),
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateColumn(name) => {
                write!(f, "duplicate column name {name:?}")
            }
            SchemaError::UnknownColumn(name) => {
                write!(f, "unknown column {name:?}")
            }
        }
    }
}

impl std::error::Error for SchemaError {}

/// An ordered list of uniquely-named columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Build a schema, rejecting duplicate names.
    pub fn new(columns: Vec<Column>) -> Result<Schema, SchemaError> {
        for (i, c) in columns.iter().enumerate() {
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(SchemaError::DuplicateColumn(c.name.clone()));
            }
        }
        Ok(Schema { columns })
    }

    /// Build from `(name, type)` pairs, rejecting duplicates.
    pub fn from_pairs(pairs: &[(&str, DataType)]) -> Result<Schema, SchemaError> {
        Schema::new(pairs.iter().map(|(n, t)| Column::new(n, *t)).collect())
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, SchemaError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| SchemaError::UnknownColumn(name.to_string()))
    }

    /// The column definition behind an index.
    pub fn column(&self, idx: usize) -> &Column {
        &self.columns[idx]
    }

    /// A new schema containing only the named columns, in the given order.
    pub fn project(&self, names: &[&str]) -> Result<Schema, SchemaError> {
        let mut cols = Vec::with_capacity(names.len());
        for name in names {
            let idx = self.index_of(name)?;
            cols.push(self.columns[idx].clone());
        }
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::from_pairs(&[
            ("TagName", DataType::Text),
            ("TagNo", DataType::Int),
            ("GapValue", DataType::Float),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::from_pairs(&[("a", DataType::Int), ("a", DataType::Text)]).unwrap_err();
        assert_eq!(err, SchemaError::DuplicateColumn("a".to_string()));
    }

    #[test]
    fn lookup_by_name() {
        let s = schema();
        assert_eq!(s.index_of("TagNo").unwrap(), 1);
        assert!(matches!(
            s.index_of("nope"),
            Err(SchemaError::UnknownColumn(_))
        ));
    }

    #[test]
    fn projection_reorders() {
        let s = schema();
        let p = s.project(&["GapValue", "TagName"]).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.column(0).name, "GapValue");
        assert_eq!(p.column(1).name, "TagName");
    }

    #[test]
    fn display_form() {
        assert_eq!(
            schema().to_string(),
            "(TagName TEXT, TagNo INT, GapValue FLOAT)"
        );
    }
}
