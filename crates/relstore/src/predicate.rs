//! Row predicates for relational selection.
//!
//! Predicates evaluate with SQL three-valued logic collapsed to two values:
//! a comparison against NULL is simply *false* (never true), which is the
//! behaviour the GEA relies on when selecting non-NULL gap levels (§4.3.1
//! step 7 removes overlapping-range tags by filtering out NULL gaps).

use std::cmp::Ordering;
use std::fmt;

use crate::schema::Schema;
use crate::table::{Table, TableError};
use crate::value::Value;

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// A boolean predicate over one row.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `column op constant`.
    Cmp {
        /// Column name.
        column: String,
        /// Operator.
        op: CmpOp,
        /// Right-hand constant.
        value: Value,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Lower bound, inclusive.
        lo: Value,
        /// Upper bound, inclusive.
        hi: Value,
    },
    /// `column IS NULL`.
    IsNull(String),
    /// `column IS NOT NULL`.
    IsNotNull(String),
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation. NOT of a NULL-involving comparison stays false, matching
    /// SQL's `NOT UNKNOWN = UNKNOWN → filtered out` behaviour.
    Not(Box<Predicate>),
}

impl Predicate {
    /// `column op value` shorthand.
    pub fn cmp(column: &str, op: CmpOp, value: impl Into<Value>) -> Predicate {
        Predicate::Cmp {
            column: column.to_string(),
            op,
            value: value.into(),
        }
    }

    /// `column = value` shorthand.
    pub fn eq(column: &str, value: impl Into<Value>) -> Predicate {
        Predicate::cmp(column, CmpOp::Eq, value)
    }

    /// `column BETWEEN lo AND hi` shorthand.
    pub fn between(column: &str, lo: impl Into<Value>, hi: impl Into<Value>) -> Predicate {
        Predicate::Between {
            column: column.to_string(),
            lo: lo.into(),
            hi: hi.into(),
        }
    }

    /// `self AND other`.
    pub fn and(self, other: Predicate) -> Predicate {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// `self OR other`.
    pub fn or(self, other: Predicate) -> Predicate {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// `NOT self`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Predicate {
        Predicate::Not(Box::new(self))
    }

    /// Validate that every referenced column exists.
    pub fn validate(&self, schema: &Schema) -> Result<(), TableError> {
        match self {
            Predicate::True => Ok(()),
            Predicate::Cmp { column, .. }
            | Predicate::Between { column, .. }
            | Predicate::IsNull(column)
            | Predicate::IsNotNull(column) => {
                schema.index_of(column)?;
                Ok(())
            }
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.validate(schema)?;
                b.validate(schema)
            }
            Predicate::Not(inner) => inner.validate(schema),
        }
    }

    /// Evaluate against row `row` of `table`. Columns are resolved by name
    /// on every call; hot paths should pre-validate and use
    /// [`Predicate::compile`].
    pub fn eval(&self, table: &Table, row: usize) -> Result<bool, TableError> {
        match self {
            Predicate::True => Ok(true),
            Predicate::Cmp { column, op, value } => {
                let cell = table.value_by_name(row, column)?;
                Ok(cell.sql_cmp(value).map(|o| op.test(o)).unwrap_or(false))
            }
            Predicate::Between { column, lo, hi } => {
                let cell = table.value_by_name(row, column)?;
                let ge_lo = cell
                    .sql_cmp(lo)
                    .map(|o| o != Ordering::Less)
                    .unwrap_or(false);
                let le_hi = cell
                    .sql_cmp(hi)
                    .map(|o| o != Ordering::Greater)
                    .unwrap_or(false);
                Ok(ge_lo && le_hi)
            }
            Predicate::IsNull(column) => Ok(table.value_by_name(row, column)?.is_null()),
            Predicate::IsNotNull(column) => Ok(!table.value_by_name(row, column)?.is_null()),
            Predicate::And(a, b) => Ok(a.eval(table, row)? && b.eval(table, row)?),
            Predicate::Or(a, b) => Ok(a.eval(table, row)? || b.eval(table, row)?),
            Predicate::Not(inner) => Ok(!inner.eval(table, row)?),
        }
    }

    /// Resolve column names to indexes once, returning a closure suitable
    /// for scanning many rows.
    pub fn compile<'t>(&self, table: &'t Table) -> Result<CompiledPredicate<'t>, TableError> {
        let node = self.compile_node(table.schema())?;
        Ok(CompiledPredicate { table, node })
    }

    fn compile_node(&self, schema: &Schema) -> Result<Node, TableError> {
        Ok(match self {
            Predicate::True => Node::True,
            Predicate::Cmp { column, op, value } => Node::Cmp {
                col: schema.index_of(column)?,
                op: *op,
                value: value.clone(),
            },
            Predicate::Between { column, lo, hi } => Node::Between {
                col: schema.index_of(column)?,
                lo: lo.clone(),
                hi: hi.clone(),
            },
            Predicate::IsNull(column) => Node::IsNull(schema.index_of(column)?),
            Predicate::IsNotNull(column) => Node::IsNotNull(schema.index_of(column)?),
            Predicate::And(a, b) => Node::And(
                Box::new(a.compile_node(schema)?),
                Box::new(b.compile_node(schema)?),
            ),
            Predicate::Or(a, b) => Node::Or(
                Box::new(a.compile_node(schema)?),
                Box::new(b.compile_node(schema)?),
            ),
            Predicate::Not(inner) => Node::Not(Box::new(inner.compile_node(schema)?)),
        })
    }
}

#[derive(Debug)]
enum Node {
    True,
    Cmp { col: usize, op: CmpOp, value: Value },
    Between { col: usize, lo: Value, hi: Value },
    IsNull(usize),
    IsNotNull(usize),
    And(Box<Node>, Box<Node>),
    Or(Box<Node>, Box<Node>),
    Not(Box<Node>),
}

/// A predicate with column references resolved against one table.
pub struct CompiledPredicate<'t> {
    table: &'t Table,
    node: Node,
}

impl CompiledPredicate<'_> {
    /// Evaluate against one row.
    pub fn matches(&self, row: usize) -> bool {
        fn eval(node: &Node, table: &Table, row: usize) -> bool {
            match node {
                Node::True => true,
                Node::Cmp { col, op, value } => table
                    .value(row, *col)
                    .sql_cmp(value)
                    .map(|o| op.test(o))
                    .unwrap_or(false),
                Node::Between { col, lo, hi } => {
                    let cell = table.value(row, *col);
                    cell.sql_cmp(lo)
                        .map(|o| o != Ordering::Less)
                        .unwrap_or(false)
                        && cell
                            .sql_cmp(hi)
                            .map(|o| o != Ordering::Greater)
                            .unwrap_or(false)
                }
                Node::IsNull(col) => table.value(row, *col).is_null(),
                Node::IsNotNull(col) => !table.value(row, *col).is_null(),
                Node::And(a, b) => eval(a, table, row) && eval(b, table, row),
                Node::Or(a, b) => eval(a, table, row) || eval(b, table, row),
                Node::Not(inner) => !eval(inner, table, row),
            }
        }
        eval(&self.node, self.table, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema =
            Schema::from_pairs(&[("tag", DataType::Text), ("gap", DataType::Float)]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec!["t1".into(), (-1.0).into()]).unwrap();
        t.push_row(vec!["t2".into(), Value::Null]).unwrap();
        t.push_row(vec!["t3".into(), 2.0.into()]).unwrap();
        t
    }

    #[test]
    fn comparisons_skip_null() {
        let t = table();
        let p = Predicate::cmp("gap", CmpOp::Lt, 0.0);
        let hits: Vec<usize> = (0..3).filter(|&r| p.eval(&t, r).unwrap()).collect();
        assert_eq!(hits, vec![0]);
        // NOT (gap < 0) also excludes the NULL row only via Not semantics:
        let np = p.not();
        let hits: Vec<usize> = (0..3).filter(|&r| np.eval(&t, r).unwrap()).collect();
        assert_eq!(hits, vec![1, 2]); // two-valued NOT flips the false
    }

    #[test]
    fn is_null_filters() {
        let t = table();
        let p = Predicate::IsNotNull("gap".to_string());
        let hits: Vec<usize> = (0..3).filter(|&r| p.eval(&t, r).unwrap()).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn between_is_inclusive() {
        let t = table();
        let p = Predicate::between("gap", -1.0, 2.0);
        let hits: Vec<usize> = (0..3).filter(|&r| p.eval(&t, r).unwrap()).collect();
        assert_eq!(hits, vec![0, 2]);
    }

    #[test]
    fn boolean_combinators() {
        let t = table();
        let p = Predicate::eq("tag", "t1").or(Predicate::eq("tag", "t3"));
        let hits: Vec<usize> = (0..3).filter(|&r| p.eval(&t, r).unwrap()).collect();
        assert_eq!(hits, vec![0, 2]);
        let p = Predicate::eq("tag", "t1").and(Predicate::cmp("gap", CmpOp::Gt, 0.0));
        let hits: Vec<usize> = (0..3).filter(|&r| p.eval(&t, r).unwrap()).collect();
        assert!(hits.is_empty());
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = table();
        let p = Predicate::eq("nope", 1);
        assert!(p.eval(&t, 0).is_err());
        assert!(p.validate(t.schema()).is_err());
    }

    #[test]
    fn compiled_matches_interpreted() {
        let t = table();
        let p = Predicate::between("gap", -5.0, 5.0).and(Predicate::eq("tag", "t3").not());
        let compiled = p.compile(&t).unwrap();
        for r in 0..3 {
            assert_eq!(compiled.matches(r), p.eval(&t, r).unwrap());
        }
    }
}
