//! Named-table catalog — the session's "database".
//!
//! GEA stores every intermediate result (ENUM/SUMY/GAP tables, metadata
//! relations) as a named table in the underlying DBMS. The catalog supports
//! the management operations of the thesis's GUI: create (with the
//! Figure 4.28 redundancy check on name collisions), view, replace, and the
//! two deletion modes of the lineage feature — drop contents only or drop
//! entirely (§4.4.2).

use std::collections::BTreeMap;
use std::fmt;

use crate::table::Table;

/// Catalog errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogError {
    /// Create would overwrite an existing table (thesis Figure 4.28: "A
    /// table already exists ... Do you want to replace the existing
    /// table?").
    AlreadyExists(String),
    /// The named table does not exist.
    NotFound(String),
}

impl fmt::Display for CatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CatalogError::AlreadyExists(name) => {
                write!(f, "table {name:?} already exists")
            }
            CatalogError::NotFound(name) => write!(f, "no such table {name:?}"),
        }
    }
}

impl std::error::Error for CatalogError {}

/// An in-memory database of named tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Database {
        Database::default()
    }

    /// Register a new table; fails if the name is taken (redundancy check).
    pub fn create(&mut self, name: &str, table: Table) -> Result<(), CatalogError> {
        if self.tables.contains_key(name) {
            return Err(CatalogError::AlreadyExists(name.to_string()));
        }
        self.tables.insert(name.to_string(), table);
        Ok(())
    }

    /// Register or overwrite — the "Yes, replace" path of Figure 4.28.
    pub fn create_or_replace(&mut self, name: &str, table: Table) {
        self.tables.insert(name.to_string(), table);
    }

    /// Look up a table.
    pub fn get(&self, name: &str) -> Result<&Table, CatalogError> {
        self.tables
            .get(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))
    }

    /// Whether a table exists.
    pub fn exists(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Drop a table entirely, returning it.
    pub fn drop_table(&mut self, name: &str) -> Result<Table, CatalogError> {
        self.tables
            .remove(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))
    }

    /// Drop a table's *contents* but keep its schema registered — the
    /// space-saving deletion mode of the lineage feature (§4.4.2), which
    /// lets the table be regenerated later from its recorded metadata.
    pub fn truncate(&mut self, name: &str) -> Result<(), CatalogError> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| CatalogError::NotFound(name.to_string()))?;
        *table = Table::new(table.schema().clone());
        Ok(())
    }

    /// All table names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the database has no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Remove everything — the thesis's "initialize database" operation
    /// (Appendix III.2.1).
    pub fn initialize(&mut self) {
        self.tables.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::DataType;

    fn table() -> Table {
        let schema = Schema::from_pairs(&[("x", DataType::Int)]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![1.into()]).unwrap();
        t
    }

    #[test]
    fn create_and_get() {
        let mut db = Database::new();
        db.create("brainfile", table()).unwrap();
        assert!(db.exists("brainfile"));
        assert_eq!(db.get("brainfile").unwrap().n_rows(), 1);
        assert!(matches!(db.get("nope"), Err(CatalogError::NotFound(_))));
    }

    #[test]
    fn redundancy_check_blocks_overwrite() {
        let mut db = Database::new();
        db.create("t", table()).unwrap();
        assert!(matches!(
            db.create("t", table()),
            Err(CatalogError::AlreadyExists(_))
        ));
        db.create_or_replace("t", table()); // explicit replace allowed
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn truncate_keeps_schema() {
        let mut db = Database::new();
        db.create("t", table()).unwrap();
        db.truncate("t").unwrap();
        let t = db.get("t").unwrap();
        assert_eq!(t.n_rows(), 0);
        assert_eq!(t.n_cols(), 1);
    }

    #[test]
    fn drop_and_initialize() {
        let mut db = Database::new();
        db.create("a", table()).unwrap();
        db.create("b", table()).unwrap();
        assert_eq!(db.names(), vec!["a", "b"]);
        db.drop_table("a").unwrap();
        assert_eq!(db.len(), 1);
        db.initialize();
        assert!(db.is_empty());
    }
}
