//! Relational algebra over [`Table`].
//!
//! The extensional world of GEA "is relational, \[so\] the relational algebra,
//! extended with standard aggregation operations such as sum, average, etc.
//! and sorting, is sufficient" (§3.2.4). This module provides exactly that:
//! selection, projection, rename, union, difference, natural/equi join,
//! sorting, and group-by aggregation.

use std::collections::HashMap;

use crate::predicate::Predicate;
use crate::schema::{Column, Schema};
use crate::table::{Table, TableError};
use crate::value::{DataType, Value};

/// σ — rows of `table` satisfying `predicate`, in original order.
pub fn select(table: &Table, predicate: &Predicate) -> Result<Table, TableError> {
    let compiled = predicate.compile(table)?;
    let keep: Vec<usize> = (0..table.n_rows())
        .filter(|&r| compiled.matches(r))
        .collect();
    Ok(table.gather(&keep))
}

/// π — the named columns, in the given order. Duplicate output rows are
/// *kept* (bag semantics), as in SQL.
pub fn project(table: &Table, columns: &[&str]) -> Result<Table, TableError> {
    let schema = table.schema().project(columns)?;
    let idxs: Vec<usize> = columns
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<_, _>>()?;
    let mut out = Table::new(schema);
    for r in 0..table.n_rows() {
        out.push_row(idxs.iter().map(|&i| table.value(r, i).clone()).collect())?;
    }
    Ok(out)
}

/// ρ — rename one column.
pub fn rename(table: &Table, from: &str, to: &str) -> Result<Table, TableError> {
    let idx = table.schema().index_of(from)?;
    let cols: Vec<Column> = table
        .schema()
        .columns()
        .iter()
        .enumerate()
        .map(|(i, c)| {
            if i == idx {
                Column::new(to, c.dtype)
            } else {
                c.clone()
            }
        })
        .collect();
    let schema = Schema::new(cols).map_err(TableError::Schema)?;
    let mut out = Table::new(schema);
    out.extend_rows(table.rows())?;
    Ok(out)
}

fn check_union_compatible(a: &Table, b: &Table) -> Result<(), TableError> {
    if a.schema() != b.schema() {
        return Err(TableError::Schema(
            crate::schema::SchemaError::UnknownColumn(format!(
                "union-incompatible schemas {} vs {}",
                a.schema(),
                b.schema()
            )),
        ));
    }
    Ok(())
}

/// ∪ — all rows of `a` then all rows of `b` (bag union). Schemas must match
/// exactly.
pub fn union(a: &Table, b: &Table) -> Result<Table, TableError> {
    check_union_compatible(a, b)?;
    let mut out = Table::new(a.schema().clone());
    out.extend_rows(a.rows())?;
    out.extend_rows(b.rows())?;
    Ok(out)
}

fn row_key(row: &[Value]) -> String {
    // A canonical textual key; Display is injective enough for our value
    // domain (NULL renders distinctly, and column count is fixed).
    let mut key = String::new();
    for v in row {
        key.push_str(&format!("{}|{:?}\u{1}", v, v.data_type()));
    }
    key
}

/// − — rows of `a` that do not appear in `b` (set difference on whole rows).
pub fn difference(a: &Table, b: &Table) -> Result<Table, TableError> {
    check_union_compatible(a, b)?;
    let exclude: std::collections::HashSet<String> = b.rows().map(|r| row_key(&r)).collect();
    let keep: Vec<usize> = (0..a.n_rows())
        .filter(|&r| !exclude.contains(&row_key(&a.row(r))))
        .collect();
    Ok(a.gather(&keep))
}

/// Remove duplicate rows, keeping first occurrences.
pub fn distinct(table: &Table) -> Table {
    let mut seen = std::collections::HashSet::new();
    let keep: Vec<usize> = (0..table.n_rows())
        .filter(|&r| seen.insert(row_key(&table.row(r))))
        .collect();
    table.gather(&keep)
}

/// ⋈ — hash equi-join of `a` and `b` on `a.on_a = b.on_b`. Output columns
/// are all of `a` followed by all of `b` except `on_b`; `b`'s remaining
/// columns are prefixed with `prefix` on name collision.
pub fn equi_join(
    a: &Table,
    b: &Table,
    on_a: &str,
    on_b: &str,
    prefix: &str,
) -> Result<Table, TableError> {
    let ia = a.schema().index_of(on_a)?;
    let ib = b.schema().index_of(on_b)?;

    let mut cols: Vec<Column> = a.schema().columns().to_vec();
    for (i, c) in b.schema().columns().iter().enumerate() {
        if i == ib {
            continue;
        }
        let name = if cols.iter().any(|existing| existing.name == c.name) {
            format!("{prefix}{}", c.name)
        } else {
            c.name.clone()
        };
        cols.push(Column::new(&name, c.dtype));
    }
    let schema = Schema::new(cols).map_err(TableError::Schema)?;
    let mut out = Table::new(schema);

    // Build hash table on the smaller input's join key.
    let mut index: HashMap<String, Vec<usize>> = HashMap::new();
    for r in 0..b.n_rows() {
        let key = b.value(r, ib);
        if key.is_null() {
            continue; // NULL never joins
        }
        index
            .entry(row_key(std::slice::from_ref(key)))
            .or_default()
            .push(r);
    }
    for ra in 0..a.n_rows() {
        let key = a.value(ra, ia);
        if key.is_null() {
            continue;
        }
        if let Some(matches) = index.get(&row_key(std::slice::from_ref(key))) {
            for &rb in matches {
                let mut row = a.row(ra);
                for (i, v) in b.row(rb).into_iter().enumerate() {
                    if i != ib {
                        row.push(v);
                    }
                }
                out.push_row(row)?;
            }
        }
    }
    Ok(out)
}

/// A sort key: column name plus direction.
#[derive(Debug, Clone)]
pub struct SortKey {
    /// Column to sort by.
    pub column: String,
    /// Ascending when true.
    pub ascending: bool,
}

impl SortKey {
    /// Ascending sort key.
    pub fn asc(column: &str) -> SortKey {
        SortKey {
            column: column.to_string(),
            ascending: true,
        }
    }

    /// Descending sort key.
    pub fn desc(column: &str) -> SortKey {
        SortKey {
            column: column.to_string(),
            ascending: false,
        }
    }
}

/// Stable multi-key sort.
pub fn sort(table: &Table, keys: &[SortKey]) -> Result<Table, TableError> {
    let idxs: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| Ok((table.schema().index_of(&k.column)?, k.ascending)))
        .collect::<Result<_, TableError>>()?;
    let mut order: Vec<usize> = (0..table.n_rows()).collect();
    order.sort_by(|&a, &b| {
        for &(col, asc) in &idxs {
            let ord = table.value(a, col).sort_cmp(table.value(b, col));
            let ord = if asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(table.gather(&order))
}

/// Aggregate functions (§3.2.4's "standard aggregation operations").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// Row count (counts all rows, including NULLs in the target column).
    Count,
    /// Sum of non-NULL numeric values.
    Sum,
    /// Mean of non-NULL numeric values.
    Avg,
    /// Minimum non-NULL numeric value.
    Min,
    /// Maximum non-NULL numeric value.
    Max,
    /// Population standard deviation of non-NULL numeric values — the
    /// aggregate the SUMY table's σ column uses (§3.1.2).
    StdDev,
}

/// One aggregate expression: `func(column) AS alias`.
#[derive(Debug, Clone)]
pub struct AggExpr {
    /// Function to apply.
    pub func: AggFunc,
    /// Input column (ignored for `Count`).
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl AggExpr {
    /// Shorthand constructor.
    pub fn new(func: AggFunc, column: &str, alias: &str) -> AggExpr {
        AggExpr {
            func,
            column: column.to_string(),
            alias: alias.to_string(),
        }
    }
}

fn apply_agg(func: AggFunc, values: &[&Value]) -> Value {
    if func == AggFunc::Count {
        return Value::Int(values.len() as i64);
    }
    let nums: Vec<f64> = values.iter().filter_map(|v| v.as_f64()).collect();
    if nums.is_empty() {
        return Value::Null;
    }
    match func {
        AggFunc::Count => unreachable!(),
        AggFunc::Sum => Value::Float(nums.iter().sum()),
        AggFunc::Avg => Value::Float(nums.iter().sum::<f64>() / nums.len() as f64),
        AggFunc::Min => Value::Float(nums.iter().cloned().fold(f64::INFINITY, f64::min)),
        AggFunc::Max => Value::Float(nums.iter().cloned().fold(f64::NEG_INFINITY, f64::max)),
        AggFunc::StdDev => {
            let mean = nums.iter().sum::<f64>() / nums.len() as f64;
            let var = nums.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / nums.len() as f64;
            Value::Float(var.sqrt())
        }
    }
}

/// γ — group-by aggregation. With empty `group_by` the whole table is one
/// group (returning exactly one row, even for an empty input). Groups appear
/// in order of first occurrence.
pub fn aggregate(table: &Table, group_by: &[&str], aggs: &[AggExpr]) -> Result<Table, TableError> {
    let group_idxs: Vec<usize> = group_by
        .iter()
        .map(|c| table.schema().index_of(c))
        .collect::<Result<_, _>>()?;
    let agg_idxs: Vec<usize> = aggs
        .iter()
        .map(|a| table.schema().index_of(&a.column))
        .collect::<Result<_, _>>()?;

    let mut cols: Vec<Column> = group_idxs
        .iter()
        .map(|&i| table.schema().column(i).clone())
        .collect();
    for a in aggs {
        let dtype = if a.func == AggFunc::Count {
            DataType::Int
        } else {
            DataType::Float
        };
        cols.push(Column::new(&a.alias, dtype));
    }
    let schema = Schema::new(cols).map_err(TableError::Schema)?;
    let mut out = Table::new(schema);

    // Partition rows into groups preserving first-occurrence order.
    let mut group_order: Vec<String> = Vec::new();
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    for r in 0..table.n_rows() {
        let key_vals: Vec<Value> = group_idxs
            .iter()
            .map(|&i| table.value(r, i).clone())
            .collect();
        let key = row_key(&key_vals);
        if !groups.contains_key(&key) {
            group_order.push(key.clone());
        }
        groups.entry(key).or_default().push(r);
    }
    if group_idxs.is_empty() && table.n_rows() == 0 {
        // Global aggregate of an empty table: one all-NULL/0 row.
        let row: Vec<Value> = aggs
            .iter()
            .map(|a| {
                if a.func == AggFunc::Count {
                    Value::Int(0)
                } else {
                    Value::Null
                }
            })
            .collect();
        out.push_row(row)?;
        return Ok(out);
    }

    for key in group_order {
        let rows = &groups[&key];
        let mut row: Vec<Value> = group_idxs
            .iter()
            .map(|&i| table.value(rows[0], i).clone())
            .collect();
        for (a, &col) in aggs.iter().zip(&agg_idxs) {
            let cells: Vec<&Value> = rows.iter().map(|&r| table.value(r, col)).collect();
            row.push(apply_agg(a.func, &cells));
        }
        out.push_row(row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    fn libraries() -> Table {
        // A miniature of the thesis's Libraries relation (Appendix IV).
        let schema = Schema::from_pairs(&[
            ("Lib_ID", DataType::Int),
            ("Lib_Name", DataType::Text),
            ("Type", DataType::Text),
            ("Tags", DataType::Int),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.extend_rows(vec![
            vec![1.into(), "SAGE_b1".into(), "brain".into(), 52371.into()],
            vec![2.into(), "SAGE_b2".into(), "brain".into(), 31063.into()],
            vec![3.into(), "SAGE_k1".into(), "kidney".into(), 24481.into()],
            vec![4.into(), "SAGE_b3".into(), "brain".into(), 12000.into()],
        ])
        .unwrap();
        t
    }

    #[test]
    fn select_by_tissue() {
        let t = libraries();
        let brain = select(&t, &Predicate::eq("Type", "brain")).unwrap();
        assert_eq!(brain.n_rows(), 3);
        assert!(brain
            .column_by_name("Type")
            .unwrap()
            .iter()
            .all(|v| v.as_str() == Some("brain")));
    }

    #[test]
    fn project_keeps_order_and_duplicates() {
        let t = libraries();
        let p = project(&t, &["Type"]).unwrap();
        assert_eq!(p.n_rows(), 4);
        assert_eq!(p.n_cols(), 1);
        let d = distinct(&p);
        assert_eq!(d.n_rows(), 2);
    }

    #[test]
    fn rename_column() {
        let t = libraries();
        let r = rename(&t, "Tags", "TotalTags").unwrap();
        assert!(r.schema().index_of("TotalTags").is_ok());
        assert!(r.schema().index_of("Tags").is_err());
        assert_eq!(
            r.value_by_name(0, "TotalTags").unwrap().as_i64(),
            Some(52371)
        );
    }

    #[test]
    fn union_and_difference() {
        let t = libraries();
        let brain = select(&t, &Predicate::eq("Type", "brain")).unwrap();
        let kidney = select(&t, &Predicate::eq("Type", "kidney")).unwrap();
        let u = union(&brain, &kidney).unwrap();
        assert_eq!(u.n_rows(), 4);
        let d = difference(&t, &brain).unwrap();
        assert_eq!(d.n_rows(), 1);
        assert_eq!(d.value_by_name(0, "Type").unwrap().as_str(), Some("kidney"));
    }

    #[test]
    fn union_requires_matching_schemas() {
        let t = libraries();
        let p = project(&t, &["Type"]).unwrap();
        assert!(union(&t, &p).is_err());
    }

    #[test]
    fn join_links_relations() {
        let t = libraries();
        let schema =
            Schema::from_pairs(&[("Lib", DataType::Int), ("Fascicle", DataType::Text)]).unwrap();
        let mut membership = Table::new(schema);
        membership
            .extend_rows(vec![
                vec![1.into(), "brain35k_4".into()],
                vec![2.into(), "brain35k_4".into()],
                vec![9.into(), "ghost".into()],
            ])
            .unwrap();
        let j = equi_join(&t, &membership, "Lib_ID", "Lib", "m_").unwrap();
        assert_eq!(j.n_rows(), 2);
        assert_eq!(
            j.value_by_name(0, "Fascicle").unwrap().as_str(),
            Some("brain35k_4")
        );
    }

    #[test]
    fn join_prefixes_colliding_names() {
        let t = libraries();
        let j = equi_join(&t, &t, "Lib_ID", "Lib_ID", "r_").unwrap();
        assert_eq!(j.n_rows(), 4);
        assert!(j.schema().index_of("r_Lib_Name").is_ok());
    }

    #[test]
    fn sort_multi_key() {
        let t = libraries();
        let s = sort(&t, &[SortKey::asc("Type"), SortKey::desc("Tags")]).unwrap();
        let names: Vec<&str> = (0..s.n_rows())
            .map(|r| s.value_by_name(r, "Lib_Name").unwrap().as_str().unwrap())
            .collect();
        assert_eq!(names, vec!["SAGE_b1", "SAGE_b2", "SAGE_b3", "SAGE_k1"]);
    }

    #[test]
    fn aggregate_group_by() {
        let t = libraries();
        let g = aggregate(
            &t,
            &["Type"],
            &[
                AggExpr::new(AggFunc::Count, "Lib_ID", "n"),
                AggExpr::new(AggFunc::Avg, "Tags", "avg_tags"),
                AggExpr::new(AggFunc::Min, "Tags", "min_tags"),
                AggExpr::new(AggFunc::Max, "Tags", "max_tags"),
            ],
        )
        .unwrap();
        assert_eq!(g.n_rows(), 2);
        // Groups in first-occurrence order: brain first.
        assert_eq!(g.value_by_name(0, "Type").unwrap().as_str(), Some("brain"));
        assert_eq!(g.value_by_name(0, "n").unwrap().as_i64(), Some(3));
        let avg = g.value_by_name(0, "avg_tags").unwrap().as_f64().unwrap();
        assert!((avg - (52371.0 + 31063.0 + 12000.0) / 3.0).abs() < 1e-9);
        assert_eq!(
            g.value_by_name(1, "min_tags").unwrap().as_f64(),
            Some(24481.0)
        );
    }

    #[test]
    fn aggregate_stddev_is_population() {
        let schema = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            t.push_row(vec![v.into()]).unwrap();
        }
        let g = aggregate(&t, &[], &[AggExpr::new(AggFunc::StdDev, "x", "sd")]).unwrap();
        assert_eq!(g.value_by_name(0, "sd").unwrap().as_f64(), Some(2.0));
    }

    #[test]
    fn aggregate_empty_global() {
        let schema = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        let t = Table::new(schema);
        let g = aggregate(
            &t,
            &[],
            &[
                AggExpr::new(AggFunc::Count, "x", "n"),
                AggExpr::new(AggFunc::Sum, "x", "s"),
            ],
        )
        .unwrap();
        assert_eq!(g.n_rows(), 1);
        assert_eq!(g.value_by_name(0, "n").unwrap().as_i64(), Some(0));
        assert!(g.value_by_name(0, "s").unwrap().is_null());
    }

    #[test]
    fn aggregate_ignores_nulls_in_numeric_funcs() {
        let schema = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![2.0.into()]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![4.0.into()]).unwrap();
        let g = aggregate(
            &t,
            &[],
            &[
                AggExpr::new(AggFunc::Avg, "x", "avg"),
                AggExpr::new(AggFunc::Count, "x", "n"),
            ],
        )
        .unwrap();
        assert_eq!(g.value_by_name(0, "avg").unwrap().as_f64(), Some(3.0));
        // Count counts rows, not non-NULLs (COUNT(*) semantics).
        assert_eq!(g.value_by_name(0, "n").unwrap().as_i64(), Some(3));
    }

    #[test]
    fn select_with_range_predicate() {
        let t = libraries();
        let p =
            Predicate::cmp("Tags", CmpOp::Ge, 24481).and(Predicate::cmp("Tags", CmpOp::Lt, 52371));
        let s = select(&t, &p).unwrap();
        assert_eq!(s.n_rows(), 2);
    }
}
