//! Physical rotation of wide relations (thesis §4.6.1, Figure 4.30).
//!
//! The conceptual TAGS relation has one column per tag — ~60,000 columns,
//! far beyond what a 2001 DBMS (or a sane schema) supports. The thesis
//! "rotates" the table: tags become physical rows and libraries become
//! columns. Standard operations must then be re-interpreted: a *sum over a
//! tag* in the conceptual view is a *row sum* in the physical view.
//!
//! [`rotate`] performs that transposition for any relation with a text key
//! column and numeric value columns; rotating twice returns the original
//! relation (with the key column renamed to the given label).

use crate::schema::{Column, Schema};
use crate::table::{Table, TableError};
use crate::value::{DataType, Value};

/// Transpose `table` around `key_column`.
///
/// Requirements: `key_column` is `TEXT` with distinct, non-NULL values, and
/// every other column is numeric. The output has a `TEXT` column named
/// `new_key_name` holding the former column names, and one `FLOAT` column
/// per former row, named by that row's key value.
pub fn rotate(table: &Table, key_column: &str, new_key_name: &str) -> Result<Table, TableError> {
    let key_idx = table.schema().index_of(key_column)?;
    if table.schema().column(key_idx).dtype != DataType::Text {
        return Err(TableError::TypeMismatch {
            column: key_column.to_string(),
            expected: DataType::Text,
            value: Value::Null,
        });
    }

    // Former rows become columns, named by their key.
    let mut out_cols = vec![Column::new(new_key_name, DataType::Text)];
    let mut keys = Vec::with_capacity(table.n_rows());
    for r in 0..table.n_rows() {
        let key = table
            .value(r, key_idx)
            .as_str()
            .ok_or_else(|| TableError::TypeMismatch {
                column: key_column.to_string(),
                expected: DataType::Text,
                value: table.value(r, key_idx).clone(),
            })?
            .to_string();
        out_cols.push(Column::new(&key, DataType::Float));
        keys.push(key);
    }
    let schema = Schema::new(out_cols).map_err(TableError::Schema)?;
    let mut out = Table::new(schema);

    // Former value columns become rows.
    for (c, col_def) in table.schema().columns().iter().enumerate() {
        if c == key_idx {
            continue;
        }
        let mut row: Vec<Value> = Vec::with_capacity(table.n_rows() + 1);
        row.push(Value::Text(col_def.name.clone()));
        for r in 0..table.n_rows() {
            let v = table.value(r, c);
            row.push(match v.as_f64() {
                Some(f) => Value::Float(f),
                None if v.is_null() => Value::Null,
                None => {
                    return Err(TableError::TypeMismatch {
                        column: col_def.name.clone(),
                        expected: DataType::Float,
                        value: v.clone(),
                    })
                }
            });
        }
        out.push_row(row)?;
    }
    Ok(out)
}

/// Sum of one physical row — a conceptual per-tag total in the rotated
/// layout (§4.6.1's example of an adjusted operation).
pub fn row_sum(table: &Table, row: usize, skip_column: &str) -> Result<f64, TableError> {
    let skip = table.schema().index_of(skip_column)?;
    let mut sum = 0.0;
    for c in 0..table.n_cols() {
        if c == skip {
            continue;
        }
        if let Some(v) = table.value(row, c).as_f64() {
            sum += v;
        }
    }
    Ok(sum)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The conceptual structure of Figure 4.30(a): libraries as rows.
    fn conceptual() -> Table {
        let schema = Schema::from_pairs(&[
            ("LibraryName", DataType::Text),
            ("AAAAAAAAAA", DataType::Float),
            ("AAAAAAAAAC", DataType::Float),
        ])
        .unwrap();
        let mut t = Table::new(schema);
        t.extend_rows(vec![
            vec!["Lib1".into(), 1843.0.into(), 3.0.into()],
            vec!["Lib2".into(), 1418.0.into(), 7.0.into()],
            vec!["Lib3".into(), 1251.0.into(), 18.0.into()],
        ])
        .unwrap();
        t
    }

    #[test]
    fn rotation_matches_figure_4_30() {
        let t = conceptual();
        let r = rotate(&t, "LibraryName", "Tag").unwrap();
        // Physical structure (b): tags as rows, libraries as columns.
        assert_eq!(r.n_rows(), 2);
        assert_eq!(r.n_cols(), 4);
        assert_eq!(
            r.value_by_name(0, "Tag").unwrap().as_str(),
            Some("AAAAAAAAAA")
        );
        assert_eq!(r.value_by_name(0, "Lib2").unwrap().as_f64(), Some(1418.0));
        assert_eq!(r.value_by_name(1, "Lib3").unwrap().as_f64(), Some(18.0));
    }

    #[test]
    fn double_rotation_is_identity() {
        let t = conceptual();
        let r = rotate(&t, "LibraryName", "Tag").unwrap();
        let rr = rotate(&r, "Tag", "LibraryName").unwrap();
        assert_eq!(rr.n_rows(), t.n_rows());
        assert_eq!(rr.n_cols(), t.n_cols());
        for r_i in 0..t.n_rows() {
            for c in 0..t.n_cols() {
                let orig = t.value(r_i, c);
                let back = rr.value(r_i, c);
                match (orig.as_f64(), back.as_f64()) {
                    (Some(a), Some(b)) => assert_eq!(a, b),
                    _ => assert_eq!(orig.as_str(), back.as_str()),
                }
            }
        }
    }

    #[test]
    fn conceptual_tag_sum_is_physical_row_sum() {
        let t = conceptual();
        let r = rotate(&t, "LibraryName", "Tag").unwrap();
        // Sum over tag AAAAAAAAAA across all libraries.
        let total = row_sum(&r, 0, "Tag").unwrap();
        assert_eq!(total, 1843.0 + 1418.0 + 1251.0);
    }

    #[test]
    fn rotation_rejects_non_numeric_values() {
        let schema = Schema::from_pairs(&[("k", DataType::Text), ("v", DataType::Text)]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec!["a".into(), "oops".into()]).unwrap();
        assert!(rotate(&t, "k", "col").is_err());
    }

    #[test]
    fn rotation_preserves_nulls() {
        let schema = Schema::from_pairs(&[("k", DataType::Text), ("v", DataType::Float)]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec!["a".into(), Value::Null]).unwrap();
        let r = rotate(&t, "k", "col").unwrap();
        assert!(r.value_by_name(0, "a").unwrap().is_null());
    }
}
