//! Sorted range indexes.
//!
//! The populate() operator evaluates a conjunction of up to tens of
//! thousands of range conditions (§3.3.2). A [`SortedIndex`] over one
//! attribute answers `lo ≤ value ≤ hi` with two binary searches, returning
//! the qualifying row ids; populate() intersects the hit lists of whichever
//! indexed attributes appear in the query and verifies the remaining
//! conditions by scan.

use crate::table::{RowId, Table, TableError};

/// A sorted `(value, row)` index over one numeric attribute.
#[derive(Debug, Clone, PartialEq)]
pub struct SortedIndex {
    /// Entries sorted by value (NaNs excluded at build time).
    entries: Vec<(f64, RowId)>,
}

impl SortedIndex {
    /// Build from a slice of values; `values[r]` indexes row `r`. Non-finite
    /// values are skipped (they can never satisfy a range condition).
    pub fn build(values: &[f64]) -> SortedIndex {
        let mut entries: Vec<(f64, RowId)> = values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite())
            .map(|(r, &v)| (v, r))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        SortedIndex { entries }
    }

    /// Build over a numeric column of a table. NULL and non-numeric cells
    /// are skipped.
    pub fn build_on_column(table: &Table, column: &str) -> Result<SortedIndex, TableError> {
        let col = table.column_by_name(column)?;
        let mut entries: Vec<(f64, RowId)> = col
            .iter()
            .enumerate()
            .filter_map(|(r, v)| v.as_f64().map(|f| (f, r)))
            .filter(|(v, _)| v.is_finite())
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        Ok(SortedIndex { entries })
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Row ids whose value lies in `lo..=hi`, in ascending row order.
    pub fn range(&self, lo: f64, hi: f64) -> Vec<RowId> {
        if lo > hi {
            return Vec::new();
        }
        let start = self.entries.partition_point(|&(v, _)| v < lo);
        let end = self.entries.partition_point(|&(v, _)| v <= hi);
        let mut rows: Vec<RowId> = self.entries[start..end].iter().map(|&(_, r)| r).collect();
        rows.sort_unstable();
        rows
    }

    /// Number of rows in `lo..=hi` without materializing them — the
    /// selectivity estimate.
    pub fn count_range(&self, lo: f64, hi: f64) -> usize {
        if lo > hi {
            return 0;
        }
        let start = self.entries.partition_point(|&(v, _)| v < lo);
        let end = self.entries.partition_point(|&(v, _)| v <= hi);
        end - start
    }
}

/// Intersect several ascending row-id lists, cheapest-first.
pub fn intersect_row_lists(mut lists: Vec<Vec<RowId>>) -> Vec<RowId> {
    if lists.is_empty() {
        return Vec::new();
    }
    lists.sort_by_key(|l| l.len());
    let mut acc = lists[0].clone();
    for list in &lists[1..] {
        let mut out = Vec::with_capacity(acc.len().min(list.len()));
        let (mut i, mut j) = (0, 0);
        while i < acc.len() && j < list.len() {
            match acc[i].cmp(&list[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(acc[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        acc = out;
        if acc.is_empty() {
            break;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use crate::value::{DataType, Value};

    #[test]
    fn range_queries() {
        let idx = SortedIndex::build(&[5.0, 1.0, 3.0, 3.0, 9.0]);
        assert_eq!(idx.range(3.0, 5.0), vec![0, 2, 3]);
        assert_eq!(idx.range(0.0, 0.5), Vec::<usize>::new());
        assert_eq!(idx.range(9.0, 9.0), vec![4]);
        assert_eq!(idx.count_range(1.0, 9.0), 5);
        assert_eq!(idx.range(5.0, 3.0), Vec::<usize>::new());
    }

    #[test]
    fn non_finite_values_are_skipped() {
        let idx = SortedIndex::build(&[1.0, f64::NAN, f64::INFINITY, 2.0]);
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.range(0.0, 10.0), vec![0, 3]);
    }

    #[test]
    fn column_index_skips_nulls() {
        let schema = Schema::from_pairs(&[("x", DataType::Float)]).unwrap();
        let mut t = Table::new(schema);
        t.push_row(vec![2.0.into()]).unwrap();
        t.push_row(vec![Value::Null]).unwrap();
        t.push_row(vec![7.0.into()]).unwrap();
        let idx = SortedIndex::build_on_column(&t, "x").unwrap();
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.range(0.0, 5.0), vec![0]);
    }

    #[test]
    fn intersection_of_hit_lists() {
        let lists = vec![vec![1, 3, 5, 7, 9], vec![3, 4, 5, 9], vec![0, 3, 9]];
        assert_eq!(intersect_row_lists(lists), vec![3, 9]);
        assert_eq!(
            intersect_row_lists(vec![vec![1, 2], vec![]]),
            Vec::<usize>::new()
        );
        assert_eq!(intersect_row_lists(vec![]), Vec::<usize>::new());
        assert_eq!(intersect_row_lists(vec![vec![4, 8]]), vec![4, 8]);
    }
}
