//! Columnar tables.
//!
//! Storage is column-major: each column is a `Vec<Value>`. This mirrors the
//! access pattern of GEA's analysis operators, which scan one attribute at a
//! time (aggregation over a tag, entropy over a column, range predicates),
//! and it is what makes the thesis's "rotated" TAGS layout (§4.6.1) pay off:
//! a tag's expression levels across all libraries are one contiguous column
//! scan away.

use std::fmt;

use crate::schema::{Schema, SchemaError};
use crate::value::{DataType, Value};

/// Zero-based row identifier within one table.
pub type RowId = usize;

/// Errors raised by table mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum TableError {
    /// Schema lookup failed.
    Schema(SchemaError),
    /// A row had the wrong number of values.
    RowArity {
        /// Values provided.
        got: usize,
        /// Columns in the schema.
        expected: usize,
    },
    /// A value's type disagreed with its column's declared type.
    TypeMismatch {
        /// Offending column name.
        column: String,
        /// Declared column type.
        expected: DataType,
        /// The value that was rejected.
        value: Value,
    },
}

impl From<SchemaError> for TableError {
    fn from(e: SchemaError) -> TableError {
        TableError::Schema(e)
    }
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Schema(e) => write!(f, "{e}"),
            TableError::RowArity { got, expected } => {
                write!(f, "row has {got} values; schema has {expected} columns")
            }
            TableError::TypeMismatch {
                column,
                expected,
                value,
            } => write!(
                f,
                "value {value} does not fit column {column:?} of type {expected}"
            ),
        }
    }
}

impl std::error::Error for TableError {}

/// A columnar relation instance.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    n_rows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Table {
        let columns = vec![Vec::new(); schema.len()];
        Table {
            schema,
            columns,
            n_rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.schema.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0
    }

    /// Append a row, validating arity and types (NULL fits any column).
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<RowId, TableError> {
        if row.len() != self.schema.len() {
            return Err(TableError::RowArity {
                got: row.len(),
                expected: self.schema.len(),
            });
        }
        for (i, v) in row.iter().enumerate() {
            if let Some(t) = v.data_type() {
                let declared = self.schema.column(i).dtype;
                let compatible =
                    t == declared || (t == DataType::Int && declared == DataType::Float);
                if !compatible {
                    return Err(TableError::TypeMismatch {
                        column: self.schema.column(i).name.clone(),
                        expected: declared,
                        value: v.clone(),
                    });
                }
            }
        }
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        let id = self.n_rows;
        self.n_rows += 1;
        Ok(id)
    }

    /// Append many rows.
    pub fn extend_rows<I>(&mut self, rows: I) -> Result<(), TableError>
    where
        I: IntoIterator<Item = Vec<Value>>,
    {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// The value at `(row, column index)`.
    pub fn value(&self, row: RowId, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// The value at `(row, column name)`.
    pub fn value_by_name(&self, row: RowId, name: &str) -> Result<&Value, TableError> {
        let idx = self.schema.index_of(name)?;
        Ok(self.value(row, idx))
    }

    /// One whole column by index.
    pub fn column(&self, col: usize) -> &[Value] {
        &self.columns[col]
    }

    /// One whole column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&[Value], TableError> {
        let idx = self.schema.index_of(name)?;
        Ok(self.column(idx))
    }

    /// Materialize one row as a `Vec<Value>`.
    pub fn row(&self, row: RowId) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// Iterate all rows, materializing each.
    pub fn rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.n_rows).map(|r| self.row(r))
    }

    /// A new table containing only the rows whose ids appear in `keep`, in
    /// the given order.
    pub fn gather(&self, keep: &[RowId]) -> Table {
        let mut columns = Vec::with_capacity(self.columns.len());
        for col in &self.columns {
            columns.push(keep.iter().map(|&r| col[r].clone()).collect());
        }
        Table {
            schema: self.schema.clone(),
            columns,
            n_rows: keep.len(),
        }
    }

    /// Render the first `limit` rows as an aligned text grid (the thesis's
    /// GUI lists, in terminal form).
    pub fn render(&self, limit: usize) -> String {
        let headers: Vec<String> = self
            .schema
            .columns()
            .iter()
            .map(|c| c.name.clone())
            .collect();
        let shown = self.n_rows.min(limit);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(shown);
        for r in 0..shown {
            cells.push(
                (0..self.n_cols())
                    .map(|c| self.value(r, c).to_string())
                    .collect(),
            );
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &cells {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, row: &[String]| {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(cell);
                out.extend(std::iter::repeat_n(' ', w - cell.len()));
            }
            out.push('\n');
        };
        write_row(&mut out, &headers);
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        write_row(&mut out, &rule);
        for row in &cells {
            write_row(&mut out, row);
        }
        if self.n_rows > shown {
            out.push_str(&format!("... ({} more rows)\n", self.n_rows - shown));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("name", DataType::Text),
            Column::new("n", DataType::Int),
            Column::new("x", DataType::Float),
        ])
        .unwrap()
    }

    fn table() -> Table {
        let mut t = Table::new(schema());
        t.push_row(vec!["a".into(), 1.into(), 1.5.into()]).unwrap();
        t.push_row(vec!["b".into(), 2.into(), Value::Null]).unwrap();
        t.push_row(vec!["c".into(), 3.into(), 3.5.into()]).unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = table();
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.value(1, 0), &Value::Text("b".into()));
        assert_eq!(t.value_by_name(2, "x").unwrap(), &Value::Float(3.5));
        assert!(t.value(1, 2).is_null());
    }

    #[test]
    fn arity_and_type_validation() {
        let mut t = Table::new(schema());
        assert!(matches!(
            t.push_row(vec!["a".into()]),
            Err(TableError::RowArity {
                got: 1,
                expected: 3
            })
        ));
        assert!(matches!(
            t.push_row(vec![1.into(), 1.into(), 1.5.into()]),
            Err(TableError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn int_widens_into_float_column() {
        let mut t = Table::new(schema());
        t.push_row(vec!["a".into(), 1.into(), Value::Int(2)])
            .unwrap();
        assert_eq!(t.value(0, 2).as_f64(), Some(2.0));
    }

    #[test]
    fn null_fits_any_column() {
        let mut t = Table::new(schema());
        t.push_row(vec![Value::Null, Value::Null, Value::Null])
            .unwrap();
        assert_eq!(t.n_rows(), 1);
    }

    #[test]
    fn gather_preserves_order() {
        let t = table();
        let g = t.gather(&[2, 0]);
        assert_eq!(g.n_rows(), 2);
        assert_eq!(g.value(0, 0), &Value::Text("c".into()));
        assert_eq!(g.value(1, 0), &Value::Text("a".into()));
    }

    #[test]
    fn render_produces_grid() {
        let t = table();
        let s = t.render(2);
        assert!(s.contains("name"));
        assert!(s.contains("1 more rows"));
        assert!(s.lines().count() >= 4);
    }
}
