//! # gea-sage — the SAGE data substrate for GEA
//!
//! Serial Analysis of Gene Expression (SAGE) quantifies cellular gene
//! expression as counts of 10-bp *tags*, each the transcription product of
//! at most one gene. This crate provides everything the GEA toolkit needs
//! below the analysis layer:
//!
//! * [`tag`] — the tag codec, dense tag ids and sorted tag universes;
//! * [`library`] — SAGE libraries with tissue / neoplastic-state /
//!   tissue-source metadata;
//! * [`corpus`] — collections of raw libraries and their descriptive
//!   statistics;
//! * [`mod@clean`] — the §4.2 cleaning pipeline (error removal + normalization
//!   to 300,000 tags per library);
//! * [`matrix`] — the cleaned expression matrix in the thesis's rotated
//!   (tag-major) physical layout;
//! * [`mod@generate`] — a deterministic synthetic corpus generator standing in
//!   for the 2001 NCBI CGAP SAGE collection, with planted ground truth;
//! * [`annotation`] — the Expression Analysis Database (UNIGENE /
//!   SWISSPROT / PFAM / KEGG / GENBANK / OMIM / PUBMED join queries);
//! * [`microarray`] — microarray samples and their conversion to the
//!   same expression matrix (the §2.4 generality claim);
//! * [`io`] — the thesis's text and binary on-disk formats.

#![warn(missing_docs)]

pub mod annotation;
pub mod clean;
pub mod corpus;
pub mod generate;
pub mod io;
pub mod library;
pub mod matrix;
pub mod microarray;
pub mod tag;

pub use clean::{clean, CleaningConfig, CleaningReport};
pub use corpus::SageCorpus;
pub use generate::{generate, GeneratorConfig, GroundTruth};
pub use library::{
    LibraryId, LibraryMeta, LibraryProperty, NeoplasticState, SageLibrary, TissueSource, TissueType,
};
pub use matrix::ExpressionMatrix;
pub use tag::{Tag, TagId, TagUniverse};
