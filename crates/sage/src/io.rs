//! On-disk SAGE formats.
//!
//! The thesis loads SAGE libraries from a directory of plain-text files (one
//! per library, listed in an index file `sageName.txt`) and also keeps a
//! binary copy (`file.b`) for the fascicle miner, "because reading a large
//! amount of data from a plain text file proves faster than from a database"
//! (§4.3.1.2). We reproduce both:
//!
//! * **Library text format** — one `TAG<TAB>count` line per tag.
//! * **Index format** — one line per library:
//!   `name<TAB>tissue<TAB>state<TAB>source<TAB>filename`.
//! * **Corpus binary format** — a single little-endian file with magic
//!   `GEAB`, holding every library's metadata and packed `(tag code, count)`
//!   pairs.

use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

use crate::corpus::SageCorpus;
use crate::library::{LibraryMeta, NeoplasticState, SageLibrary, TissueSource, TissueType};
use crate::tag::Tag;

/// Errors raised by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem failure.
    Io(io::Error),
    /// A line or field did not parse; carries file context and detail.
    Malformed {
        /// File or stream the error occurred in.
        context: String,
        /// Human-readable description of the problem.
        detail: String,
    },
}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> IoError {
        IoError::Io(e)
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Malformed { context, detail } => {
                write!(f, "malformed input in {context}: {detail}")
            }
        }
    }
}

impl std::error::Error for IoError {}

fn malformed(context: &str, detail: impl Into<String>) -> IoError {
    IoError::Malformed {
        context: context.to_string(),
        detail: detail.into(),
    }
}

/// Serialize one library as `TAG<TAB>count` lines in tag order.
pub fn write_library_text(lib: &SageLibrary, w: &mut impl Write) -> io::Result<()> {
    let mut out = io::BufWriter::new(w);
    for (tag, count) in lib.iter() {
        writeln!(out, "{tag}\t{count}")?;
    }
    out.flush()
}

/// Parse one library from `TAG<TAB>count` lines. Blank lines and lines
/// starting with `#` are skipped.
pub fn read_library_text(
    meta: LibraryMeta,
    r: &mut impl Read,
    context: &str,
) -> Result<SageLibrary, IoError> {
    let mut text = String::new();
    r.read_to_string(&mut text)?;
    let mut lib = SageLibrary::new(meta);
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag_s = parts
            .next()
            .ok_or_else(|| malformed(context, format!("line {}: empty", lineno + 1)))?;
        let count_s = parts
            .next()
            .ok_or_else(|| malformed(context, format!("line {}: missing count", lineno + 1)))?;
        let tag: Tag = tag_s
            .parse()
            .map_err(|e| malformed(context, format!("line {}: {e}", lineno + 1)))?;
        let count: u32 = count_s
            .parse()
            .map_err(|e| malformed(context, format!("line {}: bad count: {e}", lineno + 1)))?;
        lib.add(tag, count);
    }
    Ok(lib)
}

fn state_token(s: NeoplasticState) -> &'static str {
    match s {
        NeoplasticState::Cancerous => "cancer",
        NeoplasticState::Normal => "normal",
    }
}

fn source_token(s: TissueSource) -> &'static str {
    match s {
        TissueSource::BulkTissue => "bulk",
        TissueSource::CellLine => "cellline",
    }
}

fn parse_state(s: &str, context: &str) -> Result<NeoplasticState, IoError> {
    match s {
        "cancer" => Ok(NeoplasticState::Cancerous),
        "normal" => Ok(NeoplasticState::Normal),
        other => Err(malformed(context, format!("unknown state {other:?}"))),
    }
}

fn parse_source(s: &str, context: &str) -> Result<TissueSource, IoError> {
    match s {
        "bulk" => Ok(TissueSource::BulkTissue),
        "cellline" => Ok(TissueSource::CellLine),
        other => Err(malformed(context, format!("unknown source {other:?}"))),
    }
}

/// Write a corpus as a directory: `sageName.txt` index plus one text file
/// per library. Mirrors the thesis's `SageLibrary` directory layout.
pub fn write_corpus_dir(corpus: &SageCorpus, dir: &Path) -> Result<(), IoError> {
    fs::create_dir_all(dir)?;
    let mut index = fs::File::create(dir.join("sageName.txt"))?;
    for (id, lib) in corpus.iter() {
        let filename = format!("lib_{:03}.sage", id.0);
        writeln!(
            index,
            "{}\t{}\t{}\t{}\t{}",
            lib.meta.name,
            lib.meta.tissue.name(),
            state_token(lib.meta.state),
            source_token(lib.meta.source),
            filename
        )?;
        let mut f = fs::File::create(dir.join(&filename))?;
        write_library_text(lib, &mut f)?;
    }
    Ok(())
}

/// Read a corpus directory written by [`write_corpus_dir`].
pub fn read_corpus_dir(dir: &Path) -> Result<SageCorpus, IoError> {
    let index_path = dir.join("sageName.txt");
    let index = fs::read_to_string(&index_path)?;
    let context = index_path.display().to_string();
    let mut corpus = SageCorpus::new();
    for (lineno, line) in index.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(malformed(
                &context,
                format!("line {}: expected 5 tab-separated fields", lineno + 1),
            ));
        }
        let meta = LibraryMeta {
            name: fields[0].to_string(),
            tissue: TissueType::parse(fields[1]),
            state: parse_state(fields[2], &context)?,
            source: parse_source(fields[3], &context)?,
        };
        let lib_path = dir.join(fields[4]);
        let mut f = fs::File::open(&lib_path)?;
        let lib = read_library_text(meta, &mut f, &lib_path.display().to_string())?;
        corpus.add(lib);
    }
    Ok(corpus)
}

const BINARY_MAGIC: &[u8; 4] = b"GEAB";
const BINARY_VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_str(w: &mut impl Write, s: &str) -> io::Result<()> {
    write_u32(w, s.len() as u32)?;
    w.write_all(s.as_bytes())
}

fn read_u32(r: &mut impl Read, context: &str) -> Result<u32, IoError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|e| malformed(context, format!("truncated: {e}")))?;
    Ok(u32::from_le_bytes(buf))
}

fn read_str(r: &mut impl Read, context: &str) -> Result<String, IoError> {
    let len = read_u32(r, context)? as usize;
    if len > 1 << 20 {
        return Err(malformed(
            context,
            format!("string length {len} implausible"),
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)
        .map_err(|e| malformed(context, format!("truncated string: {e}")))?;
    String::from_utf8(buf).map_err(|e| malformed(context, format!("non-utf8: {e}")))
}

/// Write the corpus in the compact binary format (the thesis's `file.b`).
pub fn write_corpus_binary(corpus: &SageCorpus, w: &mut impl Write) -> io::Result<()> {
    let mut out = io::BufWriter::new(w);
    out.write_all(BINARY_MAGIC)?;
    write_u32(&mut out, BINARY_VERSION)?;
    write_u32(&mut out, corpus.len() as u32)?;
    for (_, lib) in corpus.iter() {
        write_str(&mut out, &lib.meta.name)?;
        write_str(&mut out, lib.meta.tissue.name())?;
        write_str(&mut out, state_token(lib.meta.state))?;
        write_str(&mut out, source_token(lib.meta.source))?;
        write_u32(&mut out, lib.unique_tags() as u32)?;
        for (tag, count) in lib.iter() {
            write_u32(&mut out, tag.code())?;
            write_u32(&mut out, count)?;
        }
    }
    out.flush()
}

/// Read a corpus from the binary format.
pub fn read_corpus_binary(r: &mut impl Read) -> Result<SageCorpus, IoError> {
    let context = "binary corpus";
    let mut reader = io::BufReader::new(r);
    let mut magic = [0u8; 4];
    reader
        .read_exact(&mut magic)
        .map_err(|e| malformed(context, format!("missing magic: {e}")))?;
    if &magic != BINARY_MAGIC {
        return Err(malformed(context, "bad magic; not a GEA binary corpus"));
    }
    let version = read_u32(&mut reader, context)?;
    if version != BINARY_VERSION {
        return Err(malformed(context, format!("unsupported version {version}")));
    }
    let n_libs = read_u32(&mut reader, context)?;
    let mut corpus = SageCorpus::new();
    for _ in 0..n_libs {
        let name = read_str(&mut reader, context)?;
        let tissue = TissueType::parse(&read_str(&mut reader, context)?);
        let state = parse_state(&read_str(&mut reader, context)?, context)?;
        let source = parse_source(&read_str(&mut reader, context)?, context)?;
        let n_tags = read_u32(&mut reader, context)?;
        let mut lib = SageLibrary::new(LibraryMeta {
            name,
            tissue,
            state,
            source,
        });
        for _ in 0..n_tags {
            let code = read_u32(&mut reader, context)?;
            let count = read_u32(&mut reader, context)?;
            let tag = Tag::from_code(code)
                .ok_or_else(|| malformed(context, format!("tag code {code} out of range")))?;
            lib.add(tag, count);
        }
        corpus.add(lib);
    }
    Ok(corpus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    fn small_corpus() -> SageCorpus {
        let mut config = GeneratorConfig::demo(41);
        config.depth_range = (200, 400);
        config.n_tissue_genes = 40;
        config.n_housekeeping_genes = 20;
        config.n_cancer_diff_genes = 10;
        config.fascicle_signature_size = 10;
        generate(&config).0
    }

    #[test]
    fn library_text_roundtrip() {
        let corpus = small_corpus();
        let (_, lib) = corpus.iter().next().unwrap();
        let mut buf = Vec::new();
        write_library_text(lib, &mut buf).unwrap();
        let parsed = read_library_text(lib.meta.clone(), &mut buf.as_slice(), "test").unwrap();
        assert_eq!(&parsed, lib);
    }

    #[test]
    fn text_reader_rejects_garbage() {
        let meta = small_corpus().meta(crate::library::LibraryId(0)).clone();
        let bad = b"NOTATAG\t5\n";
        let err = read_library_text(meta, &mut bad.as_slice(), "test").unwrap_err();
        assert!(matches!(err, IoError::Malformed { .. }));
    }

    #[test]
    fn text_reader_skips_comments_and_blanks() {
        let meta = small_corpus().meta(crate::library::LibraryId(0)).clone();
        let text = b"# header\n\nAAAAAAAAAA\t4\n";
        let lib = read_library_text(meta, &mut text.as_slice(), "test").unwrap();
        assert_eq!(lib.unique_tags(), 1);
        assert_eq!(lib.total_tags(), 4);
    }

    #[test]
    fn corpus_dir_roundtrip() {
        let corpus = small_corpus();
        let dir = std::env::temp_dir().join(format!("gea_io_test_{}", std::process::id()));
        write_corpus_dir(&corpus, &dir).unwrap();
        let back = read_corpus_dir(&dir).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (id, lib) in corpus.iter() {
            assert_eq!(back.library(id), lib);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corpus_binary_roundtrip() {
        let corpus = small_corpus();
        let mut buf = Vec::new();
        write_corpus_binary(&corpus, &mut buf).unwrap();
        let back = read_corpus_binary(&mut buf.as_slice()).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (id, lib) in corpus.iter() {
            assert_eq!(back.library(id), lib);
        }
    }

    #[test]
    fn binary_reader_rejects_bad_magic() {
        let bytes = b"NOPE\x01\x00\x00\x00";
        let err = read_corpus_binary(&mut bytes.as_slice()).unwrap_err();
        assert!(matches!(err, IoError::Malformed { .. }));
    }
}
