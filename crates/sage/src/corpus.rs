//! A corpus of raw SAGE libraries, before cleaning.
//!
//! The thesis's test data is the NCBI CGAP SAGE collection: 100 libraries,
//! each with 1,000–32,000 distinct tags, across nine tissue types with both
//! cancerous and normal samples (§2.2.3). A [`SageCorpus`] holds such a
//! collection and answers the descriptive queries of §4.4.4.2 (library
//! information, tissue-type membership, frequency census).

use std::collections::BTreeMap;

use crate::library::{LibraryId, LibraryMeta, NeoplasticState, SageLibrary, TissueType};
use crate::tag::{Tag, TagUniverse};

/// An immutable-by-id collection of raw SAGE libraries.
#[derive(Debug, Clone, Default)]
pub struct SageCorpus {
    libraries: Vec<SageLibrary>,
}

impl SageCorpus {
    /// Create an empty corpus.
    pub fn new() -> SageCorpus {
        SageCorpus::default()
    }

    /// Add a library, returning the id it was assigned.
    pub fn add(&mut self, library: SageLibrary) -> LibraryId {
        let id = LibraryId(self.libraries.len() as u32);
        self.libraries.push(library);
        id
    }

    /// Number of libraries.
    pub fn len(&self) -> usize {
        self.libraries.len()
    }

    /// Whether the corpus has no libraries.
    pub fn is_empty(&self) -> bool {
        self.libraries.is_empty()
    }

    /// The library behind an id. Panics on a foreign id.
    pub fn library(&self, id: LibraryId) -> &SageLibrary {
        &self.libraries[id.index()]
    }

    /// Metadata of the library behind an id.
    pub fn meta(&self, id: LibraryId) -> &LibraryMeta {
        &self.libraries[id.index()].meta
    }

    /// Iterate `(id, library)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LibraryId, &SageLibrary)> {
        self.libraries
            .iter()
            .enumerate()
            .map(|(i, l)| (LibraryId(i as u32), l))
    }

    /// All library ids, in order.
    pub fn ids(&self) -> impl Iterator<Item = LibraryId> {
        (0..self.libraries.len() as u32).map(LibraryId)
    }

    /// Find a library by its exact name (Figure 4.23 searches by name or id).
    pub fn find_by_name(&self, name: &str) -> Option<LibraryId> {
        self.iter()
            .find(|(_, l)| l.meta.name == name)
            .map(|(id, _)| id)
    }

    /// Ids of all libraries of the given tissue type (Figure 4.24).
    pub fn libraries_of_tissue(&self, tissue: &TissueType) -> Vec<LibraryId> {
        self.iter()
            .filter(|(_, l)| &l.meta.tissue == tissue)
            .map(|(id, _)| id)
            .collect()
    }

    /// The distinct tissue types present, in sorted order.
    pub fn tissue_types(&self) -> Vec<TissueType> {
        let mut seen: Vec<TissueType> = Vec::new();
        for (_, l) in self.iter() {
            if !seen.contains(&l.meta.tissue) {
                seen.push(l.meta.tissue.clone());
            }
        }
        seen.sort();
        seen
    }

    /// The union of all tags across all libraries (the starting point of the
    /// cleaning pipeline, §4.2: "we take the union of all the tags in the
    /// libraries").
    pub fn tag_union(&self) -> TagUniverse {
        TagUniverse::from_tags(self.libraries.iter().flat_map(|l| l.tags()))
    }

    /// Total observed count of `tag` summed over every library.
    pub fn global_count(&self, tag: Tag) -> u64 {
        self.libraries.iter().map(|l| l.count(tag) as u64).sum()
    }

    /// Maximum per-library count of `tag` over every library. The cleaning
    /// rule keeps a tag iff this exceeds the tolerance.
    pub fn max_count(&self, tag: Tag) -> u32 {
        self.libraries
            .iter()
            .map(|l| l.count(tag))
            .max()
            .unwrap_or(0)
    }

    /// Descriptive statistics for the whole corpus.
    pub fn stats(&self) -> CorpusStats {
        let union = self.tag_union();
        let mut per_library = Vec::with_capacity(self.libraries.len());
        for lib in &self.libraries {
            per_library.push(LibraryStats {
                name: lib.meta.name.clone(),
                unique_tags: lib.unique_tags(),
                total_tags: lib.total_tags(),
                freq1_tags: lib.tags_with_frequency(1),
            });
        }
        // Census of tags whose count is exactly 1 in every library where they
        // appear at all — the error-candidate population of §4.2.
        let mut max_count: BTreeMap<Tag, u32> = BTreeMap::new();
        for lib in &self.libraries {
            for (tag, count) in lib.iter() {
                let entry = max_count.entry(tag).or_insert(0);
                *entry = (*entry).max(count);
            }
        }
        let union_tags_max_freq1 = max_count.values().filter(|&&c| c <= 1).count();
        CorpusStats {
            libraries: self.libraries.len(),
            union_tags: union.len(),
            union_tags_max_freq1,
            per_library,
        }
    }
}

/// Per-library descriptive statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryStats {
    /// Library name.
    pub name: String,
    /// Distinct tags detected.
    pub unique_tags: usize,
    /// Sum of counts.
    pub total_tags: u64,
    /// Distinct tags with count exactly 1.
    pub freq1_tags: usize,
}

/// Corpus-level descriptive statistics (§4.2's cleaning analysis inputs).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusStats {
    /// Number of libraries.
    pub libraries: usize,
    /// Distinct tags in the union of all libraries.
    pub union_tags: usize,
    /// Distinct tags whose count never exceeds 1 in any library — the tags
    /// the default cleaning pass removes.
    pub union_tags_max_freq1: usize,
    /// Per-library statistics, in library-id order.
    pub per_library: Vec<LibraryStats>,
}

impl CorpusStats {
    /// Fraction of unique tags that are frequency-1 everywhere. The thesis
    /// estimates "more than 80% of the unique tags have a frequency of 1".
    pub fn freq1_fraction(&self) -> f64 {
        if self.union_tags == 0 {
            0.0
        } else {
            self.union_tags_max_freq1 as f64 / self.union_tags as f64
        }
    }
}

/// Convenience builder for library metadata used throughout tests and the
/// generator.
pub fn library_meta(
    name: &str,
    tissue: TissueType,
    state: NeoplasticState,
    source: crate::library::TissueSource,
) -> LibraryMeta {
    LibraryMeta {
        name: name.to_string(),
        tissue,
        state,
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::TissueSource;

    fn tag(s: &str) -> Tag {
        s.parse().unwrap()
    }

    fn small_corpus() -> SageCorpus {
        let mut corpus = SageCorpus::new();
        corpus.add(SageLibrary::from_counts(
            library_meta(
                "SAGE_brain_c1",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            [(tag("AAAAAAAAAA"), 5), (tag("CCCCCCCCCC"), 1)],
        ));
        corpus.add(SageLibrary::from_counts(
            library_meta(
                "SAGE_brain_n1",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::CellLine,
            ),
            [(tag("AAAAAAAAAA"), 2), (tag("GGGGGGGGGG"), 1)],
        ));
        corpus.add(SageLibrary::from_counts(
            library_meta(
                "SAGE_breast_c1",
                TissueType::Breast,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            [(tag("TTTTTTTTTT"), 9)],
        ));
        corpus
    }

    #[test]
    fn lookup_by_name_and_tissue() {
        let corpus = small_corpus();
        assert_eq!(corpus.find_by_name("SAGE_brain_n1"), Some(LibraryId(1)));
        assert_eq!(corpus.find_by_name("nope"), None);
        assert_eq!(
            corpus.libraries_of_tissue(&TissueType::Brain),
            vec![LibraryId(0), LibraryId(1)]
        );
        assert_eq!(
            corpus.libraries_of_tissue(&TissueType::Breast),
            vec![LibraryId(2)]
        );
        assert!(corpus.libraries_of_tissue(&TissueType::Kidney).is_empty());
    }

    #[test]
    fn union_and_global_counts() {
        let corpus = small_corpus();
        let union = corpus.tag_union();
        assert_eq!(union.len(), 4);
        assert_eq!(corpus.global_count(tag("AAAAAAAAAA")), 7);
        assert_eq!(corpus.max_count(tag("AAAAAAAAAA")), 5);
        assert_eq!(corpus.max_count(tag("CCCCCCCCCC")), 1);
    }

    #[test]
    fn stats_census() {
        let corpus = small_corpus();
        let stats = corpus.stats();
        assert_eq!(stats.libraries, 3);
        assert_eq!(stats.union_tags, 4);
        // CCCCCCCCCC and GGGGGGGGGG never exceed count 1 anywhere.
        assert_eq!(stats.union_tags_max_freq1, 2);
        assert!((stats.freq1_fraction() - 0.5).abs() < 1e-12);
        assert_eq!(stats.per_library[0].unique_tags, 2);
        assert_eq!(stats.per_library[0].total_tags, 6);
        assert_eq!(stats.per_library[0].freq1_tags, 1);
    }

    #[test]
    fn tissue_types_sorted_distinct() {
        let corpus = small_corpus();
        assert_eq!(
            corpus.tissue_types(),
            vec![TissueType::Brain, TissueType::Breast]
        );
    }
}
