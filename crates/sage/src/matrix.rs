//! The cleaned, normalized expression matrix.
//!
//! After cleaning (§4.2) the corpus becomes a dense matrix of expression
//! levels: one row per tag, one column per library. Following the thesis's
//! physical design (§4.6.1, Figure 4.30), storage is *rotated*: tags are the
//! physical rows (because a DBMS of the time handled at most hundreds of
//! columns, while the data has ~60,000 tags). We keep that layout — values
//! for one tag across all libraries are contiguous — because every analysis
//! operator (aggregation, gap computation, compactness checks) walks
//! tag-wise.

use crate::library::{LibraryId, LibraryMeta};
use crate::tag::{Tag, TagId, TagUniverse};

/// A dense tag-major expression matrix over a fixed tag universe and library
/// roster.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpressionMatrix {
    universe: TagUniverse,
    libraries: Vec<LibraryMeta>,
    /// Row-major with tags as rows: `values[tag.index() * n_libs + lib.index()]`.
    values: Vec<f64>,
}

impl ExpressionMatrix {
    /// Create a zero-filled matrix.
    pub fn zeroed(universe: TagUniverse, libraries: Vec<LibraryMeta>) -> ExpressionMatrix {
        let n = universe.len() * libraries.len();
        ExpressionMatrix {
            universe,
            libraries,
            values: vec![0.0; n],
        }
    }

    /// Create a matrix from tag-major rows. `rows[t]` must hold one value per
    /// library. Panics when dimensions disagree.
    pub fn from_rows(
        universe: TagUniverse,
        libraries: Vec<LibraryMeta>,
        rows: Vec<Vec<f64>>,
    ) -> ExpressionMatrix {
        assert_eq!(rows.len(), universe.len(), "one row per universe tag");
        let n_libs = libraries.len();
        let mut values = Vec::with_capacity(rows.len() * n_libs);
        for row in rows {
            assert_eq!(row.len(), n_libs, "one value per library");
            values.extend(row);
        }
        ExpressionMatrix {
            universe,
            libraries,
            values,
        }
    }

    /// The tag universe the rows are indexed by.
    pub fn universe(&self) -> &TagUniverse {
        &self.universe
    }

    /// Number of tags (physical rows).
    pub fn n_tags(&self) -> usize {
        self.universe.len()
    }

    /// Number of libraries (physical columns).
    pub fn n_libraries(&self) -> usize {
        self.libraries.len()
    }

    /// Metadata of a library column.
    pub fn library(&self, id: LibraryId) -> &LibraryMeta {
        &self.libraries[id.index()]
    }

    /// All library metadata, in column order.
    pub fn libraries(&self) -> &[LibraryMeta] {
        &self.libraries
    }

    /// All library ids, in column order.
    pub fn library_ids(&self) -> impl Iterator<Item = LibraryId> {
        (0..self.libraries.len() as u32).map(LibraryId)
    }

    /// Expression level of `tag` in `lib`.
    pub fn value(&self, tag: TagId, lib: LibraryId) -> f64 {
        self.values[tag.index() * self.libraries.len() + lib.index()]
    }

    /// Set the expression level of `tag` in `lib`.
    pub fn set(&mut self, tag: TagId, lib: LibraryId, v: f64) {
        self.values[tag.index() * self.libraries.len() + lib.index()] = v;
    }

    /// The contiguous slice of one tag's levels across all libraries — the
    /// rotated layout's unit of locality.
    pub fn tag_row(&self, tag: TagId) -> &[f64] {
        let w = self.libraries.len();
        &self.values[tag.index() * w..(tag.index() + 1) * w]
    }

    /// One library's levels gathered across all tags (a strided walk in this
    /// layout — deliberately the slow direction; see `benches/layout.rs`).
    pub fn library_column(&self, lib: LibraryId) -> Vec<f64> {
        let w = self.libraries.len();
        (0..self.n_tags())
            .map(|t| self.values[t * w + lib.index()])
            .collect()
    }

    /// Sum of one library's levels — its (normalized) total tag count.
    pub fn library_total(&self, lib: LibraryId) -> f64 {
        let w = self.libraries.len();
        (0..self.n_tags())
            .map(|t| self.values[t * w + lib.index()])
            .sum()
    }

    /// Resolve a tag string to its row id, if the tag survived cleaning.
    pub fn id_of(&self, tag: Tag) -> Option<TagId> {
        self.universe.id_of(tag)
    }

    /// The tag behind a row id.
    pub fn tag_of(&self, id: TagId) -> Tag {
        self.universe.tag_of(id)
    }

    /// All tag ids, in row order.
    pub fn tag_ids(&self) -> impl Iterator<Item = TagId> {
        (0..self.universe.len() as u32).map(TagId)
    }

    /// Project onto a subset of library columns, preserving the given order.
    /// The result's `LibraryId`s are re-numbered 0..k.
    pub fn select_libraries(&self, keep: &[LibraryId]) -> ExpressionMatrix {
        let libraries: Vec<LibraryMeta> = keep
            .iter()
            .map(|&id| self.libraries[id.index()].clone())
            .collect();
        let w = self.libraries.len();
        let mut values = Vec::with_capacity(self.n_tags() * keep.len());
        for t in 0..self.n_tags() {
            let row = &self.values[t * w..(t + 1) * w];
            values.extend(keep.iter().map(|&id| row[id.index()]));
        }
        ExpressionMatrix {
            universe: self.universe.clone(),
            libraries,
            values,
        }
    }

    /// Project onto a subset of tag rows. The surviving tags keep their
    /// relative order; the result has a fresh, smaller universe.
    pub fn select_tags(&self, keep: impl Fn(TagId, Tag) -> bool) -> ExpressionMatrix {
        let (universe, remap) = self.universe.filter(&keep);
        let w = self.libraries.len();
        let mut values = Vec::with_capacity(universe.len() * w);
        for (old_idx, new_id) in remap.iter().enumerate() {
            if new_id.is_some() {
                values.extend_from_slice(&self.values[old_idx * w..(old_idx + 1) * w]);
            }
        }
        ExpressionMatrix {
            universe,
            libraries: self.libraries.clone(),
            values,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::library_meta;
    use crate::library::{NeoplasticState, TissueSource, TissueType};

    fn tiny() -> ExpressionMatrix {
        let universe = TagUniverse::from_tags(
            ["AAAAAAAAAA", "CCCCCCCCCC", "GGGGGGGGGG"]
                .iter()
                .map(|s| s.parse().unwrap()),
        );
        let libs = vec![
            library_meta(
                "L0",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            library_meta(
                "L1",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            ),
        ];
        ExpressionMatrix::from_rows(
            universe,
            libs,
            vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        )
    }

    #[test]
    fn indexing_and_rows() {
        let m = tiny();
        assert_eq!(m.n_tags(), 3);
        assert_eq!(m.n_libraries(), 2);
        assert_eq!(m.value(TagId(1), LibraryId(0)), 3.0);
        assert_eq!(m.tag_row(TagId(2)), &[5.0, 6.0]);
        assert_eq!(m.library_column(LibraryId(1)), vec![2.0, 4.0, 6.0]);
        assert_eq!(m.library_total(LibraryId(0)), 9.0);
    }

    #[test]
    fn set_updates_cell() {
        let mut m = tiny();
        m.set(TagId(0), LibraryId(1), 42.0);
        assert_eq!(m.value(TagId(0), LibraryId(1)), 42.0);
    }

    #[test]
    fn select_libraries_reorders_and_renumbers() {
        let m = tiny();
        let sub = m.select_libraries(&[LibraryId(1)]);
        assert_eq!(sub.n_libraries(), 1);
        assert_eq!(sub.library(LibraryId(0)).name, "L1");
        assert_eq!(sub.tag_row(TagId(0)), &[2.0]);
        assert_eq!(sub.tag_row(TagId(2)), &[6.0]);
    }

    #[test]
    fn select_tags_shrinks_universe() {
        let m = tiny();
        let g: Tag = "GGGGGGGGGG".parse().unwrap();
        let sub = m.select_tags(|_, t| t == g);
        assert_eq!(sub.n_tags(), 1);
        assert_eq!(sub.tag_of(TagId(0)), g);
        assert_eq!(sub.tag_row(TagId(0)), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "one value per library")]
    fn from_rows_validates_width() {
        let universe = TagUniverse::from_tags(["AAAAAAAAAA".parse::<Tag>().unwrap()]);
        let libs = vec![library_meta(
            "L0",
            TissueType::Brain,
            NeoplasticState::Normal,
            TissueSource::BulkTissue,
        )];
        ExpressionMatrix::from_rows(universe, libs, vec![vec![1.0, 2.0]]);
    }
}
