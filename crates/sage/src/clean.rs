//! Pre-processing and data cleaning (thesis §4.2).
//!
//! SAGE sequencing introduces errors: roughly 10 % of the tags in each
//! library are mis-reads, almost all of which appear with frequency 1. The
//! thesis's cleaning rule:
//!
//! 1. Take the union of all tags across all libraries.
//! 2. Remove every tag whose expression level is ≤ the *minimum tolerance*
//!    (default 1) in **all** libraries. A tag that is frequency-1 in some
//!    libraries but higher elsewhere is kept, since a count of 1 can be a
//!    legitimate low-abundance mRNA.
//! 3. Normalize: because libraries are sequenced to very different depths
//!    (1k–32k tags), scale each library so its total count equals a common
//!    target — 300,000, the estimated number of mRNAs per cell.
//!
//! On the thesis's data this takes the union from ~350,000 tags down to
//! ~60,000, removing 5–15 % of each library's distinct tags.

use crate::corpus::SageCorpus;
use crate::library::LibraryId;
use crate::matrix::ExpressionMatrix;

/// Estimated mRNA transcripts per cell; the normalization target (§4.2).
pub const MRNAS_PER_CELL: f64 = 300_000.0;

/// Configuration of the cleaning pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningConfig {
    /// A tag is removed when its count is ≤ this value in *every* library.
    /// The thesis's GUI calls this the "minimum tolerance value"; default 1.
    pub min_tolerance: u32,
    /// Target total count every library is scaled to. Default
    /// [`MRNAS_PER_CELL`]. Set to `None` to skip normalization.
    pub scale_to: Option<f64>,
}

impl Default for CleaningConfig {
    fn default() -> CleaningConfig {
        CleaningConfig {
            min_tolerance: 1,
            scale_to: Some(MRNAS_PER_CELL),
        }
    }
}

/// What the cleaning pass did — the §4.2 summary numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct CleaningReport {
    /// Distinct tags in the union before cleaning (~350,000 in the thesis).
    pub raw_union_tags: usize,
    /// Distinct tags kept (~60,000 in the thesis).
    pub kept_tags: usize,
    /// Per-library fraction of distinct tags removed (5–15 % in the thesis).
    pub removed_fraction_per_library: Vec<f64>,
    /// Fraction of union tags that never exceeded frequency 1 anywhere
    /// (> 80 % in the thesis's estimate).
    pub freq1_union_fraction: f64,
    /// The tolerance used.
    pub min_tolerance: u32,
    /// The normalization target, if normalization ran.
    pub scale_to: Option<f64>,
}

impl CleaningReport {
    /// Fraction of the raw union removed overall.
    pub fn removed_fraction(&self) -> f64 {
        if self.raw_union_tags == 0 {
            0.0
        } else {
            1.0 - self.kept_tags as f64 / self.raw_union_tags as f64
        }
    }
}

/// Run the §4.2 cleaning pipeline over a raw corpus, producing the cleaned,
/// normalized expression matrix and a report of what was removed.
pub fn clean(corpus: &SageCorpus, config: &CleaningConfig) -> (ExpressionMatrix, CleaningReport) {
    let raw_union = corpus.tag_union();
    let raw_union_tags = raw_union.len();

    // Step 2: keep a tag iff some library saw it more than `min_tolerance`
    // times.
    let kept = raw_union
        .filter(|_, tag| corpus.max_count(tag) > config.min_tolerance)
        .0;

    // Frequency-1 census over the raw union, for the report.
    let freq1 = raw_union
        .iter()
        .filter(|&(_, tag)| corpus.max_count(tag) <= 1)
        .count();
    let freq1_union_fraction = if raw_union_tags == 0 {
        0.0
    } else {
        freq1 as f64 / raw_union_tags as f64
    };

    // Per-library removal fractions.
    let mut removed_fraction_per_library = Vec::with_capacity(corpus.len());
    for (_, lib) in corpus.iter() {
        let before = lib.unique_tags();
        let after = lib.tags().filter(|&t| kept.id_of(t).is_some()).count();
        let frac = if before == 0 {
            0.0
        } else {
            1.0 - after as f64 / before as f64
        };
        removed_fraction_per_library.push(frac);
    }

    // Build the matrix over kept tags, then normalize per library.
    let metas = corpus.iter().map(|(_, l)| l.meta.clone()).collect();
    let mut matrix = ExpressionMatrix::zeroed(kept, metas);
    for (lib_id, lib) in corpus.iter() {
        // Step 3: scale factor from *surviving* counts, so library totals in
        // the matrix land exactly on the target. ("We scale up the data sets
        // by proportionally increasing the count of genes that exist in the
        // library, and the genes that do not exist will remain as zero.")
        let surviving_total: u64 = lib
            .iter()
            .filter(|&(t, _)| matrix.id_of(t).is_some())
            .map(|(_, c)| c as u64)
            .sum();
        let factor = match config.scale_to {
            Some(target) if surviving_total > 0 => target / surviving_total as f64,
            _ => 1.0,
        };
        for (tag, count) in lib.iter() {
            if let Some(tid) = matrix.id_of(tag) {
                matrix.set(tid, lib_id, count as f64 * factor);
            }
        }
    }

    let report = CleaningReport {
        raw_union_tags,
        kept_tags: matrix.n_tags(),
        removed_fraction_per_library,
        freq1_union_fraction,
        min_tolerance: config.min_tolerance,
        scale_to: config.scale_to,
    };
    (matrix, report)
}

/// Normalize an already-clean matrix so every library column sums to
/// `target`. Exposed separately so user-defined ENUM tables can be
/// re-normalized after library removal (Case 5, §4.3.5).
pub fn normalize(matrix: &mut ExpressionMatrix, target: f64) {
    let n_libs = matrix.n_libraries();
    for l in 0..n_libs {
        let lib = LibraryId(l as u32);
        let total = matrix.library_total(lib);
        if total > 0.0 {
            let factor = target / total;
            for t in matrix.tag_ids().collect::<Vec<_>>() {
                let v = matrix.value(t, lib);
                if v != 0.0 {
                    matrix.set(t, lib, v * factor);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::library_meta;
    use crate::library::{NeoplasticState, SageLibrary, TissueSource, TissueType};
    use crate::tag::Tag;

    fn tag(s: &str) -> Tag {
        s.parse().unwrap()
    }

    fn corpus() -> SageCorpus {
        let mut c = SageCorpus::new();
        c.add(SageLibrary::from_counts(
            library_meta(
                "A",
                TissueType::Brain,
                NeoplasticState::Cancerous,
                TissueSource::BulkTissue,
            ),
            [
                (tag("AAAAAAAAAA"), 10), // kept: high somewhere
                (tag("CCCCCCCCCC"), 1),  // kept: freq 1 here but 5 in B
                (tag("GGGGGGGGGG"), 1),  // removed: never above 1
            ],
        ));
        c.add(SageLibrary::from_counts(
            library_meta(
                "B",
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            ),
            [
                (tag("CCCCCCCCCC"), 5),
                (tag("TTTTTTTTTT"), 1), // removed: only ever 1
            ],
        ));
        c
    }

    #[test]
    fn removes_only_globally_low_tags() {
        let (matrix, report) = clean(
            &corpus(),
            &CleaningConfig {
                min_tolerance: 1,
                scale_to: None,
            },
        );
        assert_eq!(report.raw_union_tags, 4);
        assert_eq!(report.kept_tags, 2);
        assert!(matrix.id_of(tag("AAAAAAAAAA")).is_some());
        assert!(matrix.id_of(tag("CCCCCCCCCC")).is_some());
        assert!(matrix.id_of(tag("GGGGGGGGGG")).is_none());
        assert!(matrix.id_of(tag("TTTTTTTTTT")).is_none());
        // Library A lost 1 of 3 tags; B lost 1 of 2.
        assert!((report.removed_fraction_per_library[0] - 1.0 / 3.0).abs() < 1e-12);
        assert!((report.removed_fraction_per_library[1] - 0.5).abs() < 1e-12);
        // GGGGGGGGGG and TTTTTTTTTT are the freq-1-everywhere tags.
        assert!((report.freq1_union_fraction - 0.5).abs() < 1e-12);
        assert!((report.removed_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn keeps_freq1_tags_that_rise_elsewhere() {
        // "Sometimes it is legitimate for a tag to have a frequency of 1 ...
        // we can't conclude a tag is an error based on observations in one
        // library" (§4.2).
        let (matrix, _) = clean(
            &corpus(),
            &CleaningConfig {
                min_tolerance: 1,
                scale_to: None,
            },
        );
        let c = matrix.id_of(tag("CCCCCCCCCC")).unwrap();
        let a_lib = LibraryId(0);
        assert_eq!(matrix.value(c, a_lib), 1.0);
    }

    #[test]
    fn normalization_scales_each_library_to_target() {
        let (matrix, report) = clean(
            &corpus(),
            &CleaningConfig {
                min_tolerance: 1,
                scale_to: Some(300.0),
            },
        );
        assert_eq!(report.scale_to, Some(300.0));
        for lib in matrix.library_ids() {
            let total = matrix.library_total(lib);
            assert!(
                (total - 300.0).abs() < 1e-9,
                "library {lib} total {total} != 300"
            );
        }
        // Relative abundances within a library are preserved.
        let a = matrix.id_of(tag("AAAAAAAAAA")).unwrap();
        let c = matrix.id_of(tag("CCCCCCCCCC")).unwrap();
        let lib0 = LibraryId(0);
        assert!((matrix.value(a, lib0) / matrix.value(c, lib0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn higher_tolerance_removes_more() {
        let (matrix, report) = clean(
            &corpus(),
            &CleaningConfig {
                min_tolerance: 5,
                scale_to: None,
            },
        );
        // Only AAAAAAAAAA exceeds count 5 somewhere.
        assert_eq!(report.kept_tags, 1);
        assert!(matrix.id_of(tag("AAAAAAAAAA")).is_some());
    }

    #[test]
    fn cleaning_is_idempotent_on_clean_data() {
        let cfg = CleaningConfig {
            min_tolerance: 1,
            scale_to: None,
        };
        let (m1, r1) = clean(&corpus(), &cfg);
        // Re-feed the cleaned matrix as a corpus of integer counts.
        let mut c2 = SageCorpus::new();
        for lib in m1.library_ids() {
            let pairs: Vec<(Tag, u32)> = m1
                .tag_ids()
                .map(|t| (m1.tag_of(t), m1.value(t, lib) as u32))
                .collect();
            c2.add(SageLibrary::from_counts(m1.library(lib).clone(), pairs));
        }
        let (m2, r2) = clean(&c2, &cfg);
        assert_eq!(r2.kept_tags, r1.kept_tags);
        assert_eq!(m2.n_tags(), m1.n_tags());
    }

    #[test]
    fn explicit_normalize_helper() {
        let (mut matrix, _) = clean(
            &corpus(),
            &CleaningConfig {
                min_tolerance: 1,
                scale_to: None,
            },
        );
        normalize(&mut matrix, 1000.0);
        for lib in matrix.library_ids() {
            assert!((matrix.library_total(lib) - 1000.0).abs() < 1e-9);
        }
    }
}
