//! The Expression Analysis Database (EADB): integrated annotation lookup.
//!
//! Thesis §4.4.4.1 and §5.2 integrate GEA with external annotation
//! databases via relational joins: UNIGENE (tag → gene), SWISSPROT (gene →
//! protein sequence), PFAM (protein → family), KEGG (gene → pathway),
//! GENBANK (gene → DNA sequence), OMIM (gene → disease) and PUBMED (gene →
//! publications). Those 2001-era downloads are unavailable, so this module
//! synthesizes a deterministic catalog with the same schema and cardinality
//! shape: tag → gene is many-to-one and *partial* ("there are tags with no
//! known corresponding genes", §2.2.3), while the per-gene annotations are
//! one-to-one or one-to-many.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generate::GroundTruth;
use crate::tag::Tag;

/// One UNIGENE-style record: a gene-oriented cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneRecord {
    /// Gene symbol / description, e.g. `aldolase C`.
    pub gene: String,
    /// UNIGENE cluster id, e.g. `Hs.155247`.
    pub unigene_id: String,
}

/// One SWISSPROT-style record.
#[derive(Debug, Clone, PartialEq)]
pub struct ProteinRecord {
    /// SWISSPROT accession, e.g. `P09972`.
    pub accession: String,
    /// Amino-acid sequence (single-letter codes).
    pub sequence: String,
}

/// One PFAM-style record.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyRecord {
    /// PFAM family id, e.g. `PF00274`.
    pub family_id: String,
    /// Family name.
    pub name: String,
}

/// One KEGG-style record.
#[derive(Debug, Clone, PartialEq)]
pub struct PathwayRecord {
    /// KEGG pathway id, e.g. `hsa00010`.
    pub pathway_id: String,
    /// Pathway name.
    pub name: String,
}

/// One PUBMED-style record.
#[derive(Debug, Clone, PartialEq)]
pub struct Publication {
    /// PubMed id.
    pub pmid: u32,
    /// Title.
    pub title: String,
    /// Journal name.
    pub journal: String,
    /// Publication year.
    pub year: u16,
}

/// One OMIM-style record.
#[derive(Debug, Clone, PartialEq)]
pub struct DiseaseRecord {
    /// OMIM id.
    pub omim_id: u32,
    /// Disease name.
    pub name: String,
}

/// The full annotation chain for a tag (Figure 4.22's search result).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EadbReport {
    /// The gene the tag maps to, if any.
    pub gene: Option<GeneRecord>,
    /// The gene's protein, if annotated.
    pub protein: Option<ProteinRecord>,
    /// The protein's family, if classified.
    pub family: Option<FamilyRecord>,
    /// Pathways the gene participates in.
    pub pathways: Vec<PathwayRecord>,
    /// The gene's DNA (GENBANK) accession, if any.
    pub genbank_accession: Option<String>,
    /// Diseases linked to the gene.
    pub diseases: Vec<DiseaseRecord>,
    /// Publications studying the gene.
    pub publications: Vec<Publication>,
}

/// An in-memory annotation catalog supporting the §5.2 join queries.
#[derive(Debug, Clone, Default)]
pub struct AnnotationCatalog {
    tag_to_gene: BTreeMap<Tag, String>,
    genes: BTreeMap<String, GeneRecord>,
    gene_to_protein: BTreeMap<String, ProteinRecord>,
    protein_to_family: BTreeMap<String, FamilyRecord>,
    gene_to_pathways: BTreeMap<String, Vec<PathwayRecord>>,
    gene_to_genbank: BTreeMap<String, String>,
    gene_to_diseases: BTreeMap<String, Vec<DiseaseRecord>>,
    gene_to_publications: BTreeMap<String, Vec<Publication>>,
}

const AMINO_ACIDS: &[u8] = b"ACDEFGHIKLMNPQRSTVWY";

const PATHWAY_NAMES: &[&str] = &[
    "Glycolysis / Gluconeogenesis",
    "Citrate cycle (TCA cycle)",
    "Oxidative phosphorylation",
    "Cell cycle",
    "Apoptosis",
    "p53 signaling pathway",
    "MAPK signaling pathway",
    "Wnt signaling pathway",
    "DNA replication",
    "Ribosome",
];

const JOURNALS: &[&str] = &[
    "Science",
    "Nature",
    "Cell",
    "Proc. Natl. Acad. Sci. USA",
    "Genome Research",
    "Nucleic Acids Research",
];

const DISEASES: &[&str] = &[
    "glioblastoma multiforme",
    "breast carcinoma",
    "colorectal adenocarcinoma",
    "prostate adenocarcinoma",
    "ovarian carcinoma",
    "pancreatic carcinoma",
    "renal cell carcinoma",
    "melanoma",
];

impl AnnotationCatalog {
    /// Create an empty catalog.
    pub fn new() -> AnnotationCatalog {
        AnnotationCatalog::default()
    }

    /// Synthesize a deterministic catalog covering the planted genes of a
    /// generated corpus. `coverage` controls what fraction of genes receive
    /// each downstream annotation (UNIGENE's real coverage is partial).
    pub fn synthesize(truth: &GroundTruth, seed: u64, coverage: f64) -> AnnotationCatalog {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut catalog = AnnotationCatalog::new();
        for (i, planted) in truth.genes.iter().enumerate() {
            // A small fraction of tags remain unmapped, as in UNIGENE.
            if !rng.gen_bool(coverage) {
                continue;
            }
            let gene = planted.gene.clone();
            catalog.tag_to_gene.insert(planted.tag, gene.clone());
            catalog.genes.insert(
                gene.clone(),
                GeneRecord {
                    gene: gene.clone(),
                    unigene_id: format!("Hs.{}", 100_000 + i),
                },
            );
            // Protein and family.
            if rng.gen_bool(coverage) {
                let accession = format!("P{:05}", rng.gen_range(10_000..99_999));
                let len = rng.gen_range(120..480);
                let sequence: String = (0..len)
                    .map(|_| AMINO_ACIDS[rng.gen_range(0..AMINO_ACIDS.len())] as char)
                    .collect();
                catalog.gene_to_protein.insert(
                    gene.clone(),
                    ProteinRecord {
                        accession: accession.clone(),
                        sequence,
                    },
                );
                if rng.gen_bool(coverage) {
                    catalog.protein_to_family.insert(
                        accession,
                        FamilyRecord {
                            family_id: format!("PF{:05}", rng.gen_range(1..20_000)),
                            name: format!("{gene} domain family"),
                        },
                    );
                }
            }
            // Pathways (0–3).
            let n_paths = rng.gen_range(0..=3);
            let mut paths = Vec::new();
            for _ in 0..n_paths {
                let idx = rng.gen_range(0..PATHWAY_NAMES.len());
                paths.push(PathwayRecord {
                    pathway_id: format!("hsa{:05}", 10 * (idx + 1)),
                    name: PATHWAY_NAMES[idx].to_string(),
                });
            }
            paths.sort_by(|a, b| a.pathway_id.cmp(&b.pathway_id));
            paths.dedup_by(|a, b| a.pathway_id == b.pathway_id);
            if !paths.is_empty() {
                catalog.gene_to_pathways.insert(gene.clone(), paths);
            }
            // GENBANK accession.
            if rng.gen_bool(coverage) {
                catalog.gene_to_genbank.insert(
                    gene.clone(),
                    format!("NM_{:06}", rng.gen_range(1_000..999_999)),
                );
            }
            // Diseases (cancer-responsive genes are more likely annotated).
            let disease_p = match planted.response {
                crate::generate::CancerResponse::Unchanged => 0.05,
                _ => 0.6,
            };
            if rng.gen_bool(disease_p) {
                let idx = rng.gen_range(0..DISEASES.len());
                catalog.gene_to_diseases.insert(
                    gene.clone(),
                    vec![DiseaseRecord {
                        omim_id: rng.gen_range(100_000..620_000),
                        name: DISEASES[idx].to_string(),
                    }],
                );
            }
            // Publications (0–4).
            let n_pubs = rng.gen_range(0..=4);
            let mut pubs = Vec::new();
            for _ in 0..n_pubs {
                pubs.push(Publication {
                    pmid: rng.gen_range(8_000_000..12_000_000),
                    title: format!(
                        "Expression of {gene} in {}",
                        DISEASES[rng.gen_range(0..DISEASES.len())]
                    ),
                    journal: JOURNALS[rng.gen_range(0..JOURNALS.len())].to_string(),
                    year: rng.gen_range(1995..=2001),
                });
            }
            if !pubs.is_empty() {
                catalog.gene_to_publications.insert(gene, pubs);
            }
        }
        catalog
    }

    /// UNIGENE: map a tag to its gene (the thesis's "tag-to-gene mapper").
    pub fn gene_for_tag(&self, tag: Tag) -> Option<&GeneRecord> {
        self.tag_to_gene.get(&tag).and_then(|g| self.genes.get(g))
    }

    /// Reverse mapping: all tags transcribed from a gene (the "gene-to-tag
    /// mapper" on the NCBI SAGE site).
    pub fn tags_for_gene(&self, gene: &str) -> Vec<Tag> {
        self.tag_to_gene
            .iter()
            .filter(|(_, g)| g.as_str() == gene)
            .map(|(&t, _)| t)
            .collect()
    }

    /// SWISSPROT: the protein a gene encodes.
    pub fn protein_for_gene(&self, gene: &str) -> Option<&ProteinRecord> {
        self.gene_to_protein.get(gene)
    }

    /// PFAM: the family a protein belongs to.
    pub fn family_for_protein(&self, accession: &str) -> Option<&FamilyRecord> {
        self.protein_to_family.get(accession)
    }

    /// KEGG: pathways a gene participates in.
    pub fn pathways_for_gene(&self, gene: &str) -> &[PathwayRecord] {
        self.gene_to_pathways
            .get(gene)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// GENBANK: the DNA accession for a gene.
    pub fn genbank_for_gene(&self, gene: &str) -> Option<&str> {
        self.gene_to_genbank.get(gene).map(|s| s.as_str())
    }

    /// OMIM: diseases linked to a gene.
    pub fn diseases_for_gene(&self, gene: &str) -> &[DiseaseRecord] {
        self.gene_to_diseases
            .get(gene)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// PUBMED: publications studying a gene.
    pub fn publications_for_gene(&self, gene: &str) -> &[Publication] {
        self.gene_to_publications
            .get(gene)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All genes whose pathway set contains `pathway_id` — the §5.2.4
    /// "identify other genes in the same pathway" query.
    pub fn genes_in_pathway(&self, pathway_id: &str) -> Vec<&str> {
        self.gene_to_pathways
            .iter()
            .filter(|(_, ps)| ps.iter().any(|p| p.pathway_id == pathway_id))
            .map(|(g, _)| g.as_str())
            .collect()
    }

    /// Run the full Figure 4.22 chain: tag → gene → protein → family /
    /// pathways / DNA / diseases / publications.
    pub fn lookup_chain(&self, tag: Tag) -> EadbReport {
        let mut report = EadbReport::default();
        let Some(gene) = self.gene_for_tag(tag).cloned() else {
            return report;
        };
        let name = gene.gene.clone();
        report.gene = Some(gene);
        report.protein = self.protein_for_gene(&name).cloned();
        if let Some(protein) = &report.protein {
            report.family = self.family_for_protein(&protein.accession).cloned();
        }
        report.pathways = self.pathways_for_gene(&name).to_vec();
        report.genbank_accession = self.genbank_for_gene(&name).map(String::from);
        report.diseases = self.diseases_for_gene(&name).to_vec();
        report.publications = self.publications_for_gene(&name).to_vec();
        report
    }

    /// Manually register a tag → gene mapping (used by tests and by loaders
    /// of real annotation dumps).
    pub fn insert_gene(&mut self, tag: Tag, record: GeneRecord) {
        self.tag_to_gene.insert(tag, record.gene.clone());
        self.genes.insert(record.gene.clone(), record);
    }

    /// Manually register a gene → protein mapping.
    pub fn insert_protein(&mut self, gene: &str, protein: ProteinRecord) {
        self.gene_to_protein.insert(gene.to_string(), protein);
    }

    /// Manually register gene → publications.
    pub fn insert_publications(&mut self, gene: &str, pubs: Vec<Publication>) {
        self.gene_to_publications.insert(gene.to_string(), pubs);
    }

    /// Number of mapped tags.
    pub fn mapped_tags(&self) -> usize {
        self.tag_to_gene.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{generate, GeneratorConfig};

    #[test]
    fn manual_chain_resembles_figure_4_22() {
        // The thesis's example: tag CCTTGAGTAC → gene "aldolase C"
        // (Hs.155247) → protein sequence → publications.
        let mut catalog = AnnotationCatalog::new();
        let tag: Tag = "CCTTGAGTAC".parse().unwrap();
        catalog.insert_gene(
            tag,
            GeneRecord {
                gene: "aldolase C".to_string(),
                unigene_id: "Hs.155247".to_string(),
            },
        );
        catalog.insert_protein(
            "aldolase C",
            ProteinRecord {
                accession: "P09972".to_string(),
                sequence: "MPHSYPALSAEQKKELSDIALR".to_string(),
            },
        );
        catalog.insert_publications(
            "aldolase C",
            vec![Publication {
                pmid: 10_000_001,
                title: "Aldolase C/zebrin II expression in the neonatal rat".to_string(),
                journal: "J. Comp. Neurol.".to_string(),
                year: 1999,
            }],
        );
        let report = catalog.lookup_chain(tag);
        assert_eq!(report.gene.unwrap().gene, "aldolase C");
        assert_eq!(report.protein.unwrap().accession, "P09972");
        assert_eq!(report.publications.len(), 1);
    }

    #[test]
    fn unmapped_tag_yields_empty_report() {
        let catalog = AnnotationCatalog::new();
        let report = catalog.lookup_chain("AAAAAAAAAA".parse().unwrap());
        assert!(report.gene.is_none());
        assert!(report.publications.is_empty());
    }

    #[test]
    fn synthesized_catalog_covers_most_planted_genes() {
        let (_, truth) = generate(&GeneratorConfig::demo(23));
        let catalog = AnnotationCatalog::synthesize(&truth, 23, 0.9);
        let mapped = truth
            .genes
            .iter()
            .filter(|g| catalog.gene_for_tag(g.tag).is_some())
            .count();
        let frac = mapped as f64 / truth.genes.len() as f64;
        assert!((0.8..1.0).contains(&frac), "coverage {frac}");
        // Partial coverage: some tags genuinely unmapped.
        assert!(mapped < truth.genes.len());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let (_, truth) = generate(&GeneratorConfig::demo(29));
        let c1 = AnnotationCatalog::synthesize(&truth, 5, 0.9);
        let c2 = AnnotationCatalog::synthesize(&truth, 5, 0.9);
        assert_eq!(c1.mapped_tags(), c2.mapped_tags());
        for g in truth.genes.iter().take(50) {
            assert_eq!(
                c1.gene_for_tag(g.tag),
                c2.gene_for_tag(g.tag),
                "gene mapping differs for {}",
                g.gene
            );
        }
    }

    #[test]
    fn pathway_reverse_lookup() {
        let (_, truth) = generate(&GeneratorConfig::demo(31));
        let catalog = AnnotationCatalog::synthesize(&truth, 31, 0.95);
        // Find any annotated pathway, then ask who else is in it.
        let gene_with_pathway = truth
            .genes
            .iter()
            .find(|g| !catalog.pathways_for_gene(&g.gene).is_empty())
            .expect("some gene has a pathway");
        let pid = catalog.pathways_for_gene(&gene_with_pathway.gene)[0]
            .pathway_id
            .clone();
        let members = catalog.genes_in_pathway(&pid);
        assert!(members.contains(&gene_with_pathway.gene.as_str()));
    }

    #[test]
    fn tags_for_gene_roundtrip() {
        let (_, truth) = generate(&GeneratorConfig::demo(37));
        let catalog = AnnotationCatalog::synthesize(&truth, 37, 1.0);
        let g = &truth.genes[0];
        assert_eq!(catalog.tags_for_gene(&g.gene), vec![g.tag]);
    }
}
