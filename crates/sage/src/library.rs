//! SAGE libraries and their descriptive metadata.
//!
//! A SAGE *library* is the product of one expression-profiling experiment: a
//! list of tags with their observed counts (thesis §2.2.3). Each library
//! carries auxiliary metadata — the tissue it was derived from, whether the
//! tissue was cancerous or normal, and whether it came from bulk tissue or a
//! cell line (thesis §4.4.4.2, "Search SAGE Library Information").

use std::collections::BTreeMap;
use std::fmt;

use crate::tag::Tag;

/// Identifier of a library within a corpus. The thesis numbers its 100
/// libraries 1..=100; we use a dense zero-based index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LibraryId(pub u32);

impl LibraryId {
    /// The dense index as a `usize`, for direct vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LibraryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The system-defined tissue types of the thesis's SAGE data set (§2.2.3:
/// "brain, breast, prostate, ovary, colon, pancreas, vascular, skin, and
/// kidney"), plus an escape hatch for user-defined tissue groupings
/// (§4.3.1.2 step 1).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TissueType {
    /// Brain tissue.
    Brain,
    /// Breast tissue.
    Breast,
    /// Prostate tissue.
    Prostate,
    /// Ovary tissue.
    Ovary,
    /// Colon tissue.
    Colon,
    /// Pancreas tissue.
    Pancreas,
    /// Vascular tissue.
    Vascular,
    /// Skin tissue.
    Skin,
    /// Kidney tissue.
    Kidney,
    /// A user-defined tissue type, e.g. a combination of brain and breast
    /// libraries (Figure 4.15).
    Custom(String),
}

impl TissueType {
    /// The nine system-defined tissue types, in the order the thesis lists
    /// them.
    pub const SYSTEM: [TissueType; 9] = [
        TissueType::Brain,
        TissueType::Breast,
        TissueType::Prostate,
        TissueType::Ovary,
        TissueType::Colon,
        TissueType::Pancreas,
        TissueType::Vascular,
        TissueType::Skin,
        TissueType::Kidney,
    ];

    /// Lower-case name, matching the thesis's GUI labels.
    pub fn name(&self) -> &str {
        match self {
            TissueType::Brain => "brain",
            TissueType::Breast => "breast",
            TissueType::Prostate => "prostate",
            TissueType::Ovary => "ovary",
            TissueType::Colon => "colon",
            TissueType::Pancreas => "pancreas",
            TissueType::Vascular => "vascular",
            TissueType::Skin => "skin",
            TissueType::Kidney => "kidney",
            TissueType::Custom(name) => name,
        }
    }

    /// Parse a tissue name; unknown names become [`TissueType::Custom`].
    pub fn parse(name: &str) -> TissueType {
        for t in TissueType::SYSTEM {
            if t.name() == name {
                return t;
            }
        }
        TissueType::Custom(name.to_string())
    }
}

impl fmt::Display for TissueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether the sampled tissue was cancerous or normal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NeoplasticState {
    /// The sample came from a tumour.
    Cancerous,
    /// The sample came from healthy tissue.
    Normal,
}

impl fmt::Display for NeoplasticState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NeoplasticState::Cancerous => "cancerous",
            NeoplasticState::Normal => "normal",
        })
    }
}

/// Whether the library was made from bulk tissue (cells taken directly from
/// a body) or a cell line (cells grown indefinitely in vitro) — thesis
/// §2.2.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TissueSource {
    /// Cells taken directly out of tissue in a person's body.
    BulkTissue,
    /// Cells grown indefinitely in vitro.
    CellLine,
}

impl fmt::Display for TissueSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TissueSource::BulkTissue => "bulk tissue",
            TissueSource::CellLine => "cell line",
        })
    }
}

/// One of the four fascicle purity properties of Figure 4.7/4.8: a fascicle
/// is *pure* with respect to a property when all its libraries share it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LibraryProperty {
    /// All libraries cancerous.
    Cancer,
    /// All libraries normal.
    Normal,
    /// All libraries from bulk tissue.
    BulkTissue,
    /// All libraries from cell lines.
    CellLine,
}

impl LibraryProperty {
    /// All four properties, in the order the thesis's purity-check GUI
    /// presents them.
    pub const ALL: [LibraryProperty; 4] = [
        LibraryProperty::Cancer,
        LibraryProperty::Normal,
        LibraryProperty::BulkTissue,
        LibraryProperty::CellLine,
    ];
}

impl fmt::Display for LibraryProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LibraryProperty::Cancer => "cancer",
            LibraryProperty::Normal => "normal",
            LibraryProperty::BulkTissue => "bulk tissue",
            LibraryProperty::CellLine => "cell line",
        })
    }
}

/// Descriptive metadata for a library (thesis Figure 4.23's search result).
#[derive(Debug, Clone, PartialEq)]
pub struct LibraryMeta {
    /// Human-readable library name, e.g. `SAGE_Duke_H1020`.
    pub name: String,
    /// Tissue the sample came from.
    pub tissue: TissueType,
    /// Cancerous or normal.
    pub state: NeoplasticState,
    /// Bulk tissue or cell line.
    pub source: TissueSource,
}

impl LibraryMeta {
    /// Whether the library satisfies one of the four purity properties.
    pub fn has_property(&self, p: LibraryProperty) -> bool {
        match p {
            LibraryProperty::Cancer => self.state == NeoplasticState::Cancerous,
            LibraryProperty::Normal => self.state == NeoplasticState::Normal,
            LibraryProperty::BulkTissue => self.source == TissueSource::BulkTissue,
            LibraryProperty::CellLine => self.source == TissueSource::CellLine,
        }
    }
}

/// A raw SAGE library: tag → observed count.
///
/// Counts are kept sparse and sorted by tag; a library only records the tags
/// actually sequenced in its sample (between ~1,000 and ~32,000 distinct
/// tags in the thesis's data).
#[derive(Debug, Clone, PartialEq)]
pub struct SageLibrary {
    /// Descriptive metadata.
    pub meta: LibraryMeta,
    counts: BTreeMap<Tag, u32>,
}

impl SageLibrary {
    /// Create an empty library with the given metadata.
    pub fn new(meta: LibraryMeta) -> SageLibrary {
        SageLibrary {
            meta,
            counts: BTreeMap::new(),
        }
    }

    /// Create a library from `(tag, count)` pairs. Duplicate tags accumulate;
    /// zero counts are dropped.
    pub fn from_counts<I>(meta: LibraryMeta, pairs: I) -> SageLibrary
    where
        I: IntoIterator<Item = (Tag, u32)>,
    {
        let mut lib = SageLibrary::new(meta);
        for (tag, count) in pairs {
            lib.add(tag, count);
        }
        lib
    }

    /// Add `count` observations of `tag`.
    pub fn add(&mut self, tag: Tag, count: u32) {
        if count > 0 {
            *self.counts.entry(tag).or_insert(0) += count;
        }
    }

    /// Remove a tag entirely, returning its count if it was present.
    pub fn remove(&mut self, tag: Tag) -> Option<u32> {
        self.counts.remove(&tag)
    }

    /// Observed count for `tag` (0 when absent).
    pub fn count(&self, tag: Tag) -> u32 {
        self.counts.get(&tag).copied().unwrap_or(0)
    }

    /// Number of *distinct* tags detected — the thesis's "unique number of
    /// tags".
    pub fn unique_tags(&self) -> usize {
        self.counts.len()
    }

    /// Sum of all count values — the thesis's "total number of tags".
    pub fn total_tags(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Iterate `(tag, count)` pairs in tag order.
    pub fn iter(&self) -> impl Iterator<Item = (Tag, u32)> + '_ {
        self.counts.iter().map(|(&t, &c)| (t, c))
    }

    /// Iterate just the tags, in tag order.
    pub fn tags(&self) -> impl Iterator<Item = Tag> + '_ {
        self.counts.keys().copied()
    }

    /// Number of distinct tags whose observed count equals `freq`. The
    /// cleaning analysis of §4.2 is driven by the frequency-1 population.
    pub fn tags_with_frequency(&self, freq: u32) -> usize {
        self.counts.values().filter(|&&c| c == freq).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tag(s: &str) -> Tag {
        s.parse().unwrap()
    }

    fn meta() -> LibraryMeta {
        LibraryMeta {
            name: "SAGE_test".to_string(),
            tissue: TissueType::Brain,
            state: NeoplasticState::Cancerous,
            source: TissueSource::BulkTissue,
        }
    }

    #[test]
    fn counts_accumulate_and_zero_is_dropped() {
        let mut lib = SageLibrary::new(meta());
        lib.add(tag("AAAAAAAAAA"), 3);
        lib.add(tag("AAAAAAAAAA"), 2);
        lib.add(tag("CCCCCCCCCC"), 0);
        assert_eq!(lib.count(tag("AAAAAAAAAA")), 5);
        assert_eq!(lib.count(tag("CCCCCCCCCC")), 0);
        assert_eq!(lib.unique_tags(), 1);
        assert_eq!(lib.total_tags(), 5);
    }

    #[test]
    fn totals_match_thesis_definitions() {
        let lib = SageLibrary::from_counts(
            meta(),
            [
                (tag("AAAAAAAAAA"), 1843),
                (tag("AAAAAAAAAC"), 3),
                (tag("AAAAAAAAAT"), 10),
            ],
        );
        // "The number of unique tags ... is the number of different tags
        // detected"; "the total number of tags is the sum of all the count
        // values" (§2.2.3).
        assert_eq!(lib.unique_tags(), 3);
        assert_eq!(lib.total_tags(), 1856);
    }

    #[test]
    fn frequency_census() {
        let lib = SageLibrary::from_counts(
            meta(),
            [
                (tag("AAAAAAAAAA"), 1),
                (tag("AAAAAAAAAC"), 1),
                (tag("AAAAAAAAAG"), 7),
            ],
        );
        assert_eq!(lib.tags_with_frequency(1), 2);
        assert_eq!(lib.tags_with_frequency(7), 1);
        assert_eq!(lib.tags_with_frequency(2), 0);
    }

    #[test]
    fn purity_properties() {
        let m = meta();
        assert!(m.has_property(LibraryProperty::Cancer));
        assert!(!m.has_property(LibraryProperty::Normal));
        assert!(m.has_property(LibraryProperty::BulkTissue));
        assert!(!m.has_property(LibraryProperty::CellLine));
    }

    #[test]
    fn tissue_type_parsing() {
        assert_eq!(TissueType::parse("brain"), TissueType::Brain);
        assert_eq!(
            TissueType::parse("newBrain"),
            TissueType::Custom("newBrain".to_string())
        );
        for t in TissueType::SYSTEM {
            assert_eq!(TissueType::parse(t.name()), t);
        }
    }
}
