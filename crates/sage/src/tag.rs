//! SAGE tag representation.
//!
//! A SAGE *tag* is a nucleotide sequence of exactly 10 base pairs drawn from
//! the alphabet `{A, C, G, T}` (thesis §2.2.3). A tag identifies the
//! transcription product of at most one gene. With 4 bases over 10
//! positions there are 4^10 = 1,048,576 possible tags, so a tag packs
//! losslessly into 20 bits; we store it in a `u32`.
//!
//! The packed form doubles as a total order that matches lexicographic
//! order on the string form (`AAAAAAAAAA < AAAAAAAAAC < ... < TTTTTTTTTT`),
//! which the thesis relies on for *tag range* searches such as
//! `AAAAAAAAAA-AAAAAAAACT` (Figure 4.25).

use std::fmt;
use std::str::FromStr;

/// Number of base pairs in a SAGE tag.
pub const TAG_LEN: usize = 10;

/// Number of distinct tags (4^10).
pub const TAG_SPACE: u32 = 1 << (2 * TAG_LEN as u32);

/// One nucleotide base.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Base {
    /// Adenine.
    A = 0,
    /// Cytosine.
    C = 1,
    /// Guanine.
    G = 2,
    /// Thymine.
    T = 3,
}

impl Base {
    /// All four bases in lexicographic order.
    pub const ALL: [Base; 4] = [Base::A, Base::C, Base::G, Base::T];

    /// Parse a single character (case-insensitive).
    pub fn from_char(c: char) -> Result<Base, TagParseError> {
        match c.to_ascii_uppercase() {
            'A' => Ok(Base::A),
            'C' => Ok(Base::C),
            'G' => Ok(Base::G),
            'T' => Ok(Base::T),
            other => Err(TagParseError::InvalidBase(other)),
        }
    }

    /// Character form of the base.
    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
        }
    }

    /// Decode from a 2-bit code.
    fn from_code(code: u32) -> Base {
        match code & 0b11 {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            _ => Base::T,
        }
    }
}

/// Errors produced when parsing a tag from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TagParseError {
    /// The input was not exactly [`TAG_LEN`] characters.
    WrongLength(usize),
    /// The input contained a character outside `{A, C, G, T}`.
    InvalidBase(char),
}

impl fmt::Display for TagParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagParseError::WrongLength(n) => {
                write!(f, "SAGE tag must have exactly {TAG_LEN} bases, got {n}")
            }
            TagParseError::InvalidBase(c) => {
                write!(f, "invalid nucleotide {c:?}; expected one of A, C, G, T")
            }
        }
    }
}

impl std::error::Error for TagParseError {}

/// A 10-bp SAGE tag, packed 2 bits per base into the low 20 bits of a `u32`.
///
/// The most significant base pair occupies the highest bits so the numeric
/// order of the packed value equals the lexicographic order of the string
/// form.
///
/// ```
/// use gea_sage::tag::Tag;
/// let t: Tag = "AAAAAGAAAA".parse().unwrap();
/// assert_eq!(t.to_string(), "AAAAAGAAAA");
/// assert!(t > "AAAAACTCCC".parse().unwrap());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tag(u32);

impl Tag {
    /// The lexicographically smallest tag, `AAAAAAAAAA`.
    pub const MIN: Tag = Tag(0);

    /// The lexicographically largest tag, `TTTTTTTTTT`.
    pub const MAX: Tag = Tag(TAG_SPACE - 1);

    /// Construct from a packed code. Returns `None` when the code is outside
    /// the 20-bit tag space.
    pub fn from_code(code: u32) -> Option<Tag> {
        (code < TAG_SPACE).then_some(Tag(code))
    }

    /// The packed 20-bit code (also the tag's rank in lexicographic order).
    pub fn code(self) -> u32 {
        self.0
    }

    /// Construct from the ten bases, most significant first.
    pub fn from_bases(bases: [Base; TAG_LEN]) -> Tag {
        let mut code = 0u32;
        for b in bases {
            code = (code << 2) | b as u32;
        }
        Tag(code)
    }

    /// The ten bases, most significant first.
    pub fn bases(self) -> [Base; TAG_LEN] {
        let mut out = [Base::A; TAG_LEN];
        for (i, slot) in out.iter_mut().enumerate() {
            let shift = 2 * (TAG_LEN - 1 - i) as u32;
            *slot = Base::from_code(self.0 >> shift);
        }
        out
    }

    /// The tag that follows this one lexicographically, or `None` at
    /// [`Tag::MAX`]. Used by tag-range iteration.
    pub fn succ(self) -> Option<Tag> {
        Tag::from_code(self.0 + 1)
    }

    /// Iterate every tag in the inclusive range `lo..=hi`.
    pub fn range_inclusive(lo: Tag, hi: Tag) -> impl Iterator<Item = Tag> {
        (lo.0..=hi.0).map(Tag)
    }
}

impl FromStr for Tag {
    type Err = TagParseError;

    fn from_str(s: &str) -> Result<Tag, TagParseError> {
        let chars: Vec<char> = s.chars().collect();
        if chars.len() != TAG_LEN {
            return Err(TagParseError::WrongLength(chars.len()));
        }
        let mut code = 0u32;
        for c in chars {
            code = (code << 2) | Base::from_char(c)? as u32;
        }
        Ok(Tag(code))
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in self.bases() {
            write!(f, "{}", b.to_char())?;
        }
        Ok(())
    }
}

/// Dense identifier of a tag *within a corpus*: its index in the corpus's
/// sorted tag universe. The thesis displays this as the "tag number" next to
/// the tag name, e.g. `AAAAAGAAAA_(1580)`.
///
/// `TagId` is only meaningful relative to the [`TagUniverse`] that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TagId(pub u32);

impl TagId {
    /// The dense index as a `usize`, for direct vector addressing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TagId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The sorted set of distinct tags observed in a corpus, assigning each a
/// dense [`TagId`].
///
/// The thesis works with ~60,000 distinct tags after cleaning (out of the
/// 4^10 possible); a sorted dense universe keeps ENUM/SUMY tables compact
/// and makes tag-range predicates contiguous id ranges.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagUniverse {
    sorted: Vec<Tag>,
}

impl TagUniverse {
    /// Build a universe from any iterator of tags; duplicates are collapsed
    /// and the result is sorted so ids follow lexicographic tag order.
    pub fn from_tags<I: IntoIterator<Item = Tag>>(tags: I) -> TagUniverse {
        let mut sorted: Vec<Tag> = tags.into_iter().collect();
        sorted.sort_unstable();
        sorted.dedup();
        TagUniverse { sorted }
    }

    /// Number of distinct tags in the universe.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Resolve a tag to its dense id, if present.
    pub fn id_of(&self, tag: Tag) -> Option<TagId> {
        self.sorted
            .binary_search(&tag)
            .ok()
            .map(|i| TagId(i as u32))
    }

    /// The tag behind a dense id. Panics if the id is out of range, which
    /// indicates the id came from a different universe.
    pub fn tag_of(&self, id: TagId) -> Tag {
        self.sorted[id.index()]
    }

    /// Ids covering the inclusive tag range `lo..=hi` — a contiguous id span
    /// because the universe is sorted.
    pub fn ids_in_range(&self, lo: Tag, hi: Tag) -> impl Iterator<Item = TagId> + '_ {
        let start = self.sorted.partition_point(|t| *t < lo);
        let end = self.sorted.partition_point(|t| *t <= hi);
        (start..end).map(|i| TagId(i as u32))
    }

    /// Iterate `(id, tag)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (TagId, Tag)> + '_ {
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, t)| (TagId(i as u32), *t))
    }

    /// Restrict the universe to the tags satisfying `keep`, producing the new
    /// universe and a mapping `old id -> new id` for surviving tags.
    pub fn filter(
        &self,
        mut keep: impl FnMut(TagId, Tag) -> bool,
    ) -> (TagUniverse, Vec<Option<TagId>>) {
        let mut sorted = Vec::new();
        let mut remap = vec![None; self.sorted.len()];
        for (id, tag) in self.iter() {
            if keep(id, tag) {
                remap[id.index()] = Some(TagId(sorted.len() as u32));
                sorted.push(tag);
            }
        }
        (TagUniverse { sorted }, remap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple_tags() {
        for s in [
            "AAAAAAAAAA",
            "TTTTTTTTTT",
            "ACGTACGTAC",
            "GAGGGAGTTT",
            "CCTTGAGTAC",
        ] {
            let t: Tag = s.parse().unwrap();
            assert_eq!(t.to_string(), s);
        }
    }

    #[test]
    fn packed_order_matches_lexicographic_order() {
        let a: Tag = "AAAAAAAAAC".parse().unwrap();
        let b: Tag = "AAAAAAAAAT".parse().unwrap();
        let c: Tag = "AAAAAACTCC".parse().unwrap();
        let d: Tag = "AAAAAGAAAA".parse().unwrap();
        assert!(a < b && b < c && c < d);
        assert_eq!(Tag::MIN.to_string(), "AAAAAAAAAA");
        assert_eq!(Tag::MAX.to_string(), "TTTTTTTTTT");
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert_eq!("AAAA".parse::<Tag>(), Err(TagParseError::WrongLength(4)));
        assert_eq!(
            "AAAAAAAAAX".parse::<Tag>(),
            Err(TagParseError::InvalidBase('X'))
        );
        assert_eq!(
            "AAAAAAAAAAA".parse::<Tag>(),
            Err(TagParseError::WrongLength(11))
        );
    }

    #[test]
    fn parse_is_case_insensitive() {
        let lower: Tag = "acgtacgtac".parse().unwrap();
        let upper: Tag = "ACGTACGTAC".parse().unwrap();
        assert_eq!(lower, upper);
    }

    #[test]
    fn succ_walks_the_space() {
        let t: Tag = "AAAAAAAAAA".parse().unwrap();
        assert_eq!(t.succ().unwrap().to_string(), "AAAAAAAAAC");
        assert_eq!(Tag::MAX.succ(), None);
    }

    #[test]
    fn bases_roundtrip() {
        let t: Tag = "GATTACAGAT".parse().unwrap();
        assert_eq!(Tag::from_bases(t.bases()), t);
    }

    #[test]
    fn universe_assigns_sorted_dense_ids() {
        let tags: Vec<Tag> = ["GGGGGGGGGG", "AAAAAAAAAA", "CCCCCCCCCC", "GGGGGGGGGG"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let u = TagUniverse::from_tags(tags);
        assert_eq!(u.len(), 3);
        assert_eq!(u.tag_of(TagId(0)).to_string(), "AAAAAAAAAA");
        assert_eq!(u.tag_of(TagId(2)).to_string(), "GGGGGGGGGG");
        assert_eq!(u.id_of("CCCCCCCCCC".parse().unwrap()), Some(TagId(1)));
        assert_eq!(u.id_of("TTTTTTTTTT".parse().unwrap()), None);
    }

    #[test]
    fn universe_range_query_is_contiguous() {
        let tags: Vec<Tag> = ["AAAAAAAAAA", "AAAAAAAAAG", "AAAAAAAAGT", "CAAAAAAAAA"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let u = TagUniverse::from_tags(tags);
        let lo: Tag = "AAAAAAAAAC".parse().unwrap();
        let hi: Tag = "AAAAAAAGTT".parse().unwrap();
        let hits: Vec<u32> = u.ids_in_range(lo, hi).map(|id| id.0).collect();
        assert_eq!(hits, vec![1, 2]);
    }

    #[test]
    fn universe_filter_remaps_ids() {
        let tags: Vec<Tag> = ["AAAAAAAAAA", "CCCCCCCCCC", "GGGGGGGGGG"]
            .iter()
            .map(|s| s.parse().unwrap())
            .collect();
        let u = TagUniverse::from_tags(tags);
        let (filtered, remap) = u.filter(|_, t| t.to_string() != "CCCCCCCCCC");
        assert_eq!(filtered.len(), 2);
        assert_eq!(remap[0], Some(TagId(0)));
        assert_eq!(remap[1], None);
        assert_eq!(remap[2], Some(TagId(1)));
    }
}
