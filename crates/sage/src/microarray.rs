//! Microarray data support (thesis §2.2.1, §2.4).
//!
//! GEA claims "a more general design that can analyze both SAGE data and
//! microarray data": a microarray chip's spot intensities "can be easily
//! expressed as tags with expression values, which is similar to SAGE
//! data". This module makes that claim concrete: a [`MicroarraySample`] is
//! a set of probes (identified by the probed transcript's tag) with
//! fluorescence intensities; a collection of samples over a shared probe
//! set converts to the same [`ExpressionMatrix`] the rest of the toolkit
//! operates on.
//!
//! The key *differences* from SAGE are preserved: a microarray only
//! measures the probes the experimenter chose to print (§2.2.1's
//! experimenter-bias caveat), intensities are relative rather than absolute
//! counts, and there are no sequencing-error singleton tags — so microarray
//! data skips the §4.2 error-removal step and goes straight to
//! normalization.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generate::{CancerResponse, GeneratorConfig, GroundTruth};
use crate::library::{LibraryMeta, NeoplasticState, TissueSource, TissueType};
use crate::matrix::ExpressionMatrix;
use crate::tag::{Tag, TagUniverse};

/// One microarray hybridization: probe tag → background-corrected spot
/// intensity.
#[derive(Debug, Clone, PartialEq)]
pub struct MicroarraySample {
    /// Sample metadata (same vocabulary as SAGE libraries).
    pub meta: LibraryMeta,
    intensities: BTreeMap<Tag, f64>,
}

impl MicroarraySample {
    /// Create an empty sample.
    pub fn new(meta: LibraryMeta) -> MicroarraySample {
        MicroarraySample {
            meta,
            intensities: BTreeMap::new(),
        }
    }

    /// Record a probe measurement (negative intensities clamp to zero, as
    /// background correction produces).
    pub fn set(&mut self, probe: Tag, intensity: f64) {
        self.intensities.insert(probe, intensity.max(0.0));
    }

    /// The measured intensity of a probe, if it was on the chip.
    pub fn intensity(&self, probe: Tag) -> Option<f64> {
        self.intensities.get(&probe).copied()
    }

    /// Probes measured in this sample.
    pub fn probes(&self) -> impl Iterator<Item = Tag> + '_ {
        self.intensities.keys().copied()
    }

    /// Number of probes.
    pub fn n_probes(&self) -> usize {
        self.intensities.len()
    }
}

/// Errors converting microarray samples to an expression matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MicroarrayError {
    /// No samples supplied.
    NoSamples,
    /// A sample's probe set differs from the first sample's (chips in one
    /// experiment must share a print layout).
    ProbeSetMismatch {
        /// The offending sample's name.
        sample: String,
    },
}

impl std::fmt::Display for MicroarrayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MicroarrayError::NoSamples => f.write_str("no microarray samples"),
            MicroarrayError::ProbeSetMismatch { sample } => {
                write!(f, "sample {sample:?} has a different probe set")
            }
        }
    }
}

impl std::error::Error for MicroarrayError {}

/// Convert samples sharing a probe layout into an [`ExpressionMatrix`].
/// When `normalize_to` is given, every sample's intensities are scaled to
/// that total (quantile-free total-intensity normalization, the 2001-era
/// default).
pub fn to_expression_matrix(
    samples: &[MicroarraySample],
    normalize_to: Option<f64>,
) -> Result<ExpressionMatrix, MicroarrayError> {
    let first = samples.first().ok_or(MicroarrayError::NoSamples)?;
    let universe = TagUniverse::from_tags(first.probes());
    for s in samples {
        if s.n_probes() != universe.len() || s.probes().any(|p| universe.id_of(p).is_none()) {
            return Err(MicroarrayError::ProbeSetMismatch {
                sample: s.meta.name.clone(),
            });
        }
    }
    let metas: Vec<LibraryMeta> = samples.iter().map(|s| s.meta.clone()).collect();
    let mut matrix = ExpressionMatrix::zeroed(universe, metas);
    for (l, sample) in samples.iter().enumerate() {
        let lib = crate::library::LibraryId(l as u32);
        let total: f64 = sample.intensities.values().sum();
        let factor = match normalize_to {
            Some(target) if total > 0.0 => target / total,
            _ => 1.0,
        };
        for (&probe, &v) in &sample.intensities {
            let tid = matrix.id_of(probe).expect("probe in universe");
            matrix.set(tid, lib, v * factor);
        }
    }
    Ok(matrix)
}

/// Synthesize a microarray experiment over the *same planted genes* as a
/// generated SAGE corpus — but only the probes an experimenter would have
/// printed: genes whose home tissue is `tissue` plus the housekeeping
/// genes (the §2.2.1 bias: "the experimenter must select the mRNA
/// sequences to be detected").
pub fn synthesize_experiment(
    truth: &GroundTruth,
    config: &GeneratorConfig,
    tissue: &TissueType,
    n_cancer: usize,
    n_normal: usize,
    seed: u64,
) -> Vec<MicroarraySample> {
    let mut rng = StdRng::seed_from_u64(seed);
    let probes: Vec<_> = truth
        .genes
        .iter()
        .filter(|g| g.tissue.is_none() || g.tissue.as_ref() == Some(tissue))
        .collect();
    let mut samples = Vec::with_capacity(n_cancer + n_normal);
    for i in 0..(n_cancer + n_normal) {
        let cancerous = i < n_cancer;
        let meta = LibraryMeta {
            name: format!(
                "ARRAY_{}_{}{:02}",
                tissue.name(),
                if cancerous { "C" } else { "N" },
                i
            ),
            tissue: tissue.clone(),
            state: if cancerous {
                NeoplasticState::Cancerous
            } else {
                NeoplasticState::Normal
            },
            source: TissueSource::BulkTissue,
        };
        let mut sample = MicroarraySample::new(meta);
        for gene in &probes {
            let mut level = gene.base_level;
            if cancerous {
                match gene.response {
                    CancerResponse::Up => level *= config.cancer_fold_change,
                    CancerResponse::Down => level /= config.cancer_fold_change,
                    CancerResponse::Unchanged => {}
                }
            }
            // Fluorescence: multiplicative lognormal-ish noise plus a small
            // additive background term; no count quantization.
            let sigma = (1.0 + config.noise_cv * config.noise_cv).ln().sqrt();
            let z: f64 = {
                let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                let u2: f64 = rng.gen_range(0.0..1.0);
                (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
            };
            let noisy = level * (sigma * z - 0.5 * sigma * sigma).exp();
            let background = rng.gen_range(0.0..0.5);
            sample.set(gene.tag, noisy + background);
        }
        samples.push(sample);
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::library_meta;
    use crate::generate::generate;

    fn meta(name: &str) -> LibraryMeta {
        library_meta(
            name,
            TissueType::Breast,
            NeoplasticState::Normal,
            TissueSource::BulkTissue,
        )
    }

    #[test]
    fn conversion_and_normalization() {
        let t1: Tag = "AAAAAAAAAA".parse().unwrap();
        let t2: Tag = "CCCCCCCCCC".parse().unwrap();
        let mut s1 = MicroarraySample::new(meta("A1"));
        s1.set(t1, 30.0);
        s1.set(t2, 70.0);
        let mut s2 = MicroarraySample::new(meta("A2"));
        s2.set(t1, 10.0);
        s2.set(t2, 10.0);
        let m = to_expression_matrix(&[s1, s2], Some(1000.0)).unwrap();
        assert_eq!(m.n_tags(), 2);
        assert_eq!(m.n_libraries(), 2);
        for lib in m.library_ids() {
            assert!((m.library_total(lib) - 1000.0).abs() < 1e-9);
        }
        let tid = m.id_of(t1).unwrap();
        assert!((m.value(tid, crate::library::LibraryId(0)) - 300.0).abs() < 1e-9);
        assert!((m.value(tid, crate::library::LibraryId(1)) - 500.0).abs() < 1e-9);
    }

    #[test]
    fn negative_intensities_clamp() {
        let mut s = MicroarraySample::new(meta("A"));
        s.set("AAAAAAAAAA".parse().unwrap(), -3.0);
        assert_eq!(s.intensity("AAAAAAAAAA".parse().unwrap()), Some(0.0));
    }

    #[test]
    fn mismatched_probe_sets_rejected() {
        let t1: Tag = "AAAAAAAAAA".parse().unwrap();
        let t2: Tag = "CCCCCCCCCC".parse().unwrap();
        let mut s1 = MicroarraySample::new(meta("A1"));
        s1.set(t1, 1.0);
        let mut s2 = MicroarraySample::new(meta("A2"));
        s2.set(t2, 1.0);
        assert_eq!(
            to_expression_matrix(&[s1, s2], None),
            Err(MicroarrayError::ProbeSetMismatch {
                sample: "A2".to_string()
            })
        );
        assert_eq!(
            to_expression_matrix(&[], None),
            Err(MicroarrayError::NoSamples)
        );
    }

    #[test]
    fn synthetic_experiment_carries_planted_structure() {
        let config = GeneratorConfig::demo(7);
        let (_, truth) = generate(&config);
        let samples = synthesize_experiment(&truth, &config, &TissueType::Brain, 4, 4, 7);
        assert_eq!(samples.len(), 8);
        // Probe set: brain genes + housekeeping, identical across samples.
        let n = samples[0].n_probes();
        assert!(samples.iter().all(|s| s.n_probes() == n));
        let matrix = to_expression_matrix(&samples, Some(10_000.0)).unwrap();
        // An up-regulated brain gene should be higher in cancer samples.
        let up = truth
            .genes
            .iter()
            .find(|g| {
                g.tissue == Some(TissueType::Brain)
                    && g.response == CancerResponse::Up
                    && g.base_level > 20.0
            })
            .expect("planted up gene");
        let tid = matrix.id_of(up.tag).unwrap();
        let mean = |range: std::ops::Range<u32>| {
            range
                .clone()
                .map(|l| matrix.value(tid, crate::library::LibraryId(l)))
                .sum::<f64>()
                / range.len() as f64
        };
        let cancer = mean(0..4);
        let normal = mean(4..8);
        assert!(
            cancer > 2.0 * normal,
            "up-regulated gene: cancer {cancer} vs normal {normal}"
        );
    }

    #[test]
    fn microarray_matrix_feeds_the_same_pipeline() {
        // The §2.4 claim: the converted matrix is analyzable by the same
        // machinery (here: it is a well-formed ExpressionMatrix with a
        // shared universe — gea-core operators take it from there; the
        // cross-crate integration test drives the full pipeline).
        let config = GeneratorConfig::demo(11);
        let (_, truth) = generate(&config);
        let samples = synthesize_experiment(&truth, &config, &TissueType::Breast, 3, 3, 11);
        let matrix = to_expression_matrix(&samples, Some(10_000.0)).unwrap();
        assert!(matrix.n_tags() > 100);
        assert_eq!(matrix.n_libraries(), 6);
    }
}
