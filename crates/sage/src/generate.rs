//! Synthetic SAGE corpus generation.
//!
//! The thesis evaluates GEA on the NCBI CGAP SAGE collection circa 2001
//! (100 libraries, nine tissue types). That snapshot is not available
//! offline, so this module generates a corpus that reproduces every
//! statistical property the thesis's pipeline and case studies depend on:
//!
//! * **High dimensionality**: a large pool of gene tags plus per-library
//!   sequencing-error singletons inflate the raw tag union (the thesis's
//!   350k → 60k cleaning ratio).
//! * **Error structure**: ~10–20 % of each library's total tag count comes
//!   from frequency-1 mis-reads, so that > 80 % of unique tags are
//!   frequency-1 (§4.2's cleaning premises).
//! * **Tissue specificity**: most genes are expressed in a single home
//!   tissue; housekeeping genes are expressed everywhere (§2.1).
//! * **Cancer differential expression**: per tissue, planted gene sets are
//!   up- or down-regulated in cancerous libraries.
//! * **Fascicle structure**: a subset of each tissue's cancerous libraries
//!   agree tightly (low variance) on a signature tag set, so the Fascicles
//!   algorithm can find a pure cancerous fascicle (Case 1).
//! * **Named markers**: genes such as RIBOSOMAL PROTEIN L12 and ALPHA
//!   TUBULIN are planted with the group means of Figures 4.2, 4.3 and 4.11.
//!
//! Generation is fully deterministic given the seed.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::corpus::SageCorpus;
use crate::library::{LibraryMeta, NeoplasticState, SageLibrary, TissueSource, TissueType};
use crate::tag::{Tag, TAG_SPACE};

/// How many libraries of each kind a tissue contributes.
#[derive(Debug, Clone, PartialEq)]
pub struct TissueConfig {
    /// The tissue type.
    pub tissue: TissueType,
    /// Number of cancerous libraries.
    pub n_cancer: usize,
    /// Number of normal libraries.
    pub n_normal: usize,
    /// Fraction of libraries derived from cell lines rather than bulk
    /// tissue.
    pub cell_line_fraction: f64,
}

/// A named marker gene planted with specific group means so the thesis's
/// case-study figures reproduce.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkerGene {
    /// Gene name, e.g. `"RIBOSOMAL PROTEIN L12"`.
    pub gene: String,
    /// The tissue whose case study features this marker.
    pub tissue: TissueType,
    /// Mean normalized expression in cancerous libraries inside the planted
    /// fascicle.
    pub mean_cancer_in_fascicle: f64,
    /// Mean in cancerous libraries outside the planted fascicle.
    pub mean_cancer_outside: f64,
    /// Mean in normal libraries of the tissue.
    pub mean_normal: f64,
}

/// Full generator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// RNG seed; the corpus is a pure function of the config.
    pub seed: u64,
    /// Tissues and their library counts.
    pub tissues: Vec<TissueConfig>,
    /// Genes expressed in every library regardless of tissue.
    pub n_housekeeping_genes: usize,
    /// Of the housekeeping genes, how many respond to cancer in *every*
    /// tissue (half up, half down) — proliferation-style genes, the prey
    /// of Case 3's cross-tissue screen.
    pub n_universal_diff_genes: usize,
    /// Tissue-specific genes *per tissue*.
    pub n_tissue_genes: usize,
    /// Of the tissue-specific genes, how many are differentially expressed
    /// in cancer (half up-regulated, half down-regulated).
    pub n_cancer_diff_genes: usize,
    /// Size of the planted fascicle signature (tags on which in-fascicle
    /// cancer libraries agree tightly) per tissue.
    pub fascicle_signature_size: usize,
    /// Fraction of each tissue's cancerous libraries placed inside the
    /// planted fascicle.
    pub fascicle_fraction: f64,
    /// Range of per-library sequencing depth (total tag count), inclusive.
    pub depth_range: (u64, u64),
    /// Fraction of each library's total count contributed by frequency-1
    /// sequencing-error tags (§4.2 estimates ~10–20 %).
    pub error_count_fraction: f64,
    /// Named markers to plant.
    pub markers: Vec<MarkerGene>,
    /// Multiplier applied to differential genes in cancerous libraries
    /// (up-regulated genes ×f, down-regulated ×1/f).
    pub cancer_fold_change: f64,
    /// Relative noise (coefficient of variation) on library expression
    /// outside the fascicle; in-fascicle signature tags get a tenth of it.
    pub noise_cv: f64,
    /// Fraction of a tissue gene's home-level expressed in *foreign*
    /// tissues. SAGE only counts present transcripts, so this is near zero
    /// in reality; a small value emulates sample cross-contamination.
    pub foreign_leak: f64,
}

impl GeneratorConfig {
    /// The three markers of the thesis's case-study figures, planted in
    /// brain tissue.
    pub fn thesis_markers() -> Vec<MarkerGene> {
        vec![
            // Figure 4.2: positive gap — higher in cancer-in-fascicle (~275)
            // than normal (~100).
            MarkerGene {
                gene: "RIBOSOMAL PROTEIN L12".to_string(),
                tissue: TissueType::Brain,
                mean_cancer_in_fascicle: 275.0,
                mean_cancer_outside: 180.0,
                mean_normal: 100.0,
            },
            // Figure 4.3: negative gap — near zero in cancer-in-fascicle,
            // ~90 in normal.
            MarkerGene {
                gene: "ALPHA TUBULIN".to_string(),
                tissue: TissueType::Brain,
                mean_cancer_in_fascicle: 2.0,
                mean_cancer_outside: 35.0,
                mean_normal: 90.0,
            },
            // Figure 4.11: lower inside the fascicle than outside it
            // (outside average ~11).
            MarkerGene {
                gene: "ADP PROTEIN".to_string(),
                tissue: TissueType::Brain,
                mean_cancer_in_fascicle: 1.0,
                mean_cancer_outside: 11.0,
                mean_normal: 9.0,
            },
        ]
    }

    /// A small, fast corpus for tests and examples: brain + breast + colon,
    /// 21 libraries, ~1,500 genes.
    pub fn demo(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            seed,
            tissues: vec![
                TissueConfig {
                    tissue: TissueType::Brain,
                    n_cancer: 6,
                    n_normal: 4,
                    cell_line_fraction: 0.3,
                },
                TissueConfig {
                    tissue: TissueType::Breast,
                    n_cancer: 4,
                    n_normal: 3,
                    cell_line_fraction: 0.3,
                },
                TissueConfig {
                    tissue: TissueType::Colon,
                    n_cancer: 2,
                    n_normal: 2,
                    cell_line_fraction: 0.3,
                },
            ],
            n_housekeeping_genes: 160,
            // Enough universally cancer-responsive genes that Case 3's
            // two-tissue intersection (each side also requires fascicle
            // compactness) reliably surfaces several.
            n_universal_diff_genes: 60,
            n_tissue_genes: 450,
            n_cancer_diff_genes: 60,
            fascicle_signature_size: 200,
            fascicle_fraction: 0.5,
            // Deep enough that a marker at ~10 counts per 300,000 is
            // representable as a raw count ≥ 1 (Figure 4.11's ADP PROTEIN).
            depth_range: (24_000, 48_000),
            error_count_fraction: 0.18,
            markers: GeneratorConfig::thesis_markers(),
            cancer_fold_change: 4.0,
            noise_cv: 0.18,
            foreign_leak: 0.01,
        }
    }

    /// A corpus shaped like the thesis's data set: nine tissue types,
    /// 100 libraries, tens of thousands of genes, 1k–32k depth. Used by the
    /// bench harness (Tables 3.1/3.2 are computed at n = 60,000 tags).
    pub fn thesis_scale(seed: u64) -> GeneratorConfig {
        let mut tissues = Vec::new();
        // 100 libraries spread over the nine system tissue types, brain
        // heaviest as in the real collection (24 brain libraries).
        let plan: [(TissueType, usize, usize); 9] = [
            (TissueType::Brain, 14, 10),
            (TissueType::Breast, 8, 6),
            (TissueType::Prostate, 7, 5),
            (TissueType::Ovary, 6, 4),
            (TissueType::Colon, 7, 5),
            (TissueType::Pancreas, 5, 4),
            (TissueType::Vascular, 4, 3),
            (TissueType::Skin, 4, 3),
            (TissueType::Kidney, 3, 2),
        ];
        for (tissue, n_cancer, n_normal) in plan {
            tissues.push(TissueConfig {
                tissue,
                n_cancer,
                n_normal,
                cell_line_fraction: 0.35,
            });
        }
        GeneratorConfig {
            seed,
            tissues,
            n_housekeeping_genes: 600,
            n_universal_diff_genes: 80,
            n_tissue_genes: 2_400,
            n_cancer_diff_genes: 300,
            fascicle_signature_size: 900,
            fascicle_fraction: 0.5,
            depth_range: (1_000, 32_000),
            error_count_fraction: 0.18,
            markers: GeneratorConfig::thesis_markers(),
            cancer_fold_change: 4.0,
            noise_cv: 0.18,
            // At 100 libraries the sparse leaked singletons would swamp the
            // planted structure with inter-group compactness noise; keep
            // the leak at trace level, as the SAGE protocol implies.
            foreign_leak: 0.001,
        }
    }
}

/// How a planted gene responds to cancer in its home tissue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancerResponse {
    /// Expressed identically in cancerous and normal tissue.
    Unchanged,
    /// Up-regulated in cancer.
    Up,
    /// Down-regulated in cancer.
    Down,
}

/// One planted gene: the generator's unit of ground truth.
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedGene {
    /// Synthetic gene symbol (`HK0001`, `BRAIN_G0042`, or a marker name).
    pub gene: String,
    /// The tag transcribed from this gene.
    pub tag: Tag,
    /// Home tissue; `None` for housekeeping genes expressed everywhere.
    pub tissue: Option<TissueType>,
    /// Cancer response in the home tissue.
    pub response: CancerResponse,
    /// Whether the tag belongs to the tissue's fascicle signature.
    pub in_fascicle_signature: bool,
    /// Baseline normalized abundance in the home tissue (counts per
    /// 300,000).
    pub base_level: f64,
}

/// Ground truth emitted alongside the corpus, used by tests and the bench
/// harness to verify that analyses recover the planted structure.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    /// Every planted gene.
    pub genes: Vec<PlantedGene>,
    /// Library names inside the planted fascicle, per tissue.
    pub fascicle_members: BTreeMap<String, Vec<String>>,
}

impl GroundTruth {
    /// Tag planted for a named gene, if any.
    pub fn tag_of_gene(&self, gene: &str) -> Option<Tag> {
        self.genes.iter().find(|g| g.gene == gene).map(|g| g.tag)
    }

    /// The planted gene transcribing `tag`, if any (tags map to at most one
    /// gene, as in UNIGENE).
    pub fn gene_of_tag(&self, tag: Tag) -> Option<&PlantedGene> {
        self.genes.iter().find(|g| g.tag == tag)
    }

    /// Names of libraries planted inside the fascicle of `tissue`.
    pub fn fascicle_members_of(&self, tissue: &TissueType) -> &[String] {
        self.fascicle_members
            .get(tissue.name())
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Signature tags of `tissue`'s planted fascicle.
    pub fn signature_tags(&self, tissue: &TissueType) -> Vec<Tag> {
        self.genes
            .iter()
            .filter(|g| g.in_fascicle_signature && g.tissue.as_ref() == Some(tissue))
            .map(|g| g.tag)
            .collect()
    }
}

/// Deterministic generator state.
struct Generator {
    rng: StdRng,
    used_tags: std::collections::HashSet<Tag>,
}

impl Generator {
    fn new(seed: u64) -> Generator {
        Generator {
            rng: StdRng::seed_from_u64(seed),
            used_tags: std::collections::HashSet::new(),
        }
    }

    /// Draw a tag not yet assigned to a gene.
    fn fresh_tag(&mut self) -> Tag {
        loop {
            let code = self.rng.gen_range(0..TAG_SPACE);
            let tag = Tag::from_code(code).expect("in range");
            if self.used_tags.insert(tag) {
                return tag;
            }
        }
    }

    /// Draw a tag that is *not* a gene tag, for sequencing errors.
    fn error_tag(&mut self) -> Tag {
        loop {
            let code = self.rng.gen_range(0..TAG_SPACE);
            let tag = Tag::from_code(code).expect("in range");
            if !self.used_tags.contains(&tag) {
                return tag;
            }
        }
    }

    /// Standard normal via Box–Muller (rand 0.8 without rand_distr).
    fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Multiplicative log-normal noise with coefficient of variation ~cv.
    fn noise(&mut self, cv: f64) -> f64 {
        if cv <= 0.0 {
            return 1.0;
        }
        let sigma = (1.0 + cv * cv).ln().sqrt();
        let mu = -0.5 * sigma * sigma;
        (mu + sigma * self.std_normal()).exp()
    }

    /// Poisson sample: Knuth's method for small means, normal
    /// approximation for large ones. SAGE tag counts are Poisson draws
    /// from the transcript pool, which is what gives low-abundance tags
    /// their occasional count-2 observations (the §4.2 cleaning
    /// ambiguity).
    fn poisson(&mut self, lambda: f64) -> u32 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda < 30.0 {
            let limit = (-lambda).exp();
            let mut product: f64 = self.rng.gen_range(0.0..1.0);
            let mut count = 0u32;
            while product > limit {
                product *= self.rng.gen_range(0.0..1.0f64);
                count += 1;
            }
            count
        } else {
            let sample = lambda + lambda.sqrt() * self.std_normal();
            sample.round().max(0.0) as u32
        }
    }

    /// Heavy-tailed baseline abundance: a few hundred counts for common
    /// transcripts, single digits for rare ones.
    fn base_level(&mut self) -> f64 {
        // log-uniform between 1 and ~400 counts per 300k.
        let log = self.rng.gen_range(0.0..=1.0f64) * 400.0f64.ln();
        log.exp()
    }

    /// Abundance for fascicle-signature genes: log-uniform between ~300
    /// and ~3,000 counts per 300k. Signature agreement must be visible
    /// above Poisson shot noise (relative sd ~ 1/sqrt(level)), so the
    /// signature lives in abundant transcripts — as real compact tags do:
    /// a range tolerance can only be meaningfully tight for tags whose
    /// counts are well above the sampling floor.
    fn signature_level(&mut self) -> f64 {
        let lo = 300.0f64.ln();
        let hi = 3000.0f64.ln();
        self.rng.gen_range(lo..hi).exp()
    }
}

/// Generate a corpus and its ground truth from a configuration.
pub fn generate(config: &GeneratorConfig) -> (SageCorpus, GroundTruth) {
    let mut g = Generator::new(config.seed);
    let mut truth = GroundTruth::default();

    // --- plant genes -----------------------------------------------------
    for i in 0..config.n_housekeeping_genes {
        let tag = g.fresh_tag();
        let base_level = g.base_level();
        let response = if i < config.n_universal_diff_genes / 2 {
            CancerResponse::Up
        } else if i < config.n_universal_diff_genes {
            CancerResponse::Down
        } else {
            CancerResponse::Unchanged
        };
        truth.genes.push(PlantedGene {
            gene: format!("HK{i:04}"),
            tag,
            tissue: None,
            response,
            in_fascicle_signature: false,
            base_level,
        });
    }
    for tc in &config.tissues {
        let upper = tc.tissue.name().to_uppercase();
        for i in 0..config.n_tissue_genes {
            let tag = g.fresh_tag();
            let response = if i < config.n_cancer_diff_genes / 2 {
                CancerResponse::Up
            } else if i < config.n_cancer_diff_genes {
                CancerResponse::Down
            } else {
                CancerResponse::Unchanged
            };
            let in_sig = i < config.fascicle_signature_size;
            let base_level = if in_sig {
                g.signature_level()
            } else {
                g.base_level()
            };
            truth.genes.push(PlantedGene {
                gene: format!("{upper}_G{i:04}"),
                tag,
                tissue: Some(tc.tissue.clone()),
                response,
                in_fascicle_signature: in_sig,
                base_level,
            });
        }
        // Markers for this tissue.
        for m in config.markers.iter().filter(|m| m.tissue == tc.tissue) {
            let tag = g.fresh_tag();
            truth.genes.push(PlantedGene {
                gene: m.gene.clone(),
                tag,
                tissue: Some(tc.tissue.clone()),
                response: CancerResponse::Unchanged, // marker means are explicit
                in_fascicle_signature: false,
                base_level: m.mean_normal,
            });
        }
    }

    // --- build libraries ---------------------------------------------------
    let mut corpus = SageCorpus::new();
    for tc in &config.tissues {
        let n_in_fascicle = ((tc.n_cancer as f64) * config.fascicle_fraction).round() as usize;
        let mut members = Vec::new();
        for k in 0..(tc.n_cancer + tc.n_normal) {
            let cancerous = k < tc.n_cancer;
            let in_fascicle = cancerous && k < n_in_fascicle;
            let state = if cancerous {
                NeoplasticState::Cancerous
            } else {
                NeoplasticState::Normal
            };
            let source = if g.rng.gen_bool(tc.cell_line_fraction) {
                TissueSource::CellLine
            } else {
                TissueSource::BulkTissue
            };
            let name = format!(
                "SAGE_{}_{}{:02}",
                tc.tissue.name(),
                if cancerous { "C" } else { "N" },
                k
            );
            if in_fascicle {
                members.push(name.clone());
            }
            let meta = LibraryMeta {
                name,
                tissue: tc.tissue.clone(),
                state,
                source,
            };
            let lib = synthesize_library(
                &mut g,
                config,
                &truth,
                meta,
                &tc.tissue,
                cancerous,
                in_fascicle,
            );
            corpus.add(lib);
        }
        truth
            .fascicle_members
            .insert(tc.tissue.name().to_string(), members);
    }
    (corpus, truth)
}

/// Expected relative abundance of one *non-marker* planted gene in one
/// library context.
fn expected_level(
    config: &GeneratorConfig,
    gene: &PlantedGene,
    tissue: &TissueType,
    cancerous: bool,
) -> f64 {
    match &gene.tissue {
        None => {
            // Housekeeping: expressed everywhere; universal-diff genes
            // respond to cancer in every tissue.
            let mut level = gene.base_level;
            if cancerous {
                match gene.response {
                    CancerResponse::Up => level *= config.cancer_fold_change,
                    CancerResponse::Down => level /= config.cancer_fold_change,
                    CancerResponse::Unchanged => {}
                }
            }
            level
        }
        Some(home) if home == tissue => {
            let mut level = gene.base_level;
            if cancerous {
                match gene.response {
                    CancerResponse::Up => level *= config.cancer_fold_change,
                    CancerResponse::Down => level /= config.cancer_fold_change,
                    CancerResponse::Unchanged => {}
                }
            }
            level
        }
        // Foreign tissue: SAGE counts a transcript only if it is present,
        // and tissue-specific genes are essentially absent elsewhere
        // (§2.1: most genes are expressed in a single tissue type). The
        // configurable leak emulates cross-contamination.
        Some(_) => gene.base_level * config.foreign_leak,
    }
}

#[allow(clippy::too_many_arguments)]
fn synthesize_library(
    g: &mut Generator,
    config: &GeneratorConfig,
    truth: &GroundTruth,
    meta: LibraryMeta,
    tissue: &TissueType,
    cancerous: bool,
    in_fascicle: bool,
) -> SageLibrary {
    // Fascicle members draw from the upper half of the depth range: a
    // subtype signature is only discoverable in adequately sequenced
    // libraries (shot noise at 1k-tag depth erases any tightness), so the
    // ground truth plants it where the thesis's own advice — remove
    // libraries with "only a very small amount of total tags" — can find
    // it.
    let depth_lo = if in_fascicle {
        config.depth_range.0.midpoint(config.depth_range.1)
    } else {
        config.depth_range.0
    };
    let depth = g.rng.gen_range(depth_lo..=config.depth_range.1);
    let error_total = (depth as f64 * config.error_count_fraction) as u64;
    let gene_total = depth - error_total.min(depth);

    // Expected relative profile over non-marker planted genes.
    let mut expected: Vec<(Tag, f64, bool)> = Vec::with_capacity(truth.genes.len());
    let mut mass = 0.0;
    let is_marker = |name: &str| config.markers.iter().any(|m| m.gene == name);
    for gene in &truth.genes {
        if is_marker(&gene.gene) {
            continue;
        }
        let level = expected_level(config, gene, tissue, cancerous);
        if level > 0.0 {
            expected.push((gene.tag, level, gene.in_fascicle_signature));
            mass += level;
        }
    }

    // Markers carry explicit group means *per 300,000 normalized tags*
    // (crate::clean::MRNAS_PER_CELL). Solve their relative levels against
    // the background mass so that after per-library normalization the
    // marker's expectation lands exactly on its target mean.
    let target_scale = crate::clean::MRNAS_PER_CELL;
    let marker_targets: Vec<(Tag, f64)> = config
        .markers
        .iter()
        .filter(|m| &m.tissue == tissue)
        .filter_map(|m| {
            let tag = truth.tag_of_gene(&m.gene)?;
            let target = if !cancerous {
                m.mean_normal
            } else if in_fascicle {
                m.mean_cancer_in_fascicle
            } else {
                m.mean_cancer_outside
            };
            Some((tag, target))
        })
        .collect();
    let target_sum: f64 = marker_targets.iter().map(|(_, t)| t).sum();
    if mass > 0.0 && target_sum < target_scale {
        for (tag, target) in marker_targets {
            let level = target * mass / (target_scale - target_sum);
            if level > 0.0 {
                expected.push((tag, level, false));
            }
        }
        mass = expected.iter().map(|(_, l, _)| l).sum();
    }

    let mut lib = SageLibrary::new(meta);
    if mass > 0.0 {
        for (tag, level, in_signature) in expected {
            // In-fascicle signature tags agree tightly across the fascicle's
            // libraries (a tenth of the global noise). Every library
            // *outside* the fascicle — cancerous or normal — disagrees
            // strongly on the same tags: the signature is a co-regulation
            // pattern specific to the planted cancer subtype, and the
            // outside disagreement is what makes the fascicle minable at a
            // high compact-attribute threshold (and what stops a maximal
            // fascicle from absorbing outsiders). Everything else
            // fluctuates with the base noise_cv.
            let tight = in_fascicle && in_signature;
            let cv = if tight {
                config.noise_cv * 0.1
            } else if in_signature {
                config.noise_cv * 6.0
            } else {
                config.noise_cv
            };
            let expected_count = gene_total as f64 * level / mass;
            // Biological noise modulates the transcript pool; the sequencer
            // then draws Poisson counts from it.
            let modulated = expected_count * g.noise(cv);
            let count = g.poisson(modulated);
            lib.add(tag, count);
        }
    }

    // Frequency-1 sequencing errors.
    let mut added = 0u64;
    while added < error_total {
        lib.add(g.error_tag(), 1);
        added += 1;
    }
    lib
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clean::{clean, CleaningConfig};

    #[test]
    fn generation_is_deterministic() {
        let config = GeneratorConfig::demo(7);
        let (c1, t1) = generate(&config);
        let (c2, t2) = generate(&config);
        assert_eq!(c1.len(), c2.len());
        assert_eq!(t1.genes, t2.genes);
        for (id, lib) in c1.iter() {
            assert_eq!(lib, c2.library(id));
        }
    }

    #[test]
    fn library_roster_matches_config() {
        let config = GeneratorConfig::demo(7);
        let (corpus, truth) = generate(&config);
        assert_eq!(corpus.len(), 10 + 7 + 4);
        let brain = corpus.libraries_of_tissue(&TissueType::Brain);
        assert_eq!(brain.len(), 10);
        let cancerous = brain
            .iter()
            .filter(|&&id| corpus.meta(id).state == NeoplasticState::Cancerous)
            .count();
        assert_eq!(cancerous, 6);
        assert_eq!(truth.fascicle_members_of(&TissueType::Brain).len(), 3);
    }

    #[test]
    fn error_singletons_dominate_unique_tags() {
        let config = GeneratorConfig::demo(11);
        let (corpus, _) = generate(&config);
        let stats = corpus.stats();
        // The thesis: "more than 80% of the unique tags have a frequency of
        // 1". Our singletons are random over a 4^10 space, so almost all are
        // unique to one library and never recur.
        assert!(
            stats.freq1_fraction() > 0.6,
            "freq-1 fraction {} too low",
            stats.freq1_fraction()
        );
    }

    #[test]
    fn cleaning_removes_error_inflation() {
        let config = GeneratorConfig::demo(13);
        let (corpus, truth) = generate(&config);
        let (matrix, report) = clean(&corpus, &CleaningConfig::default());
        assert!(report.kept_tags < report.raw_union_tags / 2);
        // Every *abundant* housekeeping gene must survive cleaning. (Very
        // rare transcripts — expected count below ~1 per library — can
        // legitimately be indistinguishable from sequencing error, exactly
        // the ambiguity §4.2 discusses.)
        for gene in truth
            .genes
            .iter()
            .filter(|g| g.tissue.is_none() && g.base_level > 50.0)
            .take(20)
        {
            assert!(
                matrix.id_of(gene.tag).is_some(),
                "housekeeping gene {} lost in cleaning",
                gene.gene
            );
        }
    }

    #[test]
    fn markers_reproduce_group_means() {
        let config = GeneratorConfig::demo(17);
        let (corpus, truth) = generate(&config);
        let (matrix, _) = clean(&corpus, &CleaningConfig::default());
        let tag = truth.tag_of_gene("RIBOSOMAL PROTEIN L12").unwrap();
        let tid = matrix.id_of(tag).expect("marker survives cleaning");
        let members = truth.fascicle_members_of(&TissueType::Brain);
        let mut in_fas = Vec::new();
        let mut normal = Vec::new();
        for lib in matrix.library_ids() {
            let meta = matrix.library(lib);
            if meta.tissue != TissueType::Brain {
                continue;
            }
            let v = matrix.value(tid, lib);
            if members.contains(&meta.name) {
                in_fas.push(v);
            } else if meta.state == NeoplasticState::Normal {
                normal.push(v);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mf = mean(&in_fas);
        let mn = mean(&normal);
        // Figure 4.2's shape: in-fascicle ≈ 275, normal ≈ 100.
        assert!(mf > 1.6 * mn, "fascicle {mf} vs normal {mn}");
        assert!((150.0..450.0).contains(&mf), "fascicle mean {mf}");
        assert!((50.0..180.0).contains(&mn), "normal mean {mn}");
    }

    #[test]
    fn signature_tags_are_tight_within_fascicle() {
        let config = GeneratorConfig::demo(19);
        let (corpus, truth) = generate(&config);
        let (matrix, _) = clean(&corpus, &CleaningConfig::default());
        let members = truth.fascicle_members_of(&TissueType::Brain);
        let member_ids: Vec<_> = matrix
            .library_ids()
            .filter(|&l| members.contains(&matrix.library(l).name))
            .collect();
        assert!(member_ids.len() >= 2);
        let outsider_ids: Vec<_> = matrix
            .library_ids()
            .filter(|&l| {
                let m = matrix.library(l);
                m.tissue == TissueType::Brain
                    && m.state == NeoplasticState::Cancerous
                    && !members.contains(&m.name)
            })
            .collect();
        assert!(!outsider_ids.is_empty());
        // Within the fascicle, signature tags carry a tenth of the noise;
        // outside it they are scrambled (×6 noise). After Poisson count
        // sampling, absolute tightness is limited by √λ shot noise, but the
        // in-fascicle spread must still be systematically smaller than the
        // spread over all cancerous libraries of the tissue.
        let spread = |tid: crate::tag::TagId, ids: &[crate::library::LibraryId]| -> f64 {
            let vals: Vec<f64> = ids.iter().map(|&l| matrix.value(tid, l)).collect();
            vals.iter().cloned().fold(f64::MIN, f64::max)
                - vals.iter().cloned().fold(f64::MAX, f64::min)
        };
        let all_cancer: Vec<crate::library::LibraryId> =
            member_ids.iter().chain(&outsider_ids).copied().collect();
        let sig = truth.signature_tags(&TissueType::Brain);
        let mut tighter = 0usize;
        let mut total = 0usize;
        for tag in sig {
            let Some(tid) = matrix.id_of(tag) else {
                continue;
            };
            let mean = member_ids
                .iter()
                .map(|&l| matrix.value(tid, l))
                .sum::<f64>()
                / member_ids.len() as f64;
            if mean < 30.0 {
                continue; // shot noise dominates below this level
            }
            total += 1;
            if spread(tid, &member_ids) < spread(tid, &all_cancer) {
                tighter += 1;
            }
        }
        assert!(total > 20, "too few expressed signature tags: {total}");
        assert!(
            tighter as f64 / total as f64 > 0.75,
            "only {tighter}/{total} signature tags tighter inside the fascicle"
        );
    }
}
