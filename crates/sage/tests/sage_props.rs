//! Property-based tests for the SAGE substrate: I/O round-trips and
//! cleaning-pipeline invariants.

use proptest::prelude::*;

use gea_sage::clean::{clean, CleaningConfig};
use gea_sage::corpus::{library_meta, SageCorpus};
use gea_sage::io::{
    read_corpus_binary, read_library_text, write_corpus_binary, write_library_text,
};
use gea_sage::library::{NeoplasticState, SageLibrary, TissueSource};
use gea_sage::tag::{Tag, TAG_SPACE};
use gea_sage::TissueType;

fn arbitrary_library(name: String, pairs: Vec<(u32, u32)>) -> SageLibrary {
    SageLibrary::from_counts(
        library_meta(
            &name,
            TissueType::Brain,
            NeoplasticState::Cancerous,
            TissueSource::BulkTissue,
        ),
        pairs
            .into_iter()
            .map(|(code, count)| (Tag::from_code(code % TAG_SPACE).unwrap(), count % 500)),
    )
}

fn corpus_strategy() -> impl Strategy<Value = SageCorpus> {
    prop::collection::vec(
        prop::collection::vec((0u32..10_000, 0u32..500), 0..40),
        1..6,
    )
    .prop_map(|libs| {
        let mut corpus = SageCorpus::new();
        for (i, pairs) in libs.into_iter().enumerate() {
            corpus.add(arbitrary_library(format!("L{i}"), pairs));
        }
        corpus
    })
}

proptest! {
    #[test]
    fn library_text_roundtrip(pairs in prop::collection::vec((0u32..10_000, 1u32..500), 0..40)) {
        let lib = arbitrary_library("L".to_string(), pairs);
        let mut buf = Vec::new();
        write_library_text(&lib, &mut buf).unwrap();
        let back = read_library_text(lib.meta.clone(), &mut buf.as_slice(), "prop").unwrap();
        prop_assert_eq!(back, lib);
    }

    #[test]
    fn corpus_binary_roundtrip(corpus in corpus_strategy()) {
        let mut buf = Vec::new();
        write_corpus_binary(&corpus, &mut buf).unwrap();
        let back = read_corpus_binary(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(back.len(), corpus.len());
        for (id, lib) in corpus.iter() {
            prop_assert_eq!(back.library(id), lib);
        }
    }

    #[test]
    fn cleaning_keeps_exactly_the_above_tolerance_tags(
        corpus in corpus_strategy(),
        tolerance in 0u32..5,
    ) {
        let (matrix, report) = clean(
            &corpus,
            &CleaningConfig { min_tolerance: tolerance, scale_to: None },
        );
        let union = corpus.tag_union();
        prop_assert_eq!(report.raw_union_tags, union.len());
        prop_assert_eq!(report.kept_tags, matrix.n_tags());
        // Characterization: a tag is kept iff its max count exceeds the
        // tolerance.
        for (_, tag) in union.iter() {
            let kept = matrix.id_of(tag).is_some();
            prop_assert_eq!(kept, corpus.max_count(tag) > tolerance, "tag {}", tag);
        }
        // Kept values equal the raw counts (no normalization requested).
        for tid in matrix.tag_ids() {
            let tag = matrix.tag_of(tid);
            for (lib, _) in corpus.iter() {
                prop_assert_eq!(
                    matrix.value(tid, lib),
                    corpus.library(lib).count(tag) as f64
                );
            }
        }
    }

    #[test]
    fn cleaning_is_monotone_in_tolerance(corpus in corpus_strategy()) {
        let kept_at = |tol: u32| {
            clean(&corpus, &CleaningConfig { min_tolerance: tol, scale_to: None })
                .1
                .kept_tags
        };
        let mut prev = usize::MAX;
        for tol in 0..4 {
            let kept = kept_at(tol);
            prop_assert!(kept <= prev, "tolerance {tol}: {kept} > {prev}");
            prev = kept;
        }
    }

    #[test]
    fn normalization_hits_the_target(corpus in corpus_strategy()) {
        let (matrix, _) = clean(
            &corpus,
            &CleaningConfig { min_tolerance: 0, scale_to: Some(10_000.0) },
        );
        for lib in matrix.library_ids() {
            let total = matrix.library_total(lib);
            // Libraries whose every tag was removed stay at zero.
            prop_assert!(
                total.abs() < 1e-9 || (total - 10_000.0).abs() < 1e-6,
                "library {lib} total {total}"
            );
        }
    }

    #[test]
    fn corpus_stats_are_consistent(corpus in corpus_strategy()) {
        let stats = corpus.stats();
        prop_assert_eq!(stats.libraries, corpus.len());
        prop_assert_eq!(stats.per_library.len(), corpus.len());
        prop_assert!(stats.union_tags_max_freq1 <= stats.union_tags);
        let f = stats.freq1_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
        for (i, ls) in stats.per_library.iter().enumerate() {
            let lib = corpus.library(gea_sage::LibraryId(i as u32));
            prop_assert_eq!(ls.unique_tags, lib.unique_tags());
            prop_assert_eq!(ls.total_tags, lib.total_tags());
            prop_assert!(ls.freq1_tags <= ls.unique_tags);
        }
    }
}
