#!/usr/bin/env bash
# CI gate for the GEA workspace. Run from the repo root:
#
#     scripts/ci.sh          # full gate
#     scripts/ci.sh quick    # skip clippy + bench smoke
#
# Steps: release build, workspace tests, formatting, lints, and a bench
# smoke (the loopback server integration test under --release, which
# exercises the mine -> gap -> topgap pipeline end to end over TCP).

set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-full}"

step() { printf '\n== %s ==\n' "$*"; }

step "cargo build --release --workspace"
cargo build --release --workspace

step "cargo test -q --workspace"
cargo test -q --workspace

# Static analysis over the checked-in example scripts: the runnable case
# study must lint clean, and the deliberately ill-typed fixture must be
# rejected — so the checker's gate provably fires in both directions.
step "gea-check lint: example GQL scripts"
./target/release/gea-cli --check examples/scripts/brain_case_study.gql
./target/release/gea-cli --check examples/scripts/mine_backends.gql
./target/release/gea-cli --check examples/scripts/optimizer_demo.gql
if ./target/release/gea-cli --check examples/scripts/ill_typed.gql; then
    echo "ill_typed.gql passed the checker but must be rejected" >&2
    exit 1
fi

# The --fix rewriter, pinned byte-for-byte: repairing the dirty fixture
# must reproduce the committed golden exactly, and running it on an
# already-clean script must leave the file untouched.
step "gea-check --fix: dirty fixture matches golden, clean script untouched"
mkdir -p target/fix-gate
cp examples/scripts/fix_dirty.gql target/fix-gate/fix_dirty.gql
./target/release/gea-cli --check target/fix-gate/fix_dirty.gql --fix
diff -u examples/scripts/fix_dirty.golden.gql target/fix-gate/fix_dirty.gql
cp examples/scripts/brain_case_study.gql target/fix-gate/clean.gql
./target/release/gea-cli --check target/fix-gate/clean.gql --fix
cmp examples/scripts/brain_case_study.gql target/fix-gate/clean.gql

# Every well-typed example script must also survive the optimizer's
# planner (syntactic canonicalization + rewrite detection, no session),
# and the demo script's plan must name every shipped rule — so a rule
# that silently stops firing breaks the gate, not just the docs.
step "gea-opt plan: example GQL scripts"
for script in examples/scripts/*.gql; do
    [ "$script" = "examples/scripts/ill_typed.gql" ] && continue
    ./target/release/gea-cli --plan "$script" > /dev/null
done
demo_plan="$(./target/release/gea-cli --plan examples/scripts/optimizer_demo.gql)"
echo "$demo_plan"
for rule in self-union-intersect self-intersect-double self-minus-empty \
            fuse-gap-topgap fuse-populate-select populate-access-path; do
    if ! grep -q "$rule" <<< "$demo_plan"; then
        echo "optimizer_demo.gql plan no longer fires rule '$rule'" >&2
        exit 1
    fi
done

# Kick-tires tier of the rule audit: every shipped rewrite rule proved
# observationally equivalent to literal serial execution (wire replies +
# lineage) on the pinned shard/thread grid, and every tombstoned
# non-rule proved still refuted. The nightly lane runs the full
# enumeration; this tier keeps the oracle itself from rotting.
step "gea-opt rule audit (kick-tires)"
./target/release/gea-opt-audit --kick-tires

# The gea-exec byte-identity contract, property-tested over randomized
# corpora for every pinned shard/thread combination — including the
# isa/simplex mining-backend drivers — plus the backend subsystem's
# end-to-end suite (engine routing, `with fascicles` sugar equivalence,
# provenance through save/spill/load). Runs as part of the workspace
# suite too; the explicit step keeps a determinism regression from
# hiding inside a long test log.
step "sharded-execution determinism property suite"
cargo test -q --test exec_determinism --test mine_backends

# Kick-tires tier of the hot-path kernel bench: the aggregate and
# populate perf trajectories (scalar reference -> blocked kernel ->
# sharded driver) re-verified bit-identical on a seconds-scale corpus.
# No timing gate — wall times on a loaded CI host prove nothing; the
# nightly lane runs the full tier and records the numbers.
step "hot-path kernel identity (kick-tires)"
cargo run --release -p gea-bench --bin hotpath -- --kick-tires

# The distributed front end's byte-identity gate: a 2-backend loopback
# router fleet replays a synthetic workload covering every routed verb
# class plus the example scripts, and every reply must match a direct
# single-server run byte for byte. Exits non-zero on any divergence.
step "router loopback smoke: 2 backends byte-identical to a single server"
cargo run --release -p gea-bench --bin router -- --smoke

# Hot-path invariants: unwrap()/expect( stays within the per-file budget
# in scripts/lint-allowlist.txt (ratcheted both ways), and every
# lock-order comment quotes the canonical line in registry.rs verbatim.
step "invariant lints (panic budget + lock-order sync)"
scripts/lint-invariants.sh

step "cargo fmt --all --check"
cargo fmt --all --check

if [ "$mode" != "quick" ]; then
    step "cargo clippy --workspace --all-targets -- -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings

    step "bench smoke: server loopback pipeline (release)"
    cargo test --release --test server_smoke -- --nocapture
fi

printf '\nCI gate passed (%s).\n' "$mode"
