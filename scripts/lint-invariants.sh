#!/usr/bin/env bash
# Invariant lints for the server/router hot paths, run by scripts/ci.sh.
#
# 1. unwrap()/expect( ban in non-test code under crates/server/src and
#    crates/router/src. A worker thread that panics takes its connection
#    (and possibly a poisoned lock) with it, so every panic site on the
#    request path must be deliberate and budgeted in
#    scripts/lint-allowlist.txt. The budget ratchets both ways: counts
#    above it fail (new panic site), counts below it fail too (lower the
#    budget so removed sites cannot creep back).
#
# 2. Lock-ordering comments stay in sync with the registry. The canonical
#    "LOCK ORDER:" line lives in crates/server/src/registry.rs; every
#    other occurrence in the server/router sources must quote it verbatim,
#    so the discipline documented at an acquisition site can never drift
#    from the one the registry implements.

set -euo pipefail
cd "$(dirname "$0")/.."

allowlist="scripts/lint-allowlist.txt"
fail=0

# Count unwrap()/expect( occurrences before the first #[cfg(test)].
nontest_panics() {
    awk '
        /#\[cfg\(test\)\]/ { exit }
        {
            n = gsub(/unwrap\(\)/, "")
            n += gsub(/expect\(/, "")
            c += n
        }
        END { print c + 0 }
    ' "$1"
}

budget_for() {
    awk -v f="$1" '$1 !~ /^#/ && $2 == f { print $1; found = 1 }
                   END { if (!found) print "-" }' "$allowlist"
}

for file in crates/server/src/*.rs crates/server/src/bin/*.rs crates/router/src/*.rs; do
    n="$(nontest_panics "$file")"
    budget="$(budget_for "$file")"
    if [ "$budget" = "-" ]; then
        if [ "$n" -gt 0 ]; then
            echo "lint: $file has $n unwrap()/expect( site(s) in non-test code but no budget in $allowlist" >&2
            fail=1
        fi
    elif [ "$n" -gt "$budget" ]; then
        echo "lint: $file has $n unwrap()/expect( site(s) in non-test code, budget is $budget — remove the new panic site" >&2
        fail=1
    elif [ "$n" -lt "$budget" ]; then
        echo "lint: $file is down to $n unwrap()/expect( site(s), budget is $budget — ratchet $allowlist down" >&2
        fail=1
    fi
done

# Every budgeted file must still exist (a rename would silently retire
# its budget).
while read -r budget file; do
    case "$budget" in '#'*|'') continue ;; esac
    if [ ! -f "$file" ]; then
        echo "lint: $allowlist budgets missing file $file" >&2
        fail=1
    fi
done < "$allowlist"

# Lock-order comments: one canonical line in registry.rs, quoted verbatim
# everywhere else it appears.
canon="$(grep -h 'LOCK ORDER:' crates/server/src/registry.rs | sed 's|^.*LOCK ORDER:|LOCK ORDER:|' | sed 's/[[:space:]]*$//')"
if [ "$(printf '%s\n' "$canon" | wc -l)" -ne 1 ] || [ -z "$canon" ]; then
    echo "lint: crates/server/src/registry.rs must contain exactly one canonical 'LOCK ORDER:' line" >&2
    exit 1
fi
refs=0
for file in crates/server/src/*.rs crates/server/src/bin/*.rs crates/router/src/*.rs; do
    [ "$file" = "crates/server/src/registry.rs" ] && continue
    while IFS= read -r line; do
        refs=$((refs + 1))
        norm="$(printf '%s' "$line" | sed 's|^.*LOCK ORDER:|LOCK ORDER:|' | sed 's/[[:space:]]*$//')"
        if [ "$norm" != "$canon" ]; then
            echo "lint: $file quotes a stale lock order:" >&2
            echo "    found:     $norm" >&2
            echo "    canonical: $canon" >&2
            fail=1
        fi
    done < <(grep -h 'LOCK ORDER:' "$file" || true)
done
if [ "$refs" -eq 0 ]; then
    echo "lint: no file outside registry.rs quotes the canonical 'LOCK ORDER:' line" >&2
    fail=1
fi

if [ "$fail" -ne 0 ]; then
    echo "invariant lints FAILED" >&2
    exit 1
fi
echo "invariant lints passed ($refs lock-order reference(s), $(grep -c '^[0-9]' "$allowlist") budgeted file(s))"
