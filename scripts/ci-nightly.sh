#!/usr/bin/env bash
# Nightly/perf CI lane for the GEA workspace. Run from the repo root:
#
#     scripts/ci-nightly.sh
#
# Runs everything tier-1 skips because of wall-clock cost: the
# `#[ignore]`d thesis-scale pipeline (a multi-minute corpus at the
# thesis's published scale) and the full cache-transparency battery
# under --release. Assumes scripts/ci.sh already passed; this lane is
# additive, not a substitute.

set -euo pipefail
cd "$(dirname "$0")/.."

step() { printf '\n== %s ==\n' "$*"; }

step "cargo build --release --workspace"
cargo build --release --workspace

step "thesis-scale pipeline, serial + sharded (ignored tier-1, release)"
# Includes thesis_scale_pipeline_sharded: the sharded executor run side
# by side with a serial session over the identical corpus, byte-identical
# at full scale.
cargo test --release --test thesis_scale -- --ignored --nocapture

step "cache transparency battery (release)"
cargo test --release --test server_cache -- --nocapture

step "spill transparency battery (release)"
cargo test --release --test server_spill -- --nocapture
cargo test --release --test server_spill -- --ignored --nocapture

step "serial-vs-sharded speedup (release) -> BENCH_parallel.json"
# Thesis-scale corpus, 4-way executor. Also re-verifies byte identity on
# the timed runs and exits non-zero on a determinism failure. The JSON
# records host_parallelism: ~1x speedup is expected on single-core
# runners and is not a failure.
cargo run --release -p gea-bench --bin parallel -- --threads 4

step "hot-path kernel trajectories (release) -> BENCH_aggregate.json, BENCH_populate.json"
# Full tier: thesis-scale corpus, interleaved repetitions, one JSON per
# operator recording the scalar-reference -> blocked -> sharded
# trajectory with its bit-identity verdicts.
cargo run --release -p gea-bench --bin hotpath -- --full --threads 4

step "mining-backend comparison (release) -> BENCH_mine_backends.json"
# Every registry backend (fascicles/isa/simplex), serial vs its sharded
# driver on the same corpus. Exits non-zero if any backend's sharded
# output diverges from serial.
cargo run --release -p gea-bench --bin mine_backends -- --threads 4

step "optimizer rule audit, full enumeration (release)"
# The complete small-term enumeration over three randomized corpora on
# the full shard/thread grid: every shipped rule byte-identical to
# serial at the wire, every tombstoned non-rule still refuted.
GEA_OPT_AUDIT=full cargo run --release --bin gea-opt-audit

step "router experiment (release) -> BENCH_router.json"
# gea-router over 1/2/3 loopback backends vs a direct single server:
# per-op-class latency and throughput, with every router arm's workload
# and example-script transcripts byte-identity-gated against the direct
# reference. Exits non-zero on any divergence. Scatter speedups need
# multi-core runners; the JSON records host_parallelism for that reason.
cargo run --release -p gea-bench --bin router

step "optimizer experiment (release) -> BENCH_optimizer.json"
# Rewrites fired x cache hit-rate delta from key unification x
# end-to-end latency on the brain case study and the optimizer demo.
# Exits non-zero if any optimized transcript diverges from serial.
cargo run --release -p gea-bench --bin optimizer

step "static-analysis latency (release) -> BENCH_check.json"
# The full gea-check pass (diagnostics + abstract cost interpretation)
# timed over every example script — the latency the server's pre-flight
# gate and `--max-cost` budget check add to each request. Re-verifies
# the analyzer's clean/dirty verdicts on the fixtures while timing, so
# a broken analyzer cannot post a fast number.
cargo run --release -p gea-bench --bin check

step "archive BENCH_*.json"
# Keep a dated copy of every emitted measurement so the perf trajectory
# across nightlies stays reconstructible from the working tree.
mkdir -p bench-archive/"$(date +%F)"
cp BENCH_*.json bench-archive/"$(date +%F)"/

printf '\nNightly lane passed.\n'

# ----- sanitizer / interpreter lanes (need extra nightly components; -----
# ----- each skips gracefully when its toolchain isn't installed)     -----

host_target="$(rustc -vV | sed -n 's/^host: //p')"

step "ThreadSanitizer: server concurrency suite (nightly, -Zsanitizer=thread)"
# The registry/cache/eviction machinery is the raciest code in the tree;
# TSan needs a std rebuilt with instrumentation, hence nightly + rust-src.
if rustup toolchain list 2>/dev/null | grep -q '^nightly' \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q '^rust-src (installed)$'; then
    RUSTFLAGS="-Zsanitizer=thread" \
        cargo +nightly test -Zbuild-std --target "$host_target" \
        --test server_smoke --test server_cache
else
    echo "skipping: nightly toolchain with rust-src not installed"
fi

step "Miri: session persistence decoder (nightly)"
# The save/load codec does the tree's manual byte-level decoding; run its
# unit battery under Miri to pin down undefined behavior, not just wrong
# answers.
if cargo +nightly miri --version >/dev/null 2>&1; then
    cargo +nightly miri test -p gea-core persist
else
    echo "skipping: cargo miri not installed"
fi

printf '\nSanitizer lanes done (or skipped).\n'
