//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` cannot be fetched. GEA only needs a deterministic,
//! seedable PRNG (every call site is `StdRng::seed_from_u64`), uniform
//! sampling over integer and float ranges, Bernoulli draws, and Fisher–Yates
//! shuffling — so this crate implements exactly that subset with the same
//! module layout and trait names (`Rng`, `SeedableRng`, `rngs::StdRng`,
//! `seq::SliceRandom`). The generator is xoshiro256++ seeded via SplitMix64;
//! streams differ from the real crate's ChaCha-based `StdRng`, which is fine
//! because GEA treats the RNG as an arbitrary deterministic source.

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed (SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a range (`gen_range` argument).
pub trait SampleRange<T> {
    /// Draw one value.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start + (rng.next_u64() as u128 % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as u128).wrapping_sub(lo as u128) + 1;
                lo + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// A uniform draw in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let u = unit_f64(rng) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// User-facing sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// The bundled generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — a fast, high-quality, seedable generator. Stands in
    /// for `rand`'s ChaCha12-based `StdRng` (different stream, same role).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state is the one forbidden xoshiro state; SplitMix64
            // cannot produce four zero words from any seed, but be safe.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias of [`StdRng`]; the real crate's `SmallRng` is also xoshiro256++.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
            let i = rng.gen_range(0usize..=4);
            assert!(i <= 4);
            let s = rng.gen_range(-10i64..-2);
            assert!((-10..-2).contains(&s));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    use super::RngCore as _;
}
