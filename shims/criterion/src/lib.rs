//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API surface GEA's benches use — `criterion_group!` /
//! `criterion_main!`, [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, [`Bencher::iter`], [`BenchmarkId`],
//! [`black_box`] — with a simple timing loop instead of criterion's
//! statistics engine: warm up briefly, run `sample_size` timed samples of a
//! calibrated iteration count, and report the fastest sample's ns/iter
//! (minimum-of-samples is the standard low-noise estimator).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Accept (and ignore) command-line configuration, as the real crate's
    /// generated harness does.
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Override the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.sample_size = n.max(2);
        self
    }

    /// Override the per-benchmark time budget.
    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement_time = d;
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.label(), self.sample_size, self.measurement_time, f);
        self
    }
}

/// A named group sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override the number of timed samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Override the per-benchmark time budget for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let label = format!("{}/{}", self.name, id.label());
        run_benchmark(&label, self.sample_size, self.measurement_time, f);
        self
    }

    /// Run one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (printing nothing extra; per-bench lines already went
    /// to stdout).
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally with a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter-only id (the group name supplies the function).
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (f, Some(p)) if f.is_empty() => p.clone(),
            (f, Some(p)) => format!("{f}/{p}"),
            (f, None) => f.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> BenchmarkId {
        BenchmarkId {
            function: s.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> BenchmarkId {
        BenchmarkId {
            function: s,
            parameter: None,
        }
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] does the timing.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    budget: Duration,
    /// Best observed ns/iter, filled in by `iter`.
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Time `f`: calibrate an iteration count to ~budget/samples per sample,
    /// then record the fastest sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibration: double the iteration count until one sample takes at
        // least 1/10th of the per-sample budget (or a single call is already
        // slow).
        let per_sample = self.budget / self.samples as u32;
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= per_sample / 10 || iters >= (1 << 20) {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        let mut best = f64::INFINITY;
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            best = best.min(ns);
            if Instant::now() > deadline {
                break;
            }
        }
        self.best_ns_per_iter = best;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, samples: usize, budget: Duration, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 0,
        samples,
        budget,
        best_ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if b.best_ns_per_iter.is_nan() {
        println!("bench {label}: no measurement (iter was not called)");
        return;
    }
    let ns = b.best_ns_per_iter;
    let human = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    };
    println!(
        "bench {label}: {human}/iter (best of {} samples x {} iters)",
        samples, b.iters_per_sample
    );
}

/// Define a benchmark group function, as the real crate does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Define `main` running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20));
        let mut group = c.benchmark_group("shim");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 10).label(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(500).label(), "500");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }
}
