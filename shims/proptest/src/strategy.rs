//! Value-generation strategies: the [`Strategy`] trait, range / tuple /
//! pattern-string implementations, and the `prop_map` / `prop_flat_map`
//! combinators. Unlike real proptest there is no shrinking, so a strategy
//! is simply "a recipe for one random value".

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;
use rand::Rng as _;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Derive a second strategy from each generated value and sample it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// `Strategy` is object-safe enough for blanket references.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The [`Strategy::prop_map`] combinator.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_flat_map`] combinator.
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// The [`Strategy::prop_filter`] combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter {:?} rejected 1000 candidates", self.whence);
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// String patterns: a `&str` is a strategy generating strings matching a
/// char-class-with-repetition regex subset — `"[a-zA-Z,\"\\- ]{0,12}"`,
/// `"[a-z]{3,8}"`, or a literal when no class syntax is present.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let (alphabet, lo, hi) =
            parse_pattern(self).unwrap_or_else(|| panic!("unsupported string pattern {self:?}"));
        let len = rng.rng.gen_range(lo..=hi);
        (0..len)
            .map(|_| alphabet[rng.rng.gen_range(0..alphabet.len())])
            .collect()
    }
}

/// Parse `[class]{m,n}` / `[class]{m}` / `[class]` / a literal string into
/// (alphabet, min-len, max-len).
fn parse_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    if chars.peek() != Some(&'[') {
        // A literal: the "alphabet" is the exact sequence; generate it as-is
        // by treating it as a fixed-length strategy over itself.
        let lit: Vec<char> = pattern.chars().collect();
        if lit.is_empty() {
            return Some((vec![], 0, 0));
        }
        // Literal patterns are rare; emit the literal verbatim by using a
        // one-choice alphabet per position is not expressible here, so just
        // reject metacharacter-bearing literals and return the whole string.
        return None;
    }
    chars.next(); // consume '['
    let mut alphabet: Vec<char> = Vec::new();
    loop {
        let c = chars.next()?;
        if c == ']' {
            break;
        }
        let c = if c == '\\' { chars.next()? } else { c };
        // Range `a-z` (a `-` immediately before `]` is a literal).
        if chars.peek() == Some(&'-') {
            let mut ahead = chars.clone();
            ahead.next(); // the '-'
            match ahead.peek() {
                Some(&end) if end != ']' => {
                    chars.next(); // '-'
                    let end = chars.next()?;
                    let end = if end == '\\' { chars.next()? } else { end };
                    for code in (c as u32)..=(end as u32) {
                        alphabet.push(char::from_u32(code)?);
                    }
                    continue;
                }
                _ => {}
            }
        }
        alphabet.push(c);
    }
    if alphabet.is_empty() {
        return None;
    }
    alphabet.sort_unstable();
    alphabet.dedup();
    // Optional repetition suffix.
    let rest: String = chars.collect();
    if rest.is_empty() {
        return Some((alphabet, 1, 1));
    }
    let inner = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match inner.split_once(',') {
        Some((lo, hi)) => (lo.trim().parse().ok()?, hi.trim().parse().ok()?),
        None => {
            let n = inner.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_parser_handles_classes_and_escapes() {
        let (al, lo, hi) = parse_pattern("[a-z]{3,8}").unwrap();
        assert_eq!(al.len(), 26);
        assert_eq!((lo, hi), (3, 8));

        let (al, lo, hi) = parse_pattern("[a-zA-Z,\"\\- ]{0,12}").unwrap();
        assert!(al.contains(&'-') && al.contains(&'"') && al.contains(&' '));
        assert_eq!(al.len(), 26 + 26 + 4);
        assert_eq!((lo, hi), (0, 12));
    }

    #[test]
    fn string_strategy_respects_bounds() {
        let mut rng = TestRng::from_name("string_strategy");
        for _ in 0..200 {
            let s = "[a-z]{3,8}".generate(&mut rng);
            assert!((3..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_name("combinators");
        let even = (0u32..100).prop_map(|v| v * 2);
        for _ in 0..100 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
        }
        let pair = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        for _ in 0..50 {
            let v = pair.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }
}
