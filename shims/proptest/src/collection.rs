//! Collection strategies: `prop::collection::vec`, `btree_set`, `btree_map`.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// A size specification for collection strategies: a fixed length, `m..n`,
/// or `m..=n`.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_inclusive: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        rng.rng.gen_range(self.lo..=self.hi_inclusive)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi_inclusive: *r.end(),
        }
    }
}

/// `vec(element, size)`: a vector of independently generated elements.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `btree_set(element, size)`: distinct elements; duplicates are retried a
/// bounded number of times, so the set may come up short of the sampled size
/// when the element space is tiny (matching real proptest's behavior of not
/// looping forever).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target && attempts < target * 10 + 16 {
            set.insert(self.element.generate(rng));
            attempts += 1;
        }
        set
    }
}

/// `btree_map(key, value, size)`: distinct keys, independent values.
pub fn btree_map<K, V>(key: K, value: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}

/// See [`btree_map`].
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
        let target = self.size.sample(rng);
        let mut map = BTreeMap::new();
        let mut attempts = 0usize;
        while map.len() < target && attempts < target * 10 + 16 {
            map.insert(self.key.generate(rng), self.value.generate(rng));
            attempts += 1;
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_and_elements_in_range() {
        let mut rng = TestRng::from_name("vec");
        let s = vec(0u32..7, 2..5);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
        }
    }

    #[test]
    fn fixed_size_vec() {
        let mut rng = TestRng::from_name("vec_fixed");
        let s = vec(0u32..100, 10usize);
        assert_eq!(s.generate(&mut rng).len(), 10);
    }

    #[test]
    fn btree_set_is_distinct_and_bounded() {
        let mut rng = TestRng::from_name("set");
        let s = btree_set("[a-z]{3,8}", 1..6);
        for _ in 0..100 {
            let set = s.generate(&mut rng);
            assert!((1..6).contains(&set.len()));
        }
        // A tiny element space cannot satisfy a large size; it must still
        // terminate.
        let tiny = btree_set(0u32..2, 5..6);
        let set = tiny.generate(&mut rng);
        assert!(set.len() <= 2);
    }
}
