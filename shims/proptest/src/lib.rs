//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates, so this crate re-implements
//! the subset of proptest that GEA's property suites use: the `proptest!`
//! macro, `prop_assert!` / `prop_assert_eq!` / `prop_assume!`, the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, char-class string patterns (`"[a-z]{3,8}"`),
//! `prop::collection::{vec, btree_set}`, `prop::option::of`, `any::<bool>()`
//! and [`test_runner::ProptestConfig`].
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! inputs but is not minimized) and deterministic seeding derived from the
//! test name, so failures reproduce across runs.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary;
pub mod collection;
pub mod option;

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Run one property as a `#[test]`: generate inputs, run the body, panic
/// with the offending inputs on the first failure.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (
        @with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                $crate::test_runner::run_cases(
                    stringify!($name),
                    &config,
                    |__rng| {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        // Render the inputs up front: the body may move them,
                        // and they must be reportable if the case fails.
                        let mut __inputs = ::std::string::String::new();
                        $(
                            __inputs.push_str(&$crate::test_runner::render_input(
                                stringify!($arg),
                                &format!("{:?}", &$arg),
                            ));
                        )+
                        let __case = || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        };
                        __case().map_err(|e| match e {
                            $crate::test_runner::TestCaseError::Fail(msg) => {
                                $crate::test_runner::TestCaseError::Fail(
                                    format!("{msg}\ninputs:{__inputs}")
                                )
                            }
                            reject => reject,
                        })
                    },
                );
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ..)`: fail the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)`: fail the case when the sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

/// `prop_assert_ne!(a, b)`: fail the case when the sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// `prop_assume!(cond)`: discard the case without failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}
