//! `any::<T>()` — canonical strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy value.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (use as `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy yielding uniform values of a primitive type.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.rng.gen_bool(0.5)
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(std::marker::PhantomData)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngCore as _;
                rng.rng.next_u64() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = TestRng::from_name("any_bool");
        let s = any::<bool>();
        let trues = (0..200).filter(|_| s.generate(&mut rng)).count();
        assert!((50..150).contains(&trues), "got {trues}");
    }
}
