//! `prop::option::of` — optional values.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// `of(inner)`: `None` about a quarter of the time, otherwise `Some` of a
/// generated inner value (the real crate's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.rng.gen_bool(0.25) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn yields_both_variants() {
        let mut rng = TestRng::from_name("option");
        let s = of(0u32..10);
        let nones = (0..400).filter(|_| s.generate(&mut rng).is_none()).count();
        assert!((40..200).contains(&nones), "got {nones}");
    }
}
