//! The case-running machinery behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng as _;

/// Per-test configuration. Only `cases` is interpreted; the rest of the real
/// crate's knobs are absent.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) cases tolerated before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 128,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property is false for these inputs.
    Fail(String),
    /// `prop_assume!` filtered the inputs out; try another case.
    Reject(String),
}

impl TestCaseError {
    /// Construct a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Construct a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// The generator handed to strategies. Seeded deterministically from the
/// test name so failures reproduce run-over-run.
pub struct TestRng {
    /// The underlying PRNG (public so strategies can sample directly).
    pub rng: StdRng,
}

impl TestRng {
    /// Derive a generator from a test name (FNV-1a over the bytes).
    pub fn from_name(name: &str) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(hash),
        }
    }
}

/// Drive `case` until `config.cases` successes, a failure, or the reject
/// budget is exhausted. Panics (like `assert!`) on failure so the harness
/// reports the test as failed.
pub fn run_cases(
    name: &str,
    config: &ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    let mut rng = TestRng::from_name(name);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut case_no = 0u64;
    while passed < config.cases {
        case_no += 1;
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "property {name}: gave up after {rejected} rejected cases \
                         ({passed}/{} passed)",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property {name} failed at case #{case_no}: {msg}");
            }
        }
    }
}

/// Render one named input for a failure report, truncating huge values.
pub fn render_input(name: &str, debug: &str) -> String {
    const LIMIT: usize = 4096;
    if debug.len() > LIMIT {
        let cut = debug
            .char_indices()
            .take_while(|(i, _)| *i < LIMIT)
            .last()
            .map(|(i, c)| i + c.len_utf8())
            .unwrap_or(0);
        format!("\n  {name} = {}… ({} bytes)", &debug[..cut], debug.len())
    } else {
        format!("\n  {name} = {debug}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_the_requested_cases() {
        let mut n = 0;
        run_cases("count", &ProptestConfig::with_cases(10), |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failure_panics() {
        run_cases("boom", &ProptestConfig::default(), |_| {
            Err(TestCaseError::fail("nope"))
        });
    }

    #[test]
    #[should_panic(expected = "gave up")]
    fn reject_budget_is_finite() {
        run_cases("rejects", &ProptestConfig::default(), |_| {
            Err(TestCaseError::reject("never"))
        });
    }

    #[test]
    fn deterministic_per_name() {
        use rand::RngCore as _;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.rng.next_u64(), b.rng.next_u64());
    }
}
