//! Differential equivalence battery for the optimizer: randomized
//! multi-verb GQL scripts over randomized corpora, executed twice —
//! optimized and `--no-opt` — must produce byte-identical wire output,
//! including the lineage-visible world state afterwards. One battery runs
//! at the batch-pipeline level (where fusion fires), one over two live
//! TCP servers (where single-command rewrites and canonical cache keys
//! fire), and one proves cache-key unification: two algebraically-equal
//! spellings of a command share a single cache entry, with the hit
//! counted.

use std::thread;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gea::cli::Cli;
use gea_server::{GeaClient, Server, ServerConfig};

const ROUNDS_PER_CORPUS: usize = 6;
const STEPS_PER_ROUND: usize = 10;

fn spawn(optimize: bool, cache_bytes: usize) -> (GeaClient, gea_server::server::ServerHandle) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        lock_timeout: Duration::from_secs(30),
        cache_bytes,
        optimize,
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::spawn(move || server.run().expect("serve"));
    (GeaClient::connect(addr).expect("connect"), handle)
}

/// One randomized GQL step. Most draws yield a single command; the fusion
/// draws yield adjacent pairs so the batch optimizer has something to
/// fuse. Errors (name conflicts, inapplicable queries, unknown names) are
/// drawn on purpose — equivalence covers error replies too.
fn random_steps(rng: &mut SmallRng, round: usize, step: usize) -> Vec<String> {
    let ops = ["union", "intersect", "difference"];
    let op = ops[rng.gen_range(0..ops.len())];
    let q = rng.gen_range(1..14usize);
    let n = format!("t{round}_{step}");
    match rng.gen_range(0..10u32) {
        // Self-compares: the three single-command rewrite rules, queries
        // drawn from the full menu (difference + 6..13 errs EQUERY).
        0 | 1 => vec![format!("compare {n} ga ga {op} {q}")],
        2 => vec![format!("compare {n} gb gb {op} {q}")],
        // Two-operand compare: must never be rewritten (commutation is
        // tombstoned).
        3 => vec![format!("compare {n} ga gb {op} {q}")],
        // Fusion pair: gap + topgap on the fresh name.
        4 | 5 => vec![
            format!("gap {n} f_1CancerFasTbl f_1NormalTable"),
            format!("topgap {n} {}", rng.gen_range(1..6usize)),
        ],
        // Fusion pair with a phase-1 conflict: `ga` always exists.
        6 => vec![
            "gap ga f_1CancerFasTbl f_1NormalTable".to_string(),
            format!("topgap ga {}", rng.gen_range(1..4usize)),
        ],
        // World probes.
        7 => vec!["show gap ga 3".to_string()],
        8 => vec!["lineage".to_string()],
        // Unknown-name errors.
        _ => vec![format!("topgap nosuch_{n} 3")],
    }
}

/// The batch-level differential: the same randomized scripts through two
/// interpreters, optimizer on vs off, on the same corpus. Every reply —
/// including errors and batch truncation points — must match, and so must
/// the lineage afterwards.
#[test]
fn randomized_batch_scripts_match_with_and_without_the_optimizer() {
    for corpus_seed in [42u64, 7] {
        let mut plain = Cli::new();
        plain.set_optimize(false);
        let mut opt = Cli::new();
        let prelude = format!(
            "load-demo {corpus_seed}\n\
             dataset Eb brain\n\
             mine Eb f 50 3 6\n\
             groups f_1\n\
             gap ga f_1CancerFasTbl f_1NormalTable\n\
             gap gb f_1CancerFasTbl f_1CanNotInFasTbl\n"
        );
        assert_eq!(plain.run_script(&prelude), opt.run_script(&prelude));

        let mut rng = SmallRng::seed_from_u64(0x0717_0000 + corpus_seed);
        for round in 0..ROUNDS_PER_CORPUS {
            let mut script = String::new();
            for step in 0..STEPS_PER_ROUND {
                for line in random_steps(&mut rng, round, step) {
                    script.push_str(&line);
                    script.push('\n');
                }
            }
            let want = plain.run_script(&script);
            let got = opt.run_script(&script);
            assert_eq!(want, got, "corpus {corpus_seed} round {round}:\n{script}");
        }
        // World state (the `stats`-visible lineage) agrees at the end.
        assert_eq!(plain.execute("lineage"), opt.execute("lineage"));
        assert_eq!(plain.execute("cleaning"), opt.execute("cleaning"));
    }
}

/// The wire-level differential: the same single-command stream against an
/// optimizing server and a `--no-opt` server. Self-compare rewrites and
/// canonical cache keys are live on one side only; every reply must still
/// match byte-for-byte.
#[test]
fn optimized_server_replies_match_unoptimized_server() {
    let (mut opt, opt_handle) = spawn(true, 8 * 1024 * 1024);
    let (mut plain, plain_handle) = spawn(false, 8 * 1024 * 1024);
    for client in [&mut opt, &mut plain] {
        client.expect_ok("open eq demo 42").expect("open");
        client.expect_ok("dataset Eb brain").expect("dataset");
        client.expect_ok("mine Eb f 50 3 6").expect("mine");
        client.expect_ok("groups f_1").expect("groups");
        client
            .expect_ok("gap ga f_1CancerFasTbl f_1NormalTable")
            .expect("gap ga");
        client
            .expect_ok("gap gb f_1CancerFasTbl f_1CanNotInFasTbl")
            .expect("gap gb");
    }

    let mut rng = SmallRng::seed_from_u64(0xEC_41);
    let mut compared = 0usize;
    for round in 0..4 {
        for step in 0..STEPS_PER_ROUND {
            for line in random_steps(&mut rng, round, step) {
                let a = opt.request(&line).expect("opt transport");
                let b = plain.request(&line).expect("plain transport");
                assert_eq!(a, b, "replies diverged on {line:?}");
                compared += 1;
            }
        }
    }
    assert!(compared > 0);
    assert_eq!(
        opt.expect_ok("lineage").unwrap(),
        plain.expect_ok("lineage").unwrap()
    );
    // The comparison is only meaningful if rewrites actually fired.
    let stats = opt.expect_ok("stats").expect("stats");
    let rewrites: u64 = counter(&stats, "opt_rewrites");
    assert!(rewrites > 0, "no rewrites fired on the optimizing server");
    let plain_stats = plain.expect_ok("stats").expect("stats");
    assert_eq!(counter(&plain_stats, "opt_rewrites"), 0);

    opt_handle.shutdown();
    plain_handle.shutdown();
}

fn counter(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("no {key} line in {stats:?}"))
        .parse()
        .unwrap()
}

/// Cache-key unification: `check compare c ga ga union 2` and
/// `check compare c ga ga intersect 2` are algebraically equal (the
/// self-union rewrite), so on an optimizing server the second spelling
/// must be served from the first one's cache entry — one stored entry,
/// one hit, and the unification counted in `stats`.
#[test]
fn algebraically_equal_commands_share_one_cache_entry() {
    let union_spelling = "check compare c ga ga union 2";
    let intersect_spelling = "check compare c ga ga intersect 2";

    // Ground truth first: an unoptimized server answers both spellings
    // byte-identically, so serving one from the other's entry is sound.
    let (mut plain, plain_handle) = spawn(false, 8 * 1024 * 1024);
    plain.expect_ok("open truth demo 42").expect("open");
    let a = plain.expect_ok(union_spelling).expect("union check");
    let b = plain
        .expect_ok(intersect_spelling)
        .expect("intersect check");
    assert_eq!(a, b, "spellings are not observationally equal");
    // Without the optimizer the two spellings are distinct cache keys:
    // two misses, no unification.
    let stats = plain.expect_ok("stats").expect("stats");
    assert_eq!(counter(&stats, "cache_hits"), 0);
    assert_eq!(counter(&stats, "opt_key_unified"), 0);
    plain_handle.shutdown();

    let (mut opt, opt_handle) = spawn(true, 8 * 1024 * 1024);
    opt.expect_ok("open eq demo 42").expect("open");
    let hits0 = counter(&opt.expect_ok("stats").unwrap(), "cache_hits");
    let first = opt.expect_ok(union_spelling).expect("first spelling");
    let misses_after_first = counter(&opt.expect_ok("stats").unwrap(), "cache_misses");
    let second = opt.expect_ok(intersect_spelling).expect("second spelling");
    assert_eq!(first, second);
    assert_eq!(first, a, "optimizing server disagrees with ground truth");
    let stats = opt.expect_ok("stats").expect("stats");
    assert_eq!(
        counter(&stats, "cache_hits"),
        hits0 + 1,
        "second spelling did not hit the first one's entry: {stats}"
    );
    assert_eq!(
        counter(&stats, "cache_misses"),
        misses_after_first,
        "second spelling missed — keys were not unified: {stats}"
    );
    assert!(
        counter(&stats, "opt_key_unified") >= 1,
        "unification not counted: {stats}"
    );
    opt_handle.shutdown();
}
