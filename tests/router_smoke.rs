//! Degradation-path smoke tests for `gea-router`: a backend killed under
//! the router surfaces one coded `ERR EBACKEND` (no hang, no partial
//! reply) and leaves every replica unmutated; a restarted backend is
//! re-admitted by the health thread only after a full session resync, and
//! participates in scatters again with byte-identical replica state.

use std::net::SocketAddr;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use gea_router::{Router, RouterConfig, RouterHandle};
use gea_server::{GeaClient, Server, ServerConfig, ServerHandle};

fn spawn_backend_at(addr: &str) -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: addr.to_string(),
        lock_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("bind backend");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve backend"));
    (addr, handle, join)
}

fn spawn_router(
    backends: Vec<String>,
    health_interval: Duration,
) -> (SocketAddr, RouterHandle, JoinHandle<()>) {
    let router = Router::bind(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends,
        health_interval,
        connect_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr();
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run().expect("serve router"));
    (addr, handle, join)
}

fn wait_until(what: &str, deadline: Duration, mut cond: impl FnMut() -> bool) {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    panic!("timed out waiting for {what}");
}

/// A backend dying under the router fails the in-flight scatter with a
/// single `ERR EBACKEND` — the compute phase is read-only, so no replica
/// applied anything — and the survivors keep serving.
#[test]
fn backend_killed_mid_scatter_surfaces_one_ebackend() {
    let (addr_a, handle_a, join_a) = spawn_backend_at("127.0.0.1:0");
    let (addr_b, handle_b, join_b) = spawn_backend_at("127.0.0.1:0");
    // A huge health interval: the *request path* must discover the loss
    // and fail fast, with no health thread to clean up after it.
    let (router_addr, router_handle, router_join) = spawn_router(
        vec![addr_a.to_string(), addr_b.to_string()],
        Duration::from_secs(3600),
    );

    let mut client = GeaClient::connect(router_addr).expect("connect client");
    client.expect_ok("open s demo 42").expect("open session");
    client.expect_ok("dataset E brain").expect("dataset");

    // Kill backend B with the router still believing it is up.
    handle_b.shutdown();
    join_b.join().expect("backend b thread");

    // The scatter discovers the loss: exactly one coded error, the
    // connection survives, and nothing was applied anywhere.
    let reply = client.request("mine E a 50 3 6").expect("no hang");
    let (code, msg) = reply.expect_err("scatter against a dead backend must fail");
    assert_eq!(code, "EBACKEND", "{msg}");

    let fascicles = client.expect_ok("fascicles").expect("read after failure");
    assert!(
        !fascicles.contains("a_1"),
        "aborted scatter leaked partial state: {fascicles}"
    );

    // The failure marked B down, so the retry runs on the survivor alone
    // and succeeds.
    let mined = client
        .expect_ok("mine E a 50 3 6")
        .expect("retry on survivor");
    assert!(mined.contains("fascicle"), "{mined}");
    let listing = client.expect_ok("backends").expect("health listing");
    assert!(listing.contains("down"), "{listing}");

    router_handle.shutdown();
    router_join.join().expect("router thread");
    handle_a.shutdown();
    join_a.join().expect("backend a thread");
}

/// A restarted backend is probed back to life, resynced (every known
/// session shipped as a snapshot), and re-admitted: scatters include it
/// again and its replica is byte-identical to the survivor's.
#[test]
fn restarted_backend_is_readmitted_with_identical_state() {
    let (addr_a, handle_a, join_a) = spawn_backend_at("127.0.0.1:0");
    let (addr_b, handle_b, join_b) = spawn_backend_at("127.0.0.1:0");
    let (router_addr, router_handle, router_join) = spawn_router(
        vec![addr_a.to_string(), addr_b.to_string()],
        Duration::from_millis(100),
    );

    let mut client = GeaClient::connect(router_addr).expect("connect client");
    client.expect_ok("open s demo 42").expect("open session");
    client.expect_ok("dataset E brain").expect("dataset");
    client.expect_ok("mine E a 50 3 6").expect("mine over both");

    // Kill B; the health thread notices within its probe interval.
    handle_b.shutdown();
    join_b.join().expect("backend b thread");
    wait_until(
        "health thread to mark the backend down",
        Duration::from_secs(10),
        || {
            client
                .expect_ok("backends")
                .is_ok_and(|listing| listing.contains("down"))
        },
    );

    // Writes keep landing while B is gone; B must learn them on return.
    client.expect_ok("groups a_1").expect("groups on survivor");
    client
        .expect_ok("gap g a_1CancerFasTbl a_1NormalTable")
        .expect("gap on survivor");

    // Restart B on the same address; re-admission requires the resync to
    // have completed, not just the probe to succeed.
    let (_, handle_b2, join_b2) = spawn_backend_at(&addr_b.to_string());
    wait_until(
        "restarted backend to be re-admitted",
        Duration::from_secs(30),
        || {
            client
                .expect_ok("backends")
                .is_ok_and(|listing| !listing.contains("down"))
        },
    );

    // A scatter now spans both backends again and must succeed first try
    // (stale pre-restart connections are invalidated by the admission
    // stamp, not by a sacrificial failure).
    let mined = client
        .expect_ok("mine E m with isa seeds=6 t_tags=0.8 t_libs=0.8")
        .expect("scatter after re-admission");
    assert!(mined.contains("cluster"), "{mined}");

    // Bypass the router: both replicas must answer the same bytes for the
    // resynced session, including its full lineage.
    let mut direct_a = GeaClient::connect(addr_a).expect("connect backend a");
    let mut direct_b = GeaClient::connect(addr_b).expect("connect backend b");
    for probe in [
        "use s",
        "fascicles",
        "show sumy a_1CancerFasTbl 3",
        "show gap g 3",
        "lineage",
    ] {
        let a = direct_a.request(probe).expect("backend a answers");
        let b = direct_b.request(probe).expect("backend b answers");
        assert_eq!(a, b, "replicas diverged on {probe:?}");
    }

    router_handle.shutdown();
    router_join.join().expect("router thread");
    handle_a.shutdown();
    join_a.join().expect("backend a thread");
    handle_b2.shutdown();
    join_b2.join().expect("backend b2 thread");
}
