//! Kernel-identity property battery: the blocked/fused SUMY aggregation
//! kernels (and the sharded drivers built on them) must be
//! **bit-identical** to the pre-change scalar kernels preserved in
//! `gea::core::sumy::reference` — not merely approximately equal.
//! Floating-point addition does not associate, so any reordering of a
//! per-tag accumulation chain (a blocked lane picking up tags in a
//! different order is fine; summing one tag's values in a different
//! order is not) shows up here as a ULP-level divergence. Randomized
//! matrices run through the full shard {1,2,3,7} × thread {1,4} grid,
//! and the edge shapes the blocked kernel's tail path must get right —
//! one library, one tag, constant rows — are pinned explicitly.

use proptest::prelude::*;

use gea::core::populate::{populate_columnar, populate_scan};
use gea::core::sumy::{aggregate, aggregate_tags, reference, SumyTable};
use gea::core::{EnumTable, ExecConfig};
use gea::exec::{aggregate_sharded, aggregate_tags_sharded};
use gea::sage::corpus::library_meta;
use gea::sage::library::{LibraryId, NeoplasticState, TissueSource};
use gea::sage::tag::{Tag, TagId, TagUniverse};
use gea::sage::{ExpressionMatrix, TissueType};

/// The shard × thread grid the determinism contract pins down.
const GRID: &[(usize, usize)] = &[
    (1, 1),
    (2, 1),
    (3, 1),
    (7, 1),
    (1, 4),
    (2, 4),
    (3, 4),
    (7, 4),
];

fn small_enum(values: Vec<Vec<f64>>) -> EnumTable {
    let n_libs = values[0].len();
    let universe =
        TagUniverse::from_tags((0..values.len() as u32).map(|i| Tag::from_code(i * 53).unwrap()));
    let libs = (0..n_libs)
        .map(|i| {
            library_meta(
                &format!("L{i}"),
                TissueType::Brain,
                if i % 3 == 0 {
                    NeoplasticState::Cancerous
                } else {
                    NeoplasticState::Normal
                },
                TissueSource::BulkTissue,
            )
        })
        .collect();
    EnumTable::new("E", ExpressionMatrix::from_rows(universe, libs, values))
}

/// The whole-matrix SUMY as the pre-change scalar kernel computed it.
fn reference_aggregate(name: &str, matrix: &ExpressionMatrix) -> SumyTable {
    let rows = (0..matrix.n_tags())
        .map(|t| reference::aggregate_row(matrix, TagId(t as u32)))
        .collect();
    SumyTable::new(name, rows)
}

/// The tag-subset SUMY as the pre-change scalar kernel computed it.
fn reference_aggregate_tags(name: &str, matrix: &ExpressionMatrix, tags: &[TagId]) -> SumyTable {
    let rows = tags
        .iter()
        .map(|&t| reference::aggregate_tags_row(matrix, t))
        .collect();
    SumyTable::new(name, rows)
}

/// Bit-level equality of every float a SUMY row carries. `==` on f64
/// would already fail on any real kernel divergence, but comparing bits
/// states the contract exactly (and catches a -0.0 / +0.0 flip, which
/// `==` waves through).
fn bit_identical(a: &SumyTable, b: &SumyTable) -> bool {
    a.name == b.name
        && a.rows().len() == b.rows().len()
        && a.rows().iter().zip(b.rows()).all(|(x, y)| {
            x.tag == y.tag
                && x.tag_no == y.tag_no
                && x.range.lo().to_bits() == y.range.lo().to_bits()
                && x.range.hi().to_bits() == y.range.hi().to_bits()
                && x.average.to_bits() == y.average.to_bits()
                && x.std_dev.to_bits() == y.std_dev.to_bits()
                && x.extras == y.extras
        })
}

fn matrix_values() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..12, 1usize..14).prop_flat_map(|(n_tags, n_libs)| {
        prop::collection::vec(prop::collection::vec(0.0f64..100.0, n_libs), n_tags)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The blocked whole-matrix kernel, serial and across the grid,
    /// against the scalar reference.
    #[test]
    fn aggregate_matches_scalar_reference(values in matrix_values()) {
        let table = small_enum(values);
        let oracle = reference_aggregate("s", &table.matrix);
        let fused = aggregate("s", &table.matrix);
        prop_assert!(bit_identical(&fused, &oracle), "serial blocked kernel diverged");
        for &(shards, threads) in GRID {
            let cfg = ExecConfig { threads, shards };
            let (sharded, _) = aggregate_sharded("s", &table.matrix, &cfg);
            prop_assert!(
                bit_identical(&sharded, &oracle),
                "sharded blocked kernel diverged at shards={} threads={}",
                shards, threads
            );
        }
    }

    /// The blocked tag-subset kernel over random (unsorted, possibly
    /// duplicated-free) tag selections, serial and across the grid.
    #[test]
    fn aggregate_tags_matches_scalar_reference(
        values in matrix_values(),
        mask in prop::collection::vec(any::<bool>(), 12),
    ) {
        let table = small_enum(values);
        let tags: Vec<TagId> = (0..table.matrix.n_tags())
            .filter(|&t| mask.get(t).copied().unwrap_or(false))
            .map(|t| TagId(t as u32))
            .collect();
        prop_assume!(!tags.is_empty());
        let oracle = reference_aggregate_tags("s", &table.matrix, &tags);
        let fused = aggregate_tags("s", &table.matrix, &tags);
        prop_assert!(bit_identical(&fused, &oracle), "serial tag-subset kernel diverged");
        for &(shards, threads) in GRID {
            let cfg = ExecConfig { threads, shards };
            let (sharded, _) = aggregate_tags_sharded("s", &table.matrix, &tags, &cfg);
            prop_assert!(
                bit_identical(&sharded, &oracle),
                "sharded tag-subset kernel diverged at shards={} threads={}",
                shards, threads
            );
        }
    }

    /// The selection-vector columnar pruner finds exactly the libraries
    /// the naive row-scan finds (the hit list is what `populate`
    /// materializes from; the work counters legitimately differ).
    #[test]
    fn columnar_pruning_matches_the_row_scan(
        values in matrix_values(),
        mask in prop::collection::vec(any::<bool>(), 14),
    ) {
        let table = small_enum(values);
        let ids: Vec<LibraryId> = table
            .matrix
            .library_ids()
            .enumerate()
            .filter(|(i, _)| mask.get(*i).copied().unwrap_or(false))
            .map(|(_, id)| id)
            .collect();
        prop_assume!(!ids.is_empty());
        let sub = table.with_libraries("sub", &ids);
        let sumy = aggregate("def", &sub.matrix);
        let (scan_hits, _) = populate_scan(&sumy, &table);
        let (columnar_hits, _) = populate_columnar(&sumy, &table);
        prop_assert_eq!(columnar_hits, scan_hits);
    }
}

/// Edge shapes exercise the blocked kernel's lane tail: fewer tags than
/// the lane width, a single library (variance over n=1), and constant
/// rows (variance exactly 0.0, a point range).
#[test]
fn edge_shapes_match_the_scalar_reference() {
    let shapes: Vec<Vec<Vec<f64>>> = vec![
        // One tag, one library: every loop is all-tail.
        vec![vec![42.0]],
        // One tag, many libraries: a single accumulation chain.
        vec![(0..13).map(|l| l as f64 * 0.3 + 1.0).collect()],
        // Many tags, one library: avg == the value, std_dev == 0.
        (0..9).map(|t| vec![t as f64 * 7.5]).collect(),
        // Constant rows: lo == hi, variance must be exactly zero.
        vec![vec![5.5; 6], vec![0.0; 6], vec![99.99; 6]],
    ];
    for values in shapes {
        let table = small_enum(values);
        let oracle = reference_aggregate("s", &table.matrix);
        assert!(
            bit_identical(&aggregate("s", &table.matrix), &oracle),
            "serial kernel diverged on {}x{}",
            table.matrix.n_tags(),
            table.n_libraries()
        );
        for &(shards, threads) in GRID {
            let cfg = ExecConfig { threads, shards };
            let (sharded, _) = aggregate_sharded("s", &table.matrix, &cfg);
            assert!(
                bit_identical(&sharded, &oracle),
                "sharded kernel diverged on {}x{} at shards={shards} threads={threads}",
                table.matrix.n_tags(),
                table.n_libraries()
            );
        }
    }
    // Constant rows really do produce point statistics — pin the exact
    // bit patterns, not just reference agreement.
    let table = small_enum(vec![vec![5.5; 6]]);
    let sumy = aggregate("s", &table.matrix);
    let row = &sumy.rows()[0];
    assert_eq!(row.average.to_bits(), 5.5f64.to_bits());
    assert_eq!(row.std_dev.to_bits(), 0.0f64.to_bits());
    assert!(row.range.is_point());
}
