//! Loopback integration test for gea-server: concurrent clients drive the
//! full thesis pipeline (mine → groups → gap → topgap) over TCP against a
//! shared named session, and every reply must match what the in-process
//! [`GeaSession`] API produces for the same commands.

use std::thread;
use std::time::Duration;

use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::engine;
use gea_server::gql::{parse, Request};
use gea_server::{GeaClient, Server, ServerConfig};

const N_CLIENTS: usize = 4;

/// Each client's pipeline, on tables namespaced by the client index so
/// concurrent writers never collide on names. On demo seed 42 the 50%
/// mine finds exactly one fascicle (`a{i}_1`) that is pure on cancer, so
/// the whole script is deterministic.
fn client_script(i: usize) -> Vec<String> {
    vec![
        format!("dataset E{i} brain"),
        format!("mine E{i} a{i} 50 3 6"),
        format!("purity a{i}_1"),
        format!("groups a{i}_1"),
        format!("gap g{i} a{i}_1CancerFasTbl a{i}_1NormalTable"),
        format!("topgap g{i} 5"),
        format!("show gap g{i} 3"),
    ]
}

#[test]
fn concurrent_clients_match_the_in_process_api() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: N_CLIENTS + 2,
        queue_depth: 8,
        lock_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let serving = thread::spawn(move || server.run().expect("serve"));

    // One client opens the shared session every other client attaches to.
    let mut admin = GeaClient::connect(addr).expect("connect admin");
    let opened = admin
        .request("open shared demo 42")
        .unwrap()
        .expect("open shared session");
    assert!(opened.contains("tags after cleaning"), "{opened}");

    // Malformed and failing commands answer ERR without killing the
    // connection.
    assert_eq!(admin.request("mine").unwrap().unwrap_err().0, "EPARSE");
    assert_eq!(admin.request("bogus cmd").unwrap().unwrap_err().0, "EPARSE");
    assert_eq!(
        admin
            .request("gap g missing1 missing2")
            .unwrap()
            .unwrap_err()
            .0,
        "ENOTFOUND"
    );
    assert_eq!(
        admin.request("use nosuch").unwrap().unwrap_err().0,
        "ENOSESSION"
    );
    assert_eq!(admin.request("ping").unwrap(), Ok("pong".to_string()));

    // N concurrent clients run the pipeline against the shared session.
    let mut workers = Vec::new();
    for i in 0..N_CLIENTS {
        workers.push(thread::spawn(move || {
            let mut client = GeaClient::connect(addr).expect("connect client");
            client.request("use shared").unwrap().expect("use shared");
            client_script(i)
                .iter()
                .map(|line| {
                    client.request(line).unwrap().unwrap_or_else(|(code, msg)| {
                        panic!("client {i}: {line:?} failed: {code} {msg}")
                    })
                })
                .collect::<Vec<String>>()
        }));
    }
    let served: Vec<Vec<String>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // The reference: the same commands through the in-process API. Replies
    // must be byte-identical (modulo the frame's trailing newline).
    let (corpus, _) = generate(&GeneratorConfig::demo(42));
    let mut reference =
        GeaSession::open(corpus, &CleaningConfig::default()).expect("open reference");
    for (i, replies) in served.iter().enumerate() {
        let script = client_script(i);
        assert_eq!(replies.len(), script.len());
        for (line, over_wire) in script.iter().zip(replies) {
            let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
                panic!("{line:?} is not an algebra command");
            };
            let local = engine::execute(&mut reference, &cmd)
                .unwrap_or_else(|e| panic!("reference {line:?}: {e}"));
            assert_eq!(
                local.trim_end_matches('\n'),
                over_wire,
                "wire reply diverged from in-process API on {line:?}"
            );
        }
    }

    // The pipeline actually produced gaps worth serving.
    assert!(served[0][5].contains("g0_5"), "{}", served[0][5]);
    assert!(served[0][6].contains("TagName"), "{}", served[0][6]);

    // The cache serves a repeat read at an unchanged generation without
    // re-executing it, and the reply is byte-identical.
    let first = admin.request("show gap g0 3").unwrap().expect("show");
    let second = admin.request("show gap g0 3").unwrap().expect("show again");
    assert_eq!(first, second, "cached reply diverged");

    // Metrics: non-zero request counts and latency histograms per verb.
    let stats = admin.request("stats").unwrap().expect("stats");
    let cache_hits: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("cache_hits "))
        .expect("cache_hits line")
        .parse()
        .unwrap();
    assert!(cache_hits > 0, "no cache hits recorded: {stats}");
    assert!(stats.contains("requests_total"), "{stats}");
    let requests: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("requests_total "))
        .expect("requests_total line")
        .parse()
        .unwrap();
    assert!(
        requests as usize >= N_CLIENTS * 8,
        "only {requests} requests: {stats}"
    );
    for verb in ["mine", "gap", "topgap", "show", "purity"] {
        let line = stats
            .lines()
            .find(|l| l.starts_with(&format!("cmd {verb} ")))
            .unwrap_or_else(|| panic!("no stats line for {verb}: {stats}"));
        // The admin's deliberate failures also count, so >= per client.
        let count: usize = line
            .split_whitespace()
            .nth(3)
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparsable stats line: {line}"));
        assert!(count >= N_CLIENTS, "{line}");
        assert!(
            line.contains("hist_log2us [") && !line.contains("[]"),
            "{line}"
        );
    }

    // Graceful shutdown via the protocol.
    assert_eq!(
        admin.request("shutdown").unwrap(),
        Ok("shutting down".to_string())
    );
    serving.join().expect("server thread");
}

#[test]
fn sessions_are_isolated_and_closable() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        lock_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = thread::spawn(move || server.run().expect("serve"));

    let mut a = GeaClient::connect(addr).unwrap();
    let mut b = GeaClient::connect(addr).unwrap();
    a.request("open one demo 42").unwrap().expect("open one");
    b.request("open two demo 7").unwrap().expect("open two");
    a.request("dataset Eb brain")
        .unwrap()
        .expect("dataset in one");
    // Session `two` never saw Eb.
    assert_eq!(
        b.request("tagfreq Eb TTTTTTTTTT").unwrap().unwrap_err().0,
        "ENOTFOUND"
    );
    let sessions = a.request("sessions").unwrap().expect("sessions");
    assert!(
        sessions.contains("one") && sessions.contains("two"),
        "{sessions}"
    );
    a.request("close two").unwrap().expect("close two");
    assert_eq!(b.request("tissues").unwrap().unwrap_err().0, "ENOSESSION");

    handle.shutdown();
    serving.join().expect("server thread");
}

/// The `check` verb validates a pipeline against the *live* session's
/// symbol table without mutating it: a table created over the wire
/// resolves, a fresh session rejects the same reference, and checking a
/// pipeline that "defines" names leaves them free for real commands.
#[test]
fn check_verb_validates_against_the_live_session() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        lock_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = thread::spawn(move || server.run().expect("serve"));

    let mut a = GeaClient::connect(addr).unwrap();
    a.request("open live demo 42").unwrap().expect("open live");
    a.request("dataset Eb brain").unwrap().expect("dataset");

    // Eb exists in this session, so referencing it checks clean…
    let reply = a
        .request("check comment Eb \"exists here\"")
        .unwrap()
        .expect("check against live session");
    assert!(reply.contains("clean"), "{reply}");

    // …while a fresh session flags the same reference as undefined.
    let mut b = GeaClient::connect(addr).unwrap();
    b.request("open fresh demo 7").unwrap().expect("open fresh");
    let reply = b
        .request("check comment Eb \"not here\"")
        .unwrap()
        .expect("check against fresh session");
    assert!(reply.contains("error[undefined-name]"), "{reply}");
    assert!(reply.contains("line 1:"), "{reply}");

    // World typing uses the live table's world: Eb is an ENUM, not a SUMY.
    let reply = a
        .request("check gap g Eb Eb")
        .unwrap()
        .expect("check world mismatch");
    assert!(reply.contains("error[world-mismatch]"), "{reply}");

    // A multi-command pipeline is checked as a whole — definitions made
    // inside the check are visible to later commands of the pipeline…
    let reply = a
        .request("check dataset X brain ; comment X \"pipeline-local\"")
        .unwrap()
        .expect("check pipeline");
    assert!(reply.contains("clean"), "{reply}");

    // …but never leak into the session: `check` is a pure read, so X is
    // still free for a real command, and the generation never moved.
    let sessions = a.request("sessions").unwrap().expect("sessions");
    assert_eq!(generation_of(&sessions, "live"), 1, "{sessions}");
    a.request("dataset X brain")
        .unwrap()
        .expect("X must still be free after check");

    handle.shutdown();
    serving.join().expect("server thread");
}

/// The session generation listed by `sessions`, for session `name`.
fn generation_of(sessions_reply: &str, name: &str) -> u64 {
    sessions_reply
        .lines()
        .find(|l| l.starts_with(&format!("{name}:")))
        .and_then(|l| l.split("generation ").nth(1))
        .and_then(|rest| rest.split(',').next())
        .and_then(|g| g.trim().parse().ok())
        .unwrap_or_else(|| panic!("no generation for {name} in {sessions_reply:?}"))
}

/// The highest `W<k>` table visible in a lineage tree reply (0 if none).
fn max_w_node(lineage_reply: &str) -> u64 {
    lineage_reply
        .lines()
        .filter_map(|l| l.split_whitespace().next())
        .filter_map(|tok| tok.strip_prefix('W').and_then(|n| n.parse().ok()))
        .max()
        .unwrap_or(0)
}

/// Hot-loop staleness check: readers hammer cacheable reads while one
/// writer appends tables. Each write bumps the session generation by
/// exactly one and adds a `W<k>` lineage node, so a reader that samples
/// generation `g` and *then* reads the lineage must see node `W<g>` —
/// whether the reply came from the engine or the response cache. Seeing
/// less means a stale cached reply was served for a newer generation.
#[test]
fn hot_loop_readers_never_observe_stale_generations() {
    const N_WRITES: u64 = 20;
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        queue_depth: 8,
        lock_timeout: Duration::from_secs(60),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = thread::spawn(move || server.run().expect("serve"));

    let mut admin = GeaClient::connect(addr).expect("connect admin");
    admin.request("open hot demo 42").unwrap().expect("open");

    let done = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let done = std::sync::Arc::clone(&done);
        thread::spawn(move || {
            let mut client = GeaClient::connect(addr).expect("connect writer");
            client.request("use hot").unwrap().expect("use");
            for k in 1..=N_WRITES {
                client
                    .request(&format!("dataset W{k} brain"))
                    .unwrap()
                    .unwrap_or_else(|e| panic!("write {k} failed: {e:?}"));
            }
            done.store(true, std::sync::atomic::Ordering::SeqCst);
        })
    };

    let mut readers = Vec::new();
    for r in 0..2 {
        let done = std::sync::Arc::clone(&done);
        readers.push(thread::spawn(move || {
            let mut client = GeaClient::connect(addr).expect("connect reader");
            client.request("use hot").unwrap().expect("use");
            let mut checks = 0u64;
            while checks < 3 || !done.load(std::sync::atomic::Ordering::SeqCst) {
                let sessions = client.request("sessions").unwrap().expect("sessions");
                let sampled = generation_of(&sessions, "hot");
                let lineage = client.request("lineage").unwrap().expect("lineage");
                let seen = max_w_node(&lineage);
                assert!(
                    seen >= sampled,
                    "reader {r}: stale read — sampled generation {sampled}, \
                     lineage only shows W{seen}"
                );
                checks += 1;
            }
            checks
        }));
    }

    writer.join().expect("writer thread");
    for reader in readers {
        assert!(reader.join().expect("reader thread") >= 3);
    }

    // Quiesced: the generation equals the write count, the last table is
    // visible, and the hammering produced real cache traffic.
    let sessions = admin.request("sessions").unwrap().expect("sessions");
    assert_eq!(generation_of(&sessions, "hot"), N_WRITES, "{sessions}");
    let lineage = admin.request("lineage").unwrap().expect("lineage");
    assert_eq!(max_w_node(&lineage), N_WRITES, "{lineage}");
    let stats = admin.request("stats").unwrap().expect("stats");
    let hits: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("cache_hits "))
        .expect("cache_hits line")
        .parse()
        .unwrap();
    let misses: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("cache_misses "))
        .expect("cache_misses line")
        .parse()
        .unwrap();
    assert!(misses > 0, "{stats}");

    // With the writer quiet, a repeated read must hit.
    admin.request("lineage").unwrap().expect("lineage");
    admin.request("lineage").unwrap().expect("lineage");
    let stats = admin.request("stats").unwrap().expect("stats");
    let hits_after: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("cache_hits "))
        .expect("cache_hits line")
        .parse()
        .unwrap();
    assert!(
        hits_after > hits,
        "quiesced repeat read did not hit: {stats}"
    );

    handle.shutdown();
    serving.join().expect("server thread");
}
