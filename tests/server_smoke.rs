//! Loopback integration test for gea-server: concurrent clients drive the
//! full thesis pipeline (mine → groups → gap → topgap) over TCP against a
//! shared named session, and every reply must match what the in-process
//! [`GeaSession`] API produces for the same commands.

use std::thread;
use std::time::Duration;

use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::engine;
use gea_server::gql::{parse, Request};
use gea_server::{GeaClient, Server, ServerConfig};

const N_CLIENTS: usize = 4;

/// Each client's pipeline, on tables namespaced by the client index so
/// concurrent writers never collide on names. On demo seed 42 the 50%
/// mine finds exactly one fascicle (`a{i}_1`) that is pure on cancer, so
/// the whole script is deterministic.
fn client_script(i: usize) -> Vec<String> {
    vec![
        format!("dataset E{i} brain"),
        format!("mine E{i} a{i} 50 3 6"),
        format!("purity a{i}_1"),
        format!("groups a{i}_1"),
        format!("gap g{i} a{i}_1CancerFasTbl a{i}_1NormalTable"),
        format!("topgap g{i} 5"),
        format!("show gap g{i} 3"),
    ]
}

#[test]
fn concurrent_clients_match_the_in_process_api() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: N_CLIENTS + 2,
        queue_depth: 8,
        lock_timeout: Duration::from_secs(120),
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr();
    let serving = thread::spawn(move || server.run().expect("serve"));

    // One client opens the shared session every other client attaches to.
    let mut admin = GeaClient::connect(addr).expect("connect admin");
    let opened = admin
        .request("open shared demo 42")
        .unwrap()
        .expect("open shared session");
    assert!(opened.contains("tags after cleaning"), "{opened}");

    // Malformed and failing commands answer ERR without killing the
    // connection.
    assert_eq!(admin.request("mine").unwrap().unwrap_err().0, "EPARSE");
    assert_eq!(admin.request("bogus cmd").unwrap().unwrap_err().0, "EPARSE");
    assert_eq!(
        admin
            .request("gap g missing1 missing2")
            .unwrap()
            .unwrap_err()
            .0,
        "ENOTFOUND"
    );
    assert_eq!(
        admin.request("use nosuch").unwrap().unwrap_err().0,
        "ENOSESSION"
    );
    assert_eq!(admin.request("ping").unwrap(), Ok("pong".to_string()));

    // N concurrent clients run the pipeline against the shared session.
    let mut workers = Vec::new();
    for i in 0..N_CLIENTS {
        workers.push(thread::spawn(move || {
            let mut client = GeaClient::connect(addr).expect("connect client");
            client.request("use shared").unwrap().expect("use shared");
            client_script(i)
                .iter()
                .map(|line| {
                    client.request(line).unwrap().unwrap_or_else(|(code, msg)| {
                        panic!("client {i}: {line:?} failed: {code} {msg}")
                    })
                })
                .collect::<Vec<String>>()
        }));
    }
    let served: Vec<Vec<String>> = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();

    // The reference: the same commands through the in-process API. Replies
    // must be byte-identical (modulo the frame's trailing newline).
    let (corpus, _) = generate(&GeneratorConfig::demo(42));
    let mut reference =
        GeaSession::open(corpus, &CleaningConfig::default()).expect("open reference");
    for (i, replies) in served.iter().enumerate() {
        let script = client_script(i);
        assert_eq!(replies.len(), script.len());
        for (line, over_wire) in script.iter().zip(replies) {
            let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
                panic!("{line:?} is not an algebra command");
            };
            let local = engine::execute(&mut reference, &cmd)
                .unwrap_or_else(|e| panic!("reference {line:?}: {e}"));
            assert_eq!(
                local.trim_end_matches('\n'),
                over_wire,
                "wire reply diverged from in-process API on {line:?}"
            );
        }
    }

    // The pipeline actually produced gaps worth serving.
    assert!(served[0][5].contains("g0_5"), "{}", served[0][5]);
    assert!(served[0][6].contains("TagName"), "{}", served[0][6]);

    // Metrics: non-zero request counts and latency histograms per verb.
    let stats = admin.request("stats").unwrap().expect("stats");
    assert!(stats.contains("requests_total"), "{stats}");
    let requests: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("requests_total "))
        .expect("requests_total line")
        .parse()
        .unwrap();
    assert!(
        requests as usize >= N_CLIENTS * 8,
        "only {requests} requests: {stats}"
    );
    for verb in ["mine", "gap", "topgap", "show", "purity"] {
        let line = stats
            .lines()
            .find(|l| l.starts_with(&format!("cmd {verb} ")))
            .unwrap_or_else(|| panic!("no stats line for {verb}: {stats}"));
        // The admin's deliberate failures also count, so >= per client.
        let count: usize = line
            .split_whitespace()
            .nth(3)
            .and_then(|n| n.parse().ok())
            .unwrap_or_else(|| panic!("unparsable stats line: {line}"));
        assert!(count >= N_CLIENTS, "{line}");
        assert!(
            line.contains("hist_log2us [") && !line.contains("[]"),
            "{line}"
        );
    }

    // Graceful shutdown via the protocol.
    assert_eq!(
        admin.request("shutdown").unwrap(),
        Ok("shutting down".to_string())
    );
    serving.join().expect("server thread");
}

#[test]
fn sessions_are_isolated_and_closable() {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        lock_timeout: Duration::from_secs(30),
    })
    .expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    let serving = thread::spawn(move || server.run().expect("serve"));

    let mut a = GeaClient::connect(addr).unwrap();
    let mut b = GeaClient::connect(addr).unwrap();
    a.request("open one demo 42").unwrap().expect("open one");
    b.request("open two demo 7").unwrap().expect("open two");
    a.request("dataset Eb brain")
        .unwrap()
        .expect("dataset in one");
    // Session `two` never saw Eb.
    assert_eq!(
        b.request("tagfreq Eb TTTTTTTTTT").unwrap().unwrap_err().0,
        "ENOTFOUND"
    );
    let sessions = a.request("sessions").unwrap().expect("sessions");
    assert!(
        sessions.contains("one") && sessions.contains("two"),
        "{sessions}"
    );
    a.request("close two").unwrap().expect("close two");
    assert_eq!(b.request("tissues").unwrap().unwrap_err().0, "ENOSESSION");

    handle.shutdown();
    serving.join().expect("server thread");
}
