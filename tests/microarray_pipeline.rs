//! Integration test for the §2.4 generality claim: the same GEA machinery
//! that analyzes SAGE data analyzes microarray data once the chip
//! intensities are expressed as tags with expression values.

use gea::cluster::FascicleParams;
use gea::core::gap::diff;
use gea::core::mine::{generate_metadata, mine, Miner};
use gea::core::sumy::aggregate;
use gea::core::topgap::{top_gaps, TopGapOrder};
use gea::core::xprofiler::compare_cancer_vs_normal;
use gea::core::EnumTable;
use gea::sage::generate::{generate, CancerResponse, GeneratorConfig};
use gea::sage::microarray::{synthesize_experiment, to_expression_matrix};
use gea::sage::{NeoplasticState, TissueType};

#[test]
fn microarray_data_flows_through_the_whole_toolkit() {
    let config = GeneratorConfig::demo(42);
    let (_, truth) = generate(&config);
    let samples = synthesize_experiment(&truth, &config, &TissueType::Brain, 6, 6, 42);
    let matrix = to_expression_matrix(&samples, Some(100_000.0)).expect("shared probe layout");
    let table = EnumTable::new("ARRAY", matrix);

    // Aggregate / diff pipeline: cancer vs normal arrays.
    let cancer = table.select_libraries("c", |m| m.state == NeoplasticState::Cancerous);
    let normal = table.select_libraries("n", |m| m.state == NeoplasticState::Normal);
    assert_eq!(cancer.n_libraries(), 6);
    assert_eq!(normal.n_libraries(), 6);
    let gap = diff(
        "array_gap",
        &aggregate("c", &cancer.matrix),
        &aggregate("n", &normal.matrix),
    );
    assert!(!gap.is_empty());

    // The planted differential genes dominate the top gaps.
    let top = top_gaps(&gap, 10, TopGapOrder::LargestMagnitude);
    let planted_hits = top
        .rows()
        .iter()
        .filter(|r| {
            truth
                .gene_of_tag(r.tag)
                .map(|g| g.response != CancerResponse::Unchanged)
                .unwrap_or(false)
        })
        .count();
    assert!(
        planted_hits >= 7,
        "only {planted_hits}/10 microarray top gaps are planted diff genes"
    );
    // Gap signs match the planted direction.
    for r in top.rows() {
        if let Some(gene) = truth.gene_of_tag(r.tag) {
            match gene.response {
                CancerResponse::Up => assert!(r.gap().unwrap() > 0.0, "{} sign", r.tag),
                CancerResponse::Down => assert!(r.gap().unwrap() < 0.0, "{} sign", r.tag),
                CancerResponse::Unchanged => {}
            }
        }
    }

    // The xProfiler baseline runs on it too.
    let pooled = compare_cancer_vs_normal(&table);
    assert!(!pooled.significant(0.05).is_empty());

    // And the fascicle miner accepts the matrix (arrays have no planted
    // fascicle structure, so we only require clean execution and valid
    // invariants).
    let tol_table = table.clone();
    let tolerance = generate_metadata(&tol_table, 0.10);
    let clusters = mine(
        &table,
        "array",
        &Miner::Fascicles(FascicleParams {
            min_compact_attrs: table.n_tags() / 2,
            min_records: 2,
            batch_size: 6,
        }),
        Some(&tolerance),
    );
    for c in &clusters {
        assert!(c.libraries.len() >= 2);
        assert_eq!(c.sumy.len(), c.compact_tags.len());
    }
}

#[test]
fn microarray_probe_bias_limits_the_view() {
    // §2.2.1: "the experimenter must select the mRNA sequences to be
    // detected" — the chip only sees its printed probes, unlike SAGE.
    let config = GeneratorConfig::demo(42);
    let (corpus, truth) = generate(&config);
    let samples = synthesize_experiment(&truth, &config, &TissueType::Brain, 3, 3, 7);
    let matrix = to_expression_matrix(&samples, None).unwrap();
    // Every probe is a planted brain or housekeeping gene...
    for tid in matrix.tag_ids() {
        let tag = matrix.tag_of(tid);
        let gene = truth.gene_of_tag(tag).expect("probes are planted genes");
        assert!(
            gene.tissue.is_none() || gene.tissue == Some(TissueType::Brain),
            "{} probe is foreign",
            gene.gene
        );
    }
    // ...whereas the SAGE corpus observed tags the chip never could.
    let sage_union = corpus.tag_union();
    assert!(sage_union.len() > matrix.n_tags() * 10);
}
