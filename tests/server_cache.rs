//! The cache transparency battery: the response cache must be purely an
//! optimization. For randomized interleavings of read and write GQL
//! commands, every reply from a cache-enabled server must be
//! byte-identical to the reply from a cache-disabled server fed the same
//! command sequence — including error replies. A divergence means a stale
//! or wrongly-keyed cache entry was served.

use std::thread;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gea_server::client::reply_evicted;
use gea_server::{GeaClient, Server, ServerConfig};

const INTERLEAVINGS: usize = 100;
const STEPS_PER_INTERLEAVING: usize = 8;

fn spawn(config: ServerConfig) -> (GeaClient, gea_server::server::ServerHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::spawn(move || server.run().expect("serve"));
    (GeaClient::connect(addr).expect("connect"), handle)
}

fn config(cache_bytes: usize) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        lock_timeout: Duration::from_secs(30),
        cache_bytes,
        ..ServerConfig::default()
    }
}

/// One randomized command: reads (cacheable and not), writes, and
/// deliberate failures, weighted so most steps are cache-eligible reads
/// with writes interleaved to bump the generation. `live` tracks tables
/// created this interleaving so some writes hit existing names.
fn random_command(rng: &mut SmallRng, iter: usize, step: usize, live: &mut Vec<String>) -> String {
    let tissues = ["brain", "breast", "prostate"];
    let tags = ["AAAAAAAAAA", "ACGTACGTAC", "TTTTTTTTTT"];
    let target = |live: &Vec<String>, rng: &mut SmallRng| -> String {
        if live.is_empty() || rng.gen_bool(0.3) {
            "nosuch".to_string()
        } else {
            live[rng.gen_range(0..live.len())].clone()
        }
    };
    match rng.gen_range(0..12u32) {
        0 => "tissues".to_string(),
        1 => "lineage".to_string(),
        2 => "cleaning".to_string(),
        3 => "fascicles".to_string(),
        4 => {
            let name = format!("d{iter}_{step}");
            live.push(name.clone());
            format!(
                "dataset {name} {}",
                tissues[rng.gen_range(0..tissues.len())]
            )
        }
        5 => format!("comment {} \"pass {iter} step {step}\"", target(live, rng)),
        6 => {
            let name = target(live, rng);
            live.retain(|n| *n != name);
            format!("delete {name} --cascade")
        }
        7 => format!("show sumy {} 3", target(live, rng)),
        8 => format!(
            "tagfreq {} {}",
            target(live, rng),
            tags[rng.gen_range(0..tags.len())]
        ),
        9 => format!("library {}", rng.gen_range(1..30u32)),
        10 => format!("purity {}", target(live, rng)),
        _ => format!("xprofiler {}", target(live, rng)),
    }
}

#[test]
fn cache_is_transparent_over_randomized_interleavings() {
    let (mut cached, cached_handle) = spawn(config(8 * 1024 * 1024));
    let (mut plain, plain_handle) = spawn(config(0));

    for client in [&mut cached, &mut plain] {
        client.expect_ok("open battery demo 11").expect("open");
    }

    let mut compared = 0usize;
    for iter in 0..INTERLEAVINGS {
        let mut rng = SmallRng::seed_from_u64(0xCAC4E + iter as u64);
        let mut live = Vec::new();
        let mut script = Vec::new();
        for step in 0..STEPS_PER_INTERLEAVING {
            script.push(random_command(&mut rng, iter, step, &mut live));
        }
        // Keep the session lean across 100 interleavings: every table this
        // pass created is cascade-deleted at the end of the pass (itself
        // more command pairs to compare).
        for name in live {
            script.push(format!("delete {name} --cascade"));
        }
        for line in script {
            let with_cache = cached.request(&line).expect("cached transport");
            let without = plain.request(&line).expect("plain transport");
            assert_eq!(
                with_cache, without,
                "cache changed the reply to {line:?} (interleaving {iter})"
            );
            compared += 1;
        }
    }
    assert!(compared >= INTERLEAVINGS * STEPS_PER_INTERLEAVING);

    // The comparison is only meaningful if the cache actually served hits.
    let stats = cached.expect_ok("stats").expect("stats");
    let hits: u64 = stats
        .lines()
        .find_map(|l| l.strip_prefix("cache_hits "))
        .expect("cache_hits line")
        .parse()
        .unwrap();
    assert!(hits > 0, "no cache hits in {INTERLEAVINGS} interleavings");
    let plain_stats = plain.expect_ok("stats").expect("stats");
    assert!(
        plain_stats.contains("cache_hits 0"),
        "disabled cache served a hit: {plain_stats}"
    );

    cached_handle.shutdown();
    plain_handle.shutdown();
}

/// Extract a numeric counter from a `stats` reply.
fn counter(stats: &str, key: &str) -> u64 {
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{key} ")))
        .unwrap_or_else(|| panic!("no {key} line in {stats:?}"))
        .parse()
        .unwrap()
}

/// Twin sessions opened from the same demo seed share a corpus: as long
/// as both are pristine (no write ever ran), pure-read replies cached by
/// one must be served to the other — keyed by corpus fingerprint, not
/// session identity — and must survive the first twin closing. A write
/// diverges a session from the corpus and must drop it out of the shared
/// scope without affecting its twin.
#[test]
fn pristine_twin_sessions_share_cached_replies() {
    let (mut client, handle) = spawn(config(8 * 1024 * 1024));

    client.expect_ok("open a demo 99").expect("open a");
    client.expect_ok("open b demo 99").expect("open b");
    // A twin from a *different* corpus must never share.
    client.expect_ok("open other demo 100").expect("open other");

    client.expect_ok("use a").expect("use a");
    let from_a = client.expect_ok("tissues").expect("tissues on a");
    let hits_before = counter(&client.expect_ok("stats").unwrap(), "cache_hits");

    // The same read on the pristine twin is a cross-session hit, and the
    // reply is byte-identical to the one computed on `a`.
    client.expect_ok("use b").expect("use b");
    let from_b = client.expect_ok("tissues").expect("tissues on b");
    assert_eq!(from_a, from_b);
    let hits_after = counter(&client.expect_ok("stats").unwrap(), "cache_hits");
    assert!(
        hits_after > hits_before,
        "twin read was not served from the shared cache ({hits_before} -> {hits_after})"
    );

    // A different corpus misses: the hit counter must not move.
    client.expect_ok("use other").expect("use other");
    let hits_before = counter(&client.expect_ok("stats").unwrap(), "cache_hits");
    let _from_other = client.expect_ok("tissues").expect("tissues on other");
    let hits_after = counter(&client.expect_ok("stats").unwrap(), "cache_hits");
    assert_eq!(
        hits_after, hits_before,
        "different-seed twin shared a reply"
    );

    // Closing the twin that populated the cache must not strand `b`: the
    // corpus-scoped entry belongs to the corpus, so `b` still hits.
    client.expect_ok("close a").expect("close a");
    client.expect_ok("use b").expect("use b");
    let hits_before = counter(&client.expect_ok("stats").unwrap(), "cache_hits");
    assert_eq!(client.expect_ok("tissues").unwrap(), from_b);
    assert!(
        counter(&client.expect_ok("stats").unwrap(), "cache_hits") > hits_before,
        "corpus-scoped entry died with its originating session"
    );

    // A write diverges `b` from the pristine corpus; its replies must stop
    // flowing through the shared scope (a later pristine twin would
    // otherwise see post-write state) but stay correct.
    client.expect_ok("dataset d brain").expect("write on b");
    let diverged = client.expect_ok("tissues").expect("tissues after write");
    assert_eq!(diverged, from_b, "tissues content changed by dataset");
    // A fresh pristine twin still hits the original corpus-scoped entry.
    client.expect_ok("open c demo 99").expect("open c");
    let hits_before = counter(&client.expect_ok("stats").unwrap(), "cache_hits");
    assert_eq!(client.expect_ok("tissues").unwrap(), from_b);
    assert!(
        counter(&client.expect_ok("stats").unwrap(), "cache_hits") > hits_before,
        "new pristine twin missed the shared entry"
    );

    handle.shutdown();
}

/// Admission is scan-resistant: a one-pass cold scan of distinct reads
/// must not evict a hotter resident. The frequency sketch ranks the
/// primed-and-hit `tissues` reply above any command seen once, so the
/// overflowing scan inserts are *rejected* at admission (each scan read
/// still computes a correct reply — rejection only skips caching it) and
/// the hot entry survives to hit again. This flips the old
/// `admission_baseline_has_no_thrash_protection` picture, where pure LRU
/// let the same scan evict the hot entry.
#[test]
fn admission_is_scan_resistant() {
    let (mut client, handle) = spawn(config(4 * 1024));
    client.expect_ok("open adm demo 42").expect("open");

    // Prime the hot entry and prove it hits. The miss, the insert, and
    // the hit each feed the frequency sketch, so `tissues` now out-ranks
    // any command the cache has seen only once.
    let tissues = client.expect_ok("tissues").expect("prime");
    let hits = counter(&client.expect_ok("stats").unwrap(), "cache_hits");
    assert_eq!(client.expect_ok("tissues").unwrap(), tissues);
    assert_eq!(
        counter(&client.expect_ok("stats").unwrap(), "cache_hits"),
        hits + 1,
        "hot entry did not hit before the scan"
    );

    // A one-pass cold scan: each reply is individually small enough for
    // the size gate, and collectively they overflow the 4 KiB budget.
    let rejected_before = counter(&client.expect_ok("stats").unwrap(), "cache_rejected");
    for i in 0..21 {
        client
            .expect_ok(&format!("library {i}"))
            .expect("scan read");
    }

    // The scan pressured the cache, but the pressure shows up as
    // admission rejections — once the budget is full, every once-seen
    // scan key loses the frequency contest against the hot resident.
    let stats = client.expect_ok("stats").expect("stats");
    assert!(
        counter(&stats, "cache_rejected") > rejected_before,
        "over-budget scan was fully admitted: {stats}"
    );

    // The hot entry survived the scan: the next read hits, and misses do
    // not move.
    let hits = counter(&stats, "cache_hits");
    let misses = counter(&stats, "cache_misses");
    assert_eq!(client.expect_ok("tissues").unwrap(), tissues);
    let stats = client.expect_ok("stats").expect("stats");
    assert_eq!(
        counter(&stats, "cache_hits"),
        hits + 1,
        "hot entry was thrashed by a one-pass cold scan"
    );
    assert_eq!(
        counter(&stats, "cache_misses"),
        misses,
        "hot entry re-read missed after the scan"
    );

    // The size gate still fronts the frequency filter: an entry whose key
    // alone exceeds budget/4 is rejected outright (the reply is still
    // computed and correct).
    let rejected = counter(&client.expect_ok("stats").unwrap(), "cache_rejected");
    let oversized = format!("check {}", vec!["tissues"; 300].join(" ; "));
    client.expect_ok(&oversized).expect("oversized check");
    assert_eq!(
        counter(&client.expect_ok("stats").unwrap(), "cache_rejected"),
        rejected + 1,
        "oversized entry was not size-rejected"
    );

    handle.shutdown();
}

#[test]
fn eviction_round_trips_through_the_client() {
    let mut cfg = config(1024 * 1024);
    // A 1-byte budget means any session is over budget the moment it is
    // installed, so eviction is deterministic: open succeeds, the next
    // use of the name answers EEVICTED.
    cfg.session_budget = Some(1);
    let (mut client, handle) = spawn(cfg);

    client.expect_ok("open alpha demo 42").expect("open alpha");
    let reply = client.request("tissues").expect("transport");
    assert!(reply_evicted(&reply), "expected EEVICTED, got {reply:?}");
    // The helper is selective: other errors are not "evicted".
    let reply = client.request("use never-opened").expect("transport");
    assert!(!reply_evicted(&reply));
    // `close` acknowledges the eviction and clears the tombstone; the
    // name then reads as never-opened, not evicted.
    client.expect_ok("close alpha").expect("clear tombstone");
    let reply = client.request("use alpha").expect("transport");
    assert_eq!(reply.as_ref().unwrap_err().0, "ENOSESSION");
    assert!(!reply_evicted(&reply));

    handle.shutdown();
}
