//! End-to-end coverage of the pluggable mining-backend subsystem: GQL's
//! `mine … with <algo>` through the server engine, byte identity across
//! executor shapes, sugar equivalence of `with fascicles`, and backend
//! provenance surviving the `session.gea` save/spill/load round trip.

use gea::core::persist::{load_session, load_session_verified, save_session, spill_session};
use gea::core::session::GeaSession;
use gea::core::ExecConfig;
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig};
use gea::server::engine;
use gea::server::gql::{parse, Request};

fn session() -> GeaSession {
    let (corpus, _) = generate(&GeneratorConfig::demo(42));
    GeaSession::open(corpus, &CleaningConfig::default()).unwrap()
}

fn run(session: &mut GeaSession, line: &str) -> String {
    let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
        panic!("{line:?} is not an algebra command");
    };
    engine::execute(session, &cmd).unwrap_or_else(|e| panic!("{line:?}: {e}"))
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("gea_mine_backends_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Both new backends, driven through the engine on a serial and an
/// odd-shards/many-threads session: identical replies, identical tables,
/// and a `mine` exec event noted on both.
#[test]
fn mine_with_is_byte_identical_across_executors() {
    let mut serial = session();
    serial.set_exec_config(ExecConfig::serial());
    let mut sharded = session();
    sharded.set_exec_config(ExecConfig {
        threads: 4,
        shards: 3,
    });

    let script = [
        "dataset Eb brain",
        "mine Eb isa_m with isa seeds=6 t_tags=0.8 t_libs=0.8",
        "mine Eb spx with simplex k=2 zero_repl=0.5",
    ];
    for line in script {
        let a = run(&mut serial, line);
        let b = run(&mut sharded, line);
        assert_eq!(a, b, "engine reply diverged on {line:?}");
    }
    assert_eq!(
        serial.fascicle_records().keys().collect::<Vec<_>>(),
        sharded.fascicle_records().keys().collect::<Vec<_>>()
    );
    for (name, rec) in serial.fascicle_records() {
        let other = &sharded.fascicle_records()[name];
        assert_eq!(rec.backend, other.backend, "{name}: backend diverged");
        assert_eq!(rec.params, other.params, "{name}: params diverged");
        assert_eq!(
            serial.enum_table(name).unwrap().matrix,
            sharded.enum_table(name).unwrap().matrix,
            "{name}: member matrix diverged"
        );
        assert_eq!(
            serial.sumy(name).unwrap(),
            sharded.sumy(name).unwrap(),
            "{name}: SUMY diverged"
        );
    }
    for s in [&mut serial, &mut sharded] {
        let events = s.drain_exec_events();
        assert!(
            events.iter().filter(|e| e.op == "mine").count() >= 2,
            "expected a mine event per backend run, got {events:?}"
        );
    }
}

/// `with fascicles key=val` is parse-time sugar for the bare positional
/// `mine`: same replies, same lineage, same fascicle records.
#[test]
fn with_fascicles_is_sugar_for_bare_mine() {
    let mut bare = session();
    let mut sugared = session();
    run(&mut bare, "dataset Eb brain");
    run(&mut sugared, "dataset Eb brain");
    let a = run(&mut bare, "mine Eb f 50 3 6");
    let b = run(
        &mut sugared,
        "mine Eb f with fascicles k_pct=50 min_records=3 batch=6",
    );
    assert_eq!(a, b, "sugared reply differs");
    assert_eq!(
        format!("{:?}", bare.fascicle_records()),
        format!("{:?}", sugared.fascicle_records())
    );
    assert_eq!(
        bare.lineage().render_tree(),
        sugared.lineage().render_tree()
    );
}

/// Backend provenance (algorithm + resolved parameters) survives both
/// persistence paths: the explicit `save`/`load` round trip and the
/// server's spill/restore.
#[test]
fn backend_provenance_survives_save_and_spill() {
    let mut s = session();
    run(&mut s, "dataset Eb brain");
    run(
        &mut s,
        "mine Eb isa_m with isa seeds=6 t_tags=0.8 t_libs=0.8",
    );
    run(&mut s, "mine Eb spx with simplex k=2");
    let mined: Vec<String> = s.fascicle_records().keys().cloned().collect();
    assert!(!mined.is_empty(), "no clusters mined");
    let isa_rec = s
        .fascicle_records()
        .values()
        .find(|r| r.backend == "isa")
        .expect("no isa-mined fascicle");
    assert_eq!(
        isa_rec.params,
        vec![
            ("seeds".to_string(), "6".to_string()),
            ("t_tags".to_string(), "0.8".to_string()),
            ("t_libs".to_string(), "0.8".to_string()),
            ("max_iters".to_string(), "50".to_string()),
        ],
        "resolved isa params (schema order, defaults filled) not recorded"
    );

    // save/load.
    let dir = temp_dir("save");
    save_session(&s, &dir).unwrap();
    let restored = load_session(&dir).unwrap();
    assert_eq!(
        format!("{:?}", restored.fascicle_records()),
        format!("{:?}", s.fascicle_records()),
        "save/load lost backend provenance"
    );
    std::fs::remove_dir_all(&dir).unwrap();

    // spill/restore (the server's transparent eviction path).
    let spill_dir = temp_dir("spill");
    let spilled = spill_session(&s, &spill_dir, "sess").unwrap();
    let restored = load_session_verified(&spilled.path, spilled.fingerprint).unwrap();
    assert_eq!(
        format!("{:?}", restored.fascicle_records()),
        format!("{:?}", s.fascicle_records()),
        "spill/restore lost backend provenance"
    );
    for r in restored.fascicle_records().values() {
        assert!(["fascicles", "isa", "simplex"].contains(&r.backend.as_str()));
    }
    std::fs::remove_dir_all(&spill_dir).unwrap();
}

/// Registry misuse surfaces as engine errors, not panics: unknown
/// algorithms and out-of-domain parameters are rejected with EQUERY.
#[test]
fn bad_backend_requests_are_engine_errors() {
    let mut s = session();
    run(&mut s, "dataset Eb brain");
    // Out-of-domain value (seeds=0): parses (type-correct), engine rejects.
    let Some(Request::Gql(cmd)) = parse("mine Eb x with isa seeds=0").unwrap() else {
        panic!("not an algebra command");
    };
    let err = engine::execute(&mut s, &cmd).unwrap_err();
    assert_eq!(err.code, "EQUERY", "{err}");
    // Unknown algorithm and unknown key never even parse.
    assert!(parse("mine Eb x with pca").is_err());
    assert!(parse("mine Eb x with isa bogus=1").is_err());
}
