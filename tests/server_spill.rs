//! The spill transparency battery: with `--spill-dir` configured,
//! eviction must be invisible to clients. A server whose sessions are
//! constantly evicted to disk and restored on demand must answer every
//! command byte-identically to a server that never evicts — the spilled
//! session's tables, fascicles, gaps, and lineage all survive the round
//! trip. `EEVICTED` remains only for the degraded case: a spill file
//! that can no longer be read back.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread;
use std::time::Duration;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use gea_server::{GeaClient, Server, ServerConfig};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gea_spill_{}_{tag}_{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

fn spawn(config: ServerConfig) -> (GeaClient, gea_server::server::ServerHandle) {
    let server = Server::bind(config).expect("bind");
    let addr = server.local_addr();
    let handle = server.handle();
    thread::spawn(move || server.run().expect("serve"));
    (GeaClient::connect(addr).expect("connect"), handle)
}

fn plain_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue_depth: 4,
        lock_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    }
}

/// A 1-byte budget evicts the session the moment it is quiescent, so
/// every command against this server exercises the restore slow path.
fn spill_config(dir: PathBuf) -> ServerConfig {
    ServerConfig {
        session_budget: Some(1),
        spill_dir: Some(dir),
        ..plain_config()
    }
}

fn stat(stats: &str, key: &str) -> u64 {
    let prefix = format!("{key} ");
    stats
        .lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("no {key} in stats:\n{stats}"))
        .parse()
        .unwrap_or_else(|e| panic!("bad {key}: {e}"))
}

/// The demo-42 pipeline: dataset -> fascicles -> control groups -> gap.
/// Deterministic, and rich enough that a lossy restore would corrupt at
/// least one of the read replies below.
const WRITE_SCRIPT: &[&str] = &[
    "dataset E brain",
    "mine E a 50 3 6",
    "groups a_1",
    "gap g a_1CancerFasTbl a_1NormalTable",
    "comment g \"gap of interest\"",
];

const READ_SCRIPT: &[&str] = &[
    "tissues",
    "cleaning",
    "lineage",
    "fascicles",
    "purity a_1",
    "show sumy a_1CancerFasTbl 5",
    "show gap g 5",
    "topgap g 5",
    "library 3",
    "xprofiler E",
];

#[test]
fn spilled_sessions_restore_transparently_and_byte_identical() {
    let (mut spilly, spill_handle) = spawn(spill_config(temp_dir("transparent")));
    let (mut reference, ref_handle) = spawn(plain_config());

    for client in [&mut spilly, &mut reference] {
        client.expect_ok("open t demo 42").expect("open");
    }
    for line in WRITE_SCRIPT.iter().chain(READ_SCRIPT) {
        let restored = spilly.request(line).expect("spill transport");
        let direct = reference.request(line).expect("plain transport");
        assert_eq!(
            restored, direct,
            "spill/restore changed the reply to {line:?}"
        );
    }
    // The gap chain must have actually succeeded — identical errors on
    // both sides would satisfy the comparison while proving nothing.
    let reply = spilly.request("show gap g 5").expect("transport");
    assert!(reply.is_ok(), "gap pipeline failed: {reply:?}");

    // `use` of a spilled name restores too, instead of EEVICTED.
    let msg = spilly.expect_ok("use t").expect("use restores");
    assert!(msg.contains("using session t"), "{msg}");

    let stats = spilly.expect_ok("stats").expect("stats");
    assert!(stat(&stats, "sessions_spilled") >= 1, "{stats}");
    assert!(stat(&stats, "sessions_restored") >= 1, "{stats}");
    assert_eq!(stat(&stats, "spill_errors"), 0, "{stats}");

    spill_handle.shutdown();
    ref_handle.shutdown();
}

#[test]
fn corrupt_spill_file_degrades_to_eevicted_without_panicking() {
    let dir = temp_dir("corrupt");
    let (mut client, handle) = spawn(spill_config(dir.clone()));

    // The eager budget check inside `open` spills the fresh session
    // synchronously, so the snapshot is on disk when the reply returns.
    client.expect_ok("open frag demo 42").expect("open");
    let stats = client.expect_ok("stats").expect("stats");
    assert!(stat(&stats, "sessions_spilled") >= 1, "{stats}");
    let snapshot = std::fs::read_dir(&dir)
        .expect("spill dir")
        .filter_map(|e| Some(e.ok()?.path().join("session.gea")))
        .find(|p| p.exists())
        .expect("a session.gea snapshot under the spill dir");

    // Flip one byte mid-body: the fingerprint check must catch it.
    let mut bytes = std::fs::read(&snapshot).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snapshot, bytes).expect("corrupt snapshot");

    let err = client.request("tissues").expect("transport").unwrap_err();
    assert_eq!(err.0, "EEVICTED", "{err:?}");
    assert!(err.1.contains("unreadable"), "{err:?}");
    // The tombstone is demoted: later requests answer plain EEVICTED
    // instead of re-reading the broken file forever.
    let err = client.request("lineage").expect("transport").unwrap_err();
    assert_eq!(err.0, "EEVICTED", "{err:?}");

    // The server survived: still answering, and counting the failure.
    assert_eq!(client.request("ping").unwrap(), Ok("pong".to_string()));
    let stats = client.expect_ok("stats").expect("stats");
    assert!(stat(&stats, "spill_errors") >= 1, "{stats}");

    // Re-opening the name recovers fully: a fresh (valid) spill cycle.
    client.expect_ok("open frag demo 42").expect("re-open");
    assert!(client.request("tissues").unwrap().is_ok());

    handle.shutdown();
}

#[test]
fn save_load_round_trips_a_session_over_the_wire() {
    let dir = temp_dir("saveload");
    let (mut client, handle) = spawn(plain_config());

    client.expect_ok("open rt demo 42").expect("open");
    for line in WRITE_SCRIPT {
        client.expect_ok(line).expect("build state");
    }
    let lineage = client.expect_ok("lineage").expect("lineage");
    let gap = client.expect_ok("show gap g 5").expect("gap rows");

    let saved = client
        .expect_ok(&format!("save {}", dir.display()))
        .expect("save");
    assert!(saved.contains("snapshot"), "{saved}");

    // Diverge, then load: the saved state must replace the live one.
    client.expect_ok("dataset F breast").expect("diverge");
    assert_ne!(client.expect_ok("lineage").unwrap(), lineage);
    let restored = client
        .expect_ok(&format!("load {}", dir.display()))
        .expect("load");
    assert!(restored.contains("restored session"), "{restored}");

    assert_eq!(
        client.expect_ok("lineage").unwrap(),
        lineage,
        "lineage not restored byte-identically"
    );
    assert_eq!(
        client.expect_ok("show gap g 5").unwrap(),
        gap,
        "gap table not restored byte-identically"
    );
    // The divergent dataset is gone: `load` replaced, not merged.
    assert!(client.request("tagfreq F AAAAAAAAAA").unwrap().is_err());

    handle.shutdown();
}

/// `use` of a spilled name must not pay for the restore inline: it kicks
/// the restore onto a background thread (counted as a prefetch), answers
/// immediately, and the restore lands without any further request
/// touching the session.
#[test]
fn use_of_spilled_session_prefetches_in_the_background() {
    let (mut client, handle) = spawn(spill_config(temp_dir("prefetch")));

    // The 1-byte budget spills the session as soon as `open` returns.
    client.expect_ok("open p demo 42").expect("open");
    let stats = client.expect_ok("stats").expect("stats");
    assert!(stat(&stats, "sessions_spilled") >= 1, "{stats}");
    assert_eq!(stat(&stats, "sessions_prefetched"), 0, "{stats}");

    let msg = client.expect_ok("use p").expect("use answers immediately");
    assert!(msg.contains("using session p"), "{msg}");
    let stats = client.expect_ok("stats").expect("stats");
    assert!(stat(&stats, "sessions_prefetched") >= 1, "{stats}");

    // The restore completes with no session-bound request issued: only the
    // background thread can be doing the work (`stats` never touches the
    // session registry entry).
    let mut restored = 0;
    for _ in 0..200 {
        restored = stat(&client.expect_ok("stats").unwrap(), "sessions_restored");
        if restored >= 1 {
            break;
        }
        thread::sleep(Duration::from_millis(25));
    }
    assert!(restored >= 1, "background prefetch never landed");

    // And the prefetched session serves data correctly.
    assert!(client.request("tissues").unwrap().is_ok());
    let stats = client.expect_ok("stats").expect("stats");
    assert_eq!(stat(&stats, "spill_errors"), 0, "{stats}");

    handle.shutdown();
}

/// One randomized command, weighted toward reads with enough writes to
/// keep the spill server churning through evict/restore cycles.
fn random_command(rng: &mut SmallRng, iter: usize, step: usize, live: &mut Vec<String>) -> String {
    let tissues = ["brain", "breast", "prostate"];
    let target = |live: &Vec<String>, rng: &mut SmallRng| -> String {
        if live.is_empty() || rng.gen_bool(0.3) {
            "nosuch".to_string()
        } else {
            live[rng.gen_range(0..live.len())].clone()
        }
    };
    match rng.gen_range(0..8u32) {
        0 => "tissues".to_string(),
        1 => "lineage".to_string(),
        2 => "fascicles".to_string(),
        3 => {
            let name = format!("d{iter}_{step}");
            live.push(name.clone());
            format!(
                "dataset {name} {}",
                tissues[rng.gen_range(0..tissues.len())]
            )
        }
        4 => format!("comment {} \"pass {iter} step {step}\"", target(live, rng)),
        5 => {
            let name = target(live, rng);
            live.retain(|n| *n != name);
            format!("delete {name} --cascade")
        }
        6 => format!("show sumy {} 3", target(live, rng)),
        _ => format!("purity {}", target(live, rng)),
    }
}

/// The nightly battery: randomized interleavings against a server whose
/// session is evicted to disk between essentially every pair of commands
/// must stay byte-identical to a never-evicting server.
#[test]
#[ignore = "spill battery: hundreds of evict/restore cycles; run via scripts/ci-nightly.sh"]
fn spill_battery_randomized_interleavings_stay_byte_identical() {
    const INTERLEAVINGS: usize = 25;
    const STEPS: usize = 8;

    let (mut spilly, spill_handle) = spawn(spill_config(temp_dir("battery")));
    let (mut reference, ref_handle) = spawn(plain_config());
    for client in [&mut spilly, &mut reference] {
        client.expect_ok("open battery demo 11").expect("open");
    }

    for iter in 0..INTERLEAVINGS {
        let mut rng = SmallRng::seed_from_u64(0x5B111 + iter as u64);
        let mut live = Vec::new();
        let mut script = Vec::new();
        for step in 0..STEPS {
            script.push(random_command(&mut rng, iter, step, &mut live));
        }
        for name in live {
            script.push(format!("delete {name} --cascade"));
        }
        for line in script {
            let restored = spilly.request(&line).expect("spill transport");
            let direct = reference.request(&line).expect("plain transport");
            assert_eq!(
                restored, direct,
                "spill/restore changed the reply to {line:?} (interleaving {iter})"
            );
        }
    }

    let stats = spilly.expect_ok("stats").expect("stats");
    assert!(stat(&stats, "sessions_restored") >= 1, "{stats}");
    assert_eq!(stat(&stats, "spill_errors"), 0, "{stats}");

    spill_handle.shutdown();
    ref_handle.shutdown();
}
