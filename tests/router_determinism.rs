//! The router's determinism bar: a `gea-router` fronting {1, 2, 3}
//! `gea-server` backends must produce **byte-identical wire transcripts**
//! to a single-process server, for every verb — the scattered ones
//! (`mine`, `groups`, `populate <name> <sumy> <dataset>`), the replicated
//! writes (table algebra, simplex mining, `delete`), the session-affine
//! reads (`show`, `topgap`, `lineage`, `check`), and the error paths
//! (EPARSE, ENOTFOUND, ENOSESSION). A `rebalance` from 2 to 3 backends
//! mid-script must not perturb a single subsequent byte either.
//!
//! Transcripts are captured raw off the socket (status line + payload
//! lines), so this proves identity of the actual bytes on the wire, not
//! of some parsed form.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

use gea_router::{Router, RouterConfig, RouterHandle};
use gea_server::{Server, ServerConfig, ServerHandle};

fn spawn_backend() -> (SocketAddr, ServerHandle, JoinHandle<()>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        lock_timeout: Duration::from_secs(120),
        ..ServerConfig::default()
    })
    .expect("bind backend");
    let addr = server.local_addr();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("serve backend"));
    (addr, handle, join)
}

fn spawn_router(
    backends: Vec<String>,
    active: usize,
) -> (SocketAddr, RouterHandle, JoinHandle<()>) {
    let router = Router::bind(RouterConfig {
        addr: "127.0.0.1:0".to_string(),
        backends,
        active,
        health_interval: Duration::from_millis(100),
        ..RouterConfig::default()
    })
    .expect("bind router");
    let addr = router.local_addr();
    let handle = router.handle();
    let join = std::thread::spawn(move || router.run().expect("serve router"));
    (addr, handle, join)
}

/// One persistent connection; every request's raw reply frame (status
/// line plus payload lines, byte for byte) is appended to the transcript.
struct Transcript {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    text: String,
}

impl Transcript {
    fn connect(addr: SocketAddr) -> Transcript {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone().expect("clone stream");
        Transcript {
            reader: BufReader::new(stream),
            writer,
            text: String::new(),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send request");
        self.writer.flush().expect("flush request");
        let mut status = String::new();
        self.reader.read_line(&mut status).expect("read status");
        assert!(!status.is_empty(), "connection closed answering {line:?}");
        self.text.push_str(&status);
        if let Some(rest) = status.strip_prefix("OK ") {
            let k: usize = rest.trim().parse().expect("payload count");
            for _ in 0..k {
                let mut payload = String::new();
                self.reader.read_line(&mut payload).expect("read payload");
                self.text.push_str(&payload);
            }
        }
    }

    fn run(&mut self, script: &[&str]) {
        for line in script {
            self.send(line);
        }
    }
}

/// The full-pipeline script: every routing class is represented.
fn main_script() -> Vec<&'static str> {
    vec![
        // Session control (replicated) and its error path.
        "open s demo 42",
        "use nosuch",
        "use s",
        "sessions",
        // Table algebra: replicated writes.
        "dataset E brain",
        // Scatterable verbs: fascicle mining, control groups, populate.
        "mine E a 50 3 6",
        "fascicles",
        "purity a_1",
        "groups a_1",
        "populate P a_1CancerFasTbl E",
        // GAP algebra and reads: session-affine home backend.
        "gap g a_1CancerFasTbl a_1NormalTable",
        "topgap g 5",
        "show gap g 3",
        "show sumy a_1CancerFasTbl 3",
        // Pluggable mining backends: isa scatters, simplex replicates.
        "mine E m with isa seeds=6 t_tags=0.8 t_libs=0.8",
        "mine E sx with simplex k=2",
        // Contents-only delete, then lineage re-materialization.
        "delete P",
        "populate P",
        // Mixed intensional script: static analysis, no execution.
        "check dataset X brain ; mine X b 50 3 6 ; purity b_1",
        // Pure reads.
        "tissues",
        "cleaning",
        "lineage",
        // Error paths: relayed (ENOTFOUND) and raw-forwarded (EPARSE).
        "gap gx missing1 missing2",
        "bogus cmd",
        "mine",
        "ping",
    ]
}

/// Commands run *after* the 2→3 rebalance in the rebalance test; the
/// single-process reference runs them in the same breath.
fn follow_up_script() -> Vec<&'static str> {
    vec![
        "mine E a2 50 3 6",
        "groups a2_1",
        "gap h a2_1CancerFasTbl a2_1NormalTable",
        "topgap h 3",
        "show sumy a2_1NormalTable 2",
        "lineage",
    ]
}

#[test]
fn router_matches_single_server_over_1_2_3_backends() {
    let script = main_script();

    // Reference: one plain server.
    let (ref_addr, ref_handle, ref_join) = spawn_backend();
    let mut reference = Transcript::connect(ref_addr);
    reference.run(&script);
    ref_handle.shutdown();

    for n_backends in 1..=3usize {
        let mut backends = Vec::new();
        let mut handles = Vec::new();
        let mut joins = Vec::new();
        for _ in 0..n_backends {
            let (addr, handle, join) = spawn_backend();
            backends.push(addr.to_string());
            handles.push(handle);
            joins.push(join);
        }
        let (router_addr, router_handle, router_join) = spawn_router(backends, 0);

        let mut routed = Transcript::connect(router_addr);
        // The admin plane answers locally and is not part of the
        // transcript comparison.
        let mut admin = Transcript::connect(router_addr);
        admin.send("backends");
        assert_eq!(
            admin.text.lines().next(),
            Some(format!("OK {n_backends}").as_str()),
            "backends listing over {n_backends} backend(s)"
        );
        assert_eq!(admin.text.matches(" up").count(), n_backends);

        routed.run(&script);
        assert_eq!(
            routed.text, reference.text,
            "wire transcript diverged over {n_backends} backend(s)"
        );

        router_handle.shutdown();
        router_join.join().expect("router thread");
        for handle in &handles {
            handle.shutdown();
        }
        for join in joins {
            join.join().expect("backend thread");
        }
    }

    ref_join.join().expect("reference backend thread");
}

/// Satellite of the effect/cost-table work: `check` is classified by the
/// verb-effect table as a pure, cacheable read, so the router forwards it
/// to the session's home backend — but *every* replica must be able to
/// answer it with the same bytes, including the appended cost section
/// (whose seed is the session's live table sizes). This queries each
/// backend directly, bypassing the router's affinity, and also proves the
/// analysis mutates nothing: the lineage view of every replica is
/// byte-identical before and after the checks.
#[test]
fn check_diagnostics_are_byte_identical_on_every_backend_and_mutate_nothing() {
    let prelude = [
        "open s demo 42",
        "use s",
        "dataset E brain",
        "mine E a 50 3 6",
        "groups a_1",
    ];
    let checks = [
        // Clean pipeline: diagnostics plus the predicted-cost section.
        "check gap g a_1CancerFasTbl a_1NormalTable ; topgap g 3",
        // Clean pipeline over names the check itself defines.
        "check dataset X brain ; mine X b 50 3 6 ; purity b_1",
        // Error diagnostics: undefined names against the live session.
        "check purity nope ; groups also_nope",
        // Parameter-domain diagnostics (k% > 100, min_records = 0).
        "check mine E big 150 0 6",
    ];

    let mut backends = Vec::new();
    let mut handles = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..3 {
        let (addr, handle, join) = spawn_backend();
        backends.push(addr);
        handles.push(handle);
        joins.push(join);
    }
    let (router_addr, router_handle, router_join) =
        spawn_router(backends.iter().map(|a| a.to_string()).collect(), 0);

    // Replicate a session with real tables onto every backend.
    let mut routed = Transcript::connect(router_addr);
    routed.run(&prelude);

    // Each backend answers the same checks directly, with identical
    // lineage on both sides of the analysis.
    let mut check_replies: Vec<String> = Vec::new();
    let mut lineages: Vec<String> = Vec::new();
    for &addr in &backends {
        let mut direct = Transcript::connect(addr);
        direct.send("use s");
        direct.text.clear();
        direct.send("lineage");
        let lineage_before = std::mem::take(&mut direct.text);
        direct.run(&checks);
        let replies = std::mem::take(&mut direct.text);
        direct.send("lineage");
        assert_eq!(
            lineage_before, direct.text,
            "check mutated a replica on {addr}"
        );
        check_replies.push(replies);
        lineages.push(lineage_before);
    }
    for (i, reply) in check_replies.iter().enumerate() {
        assert_eq!(
            reply, &check_replies[0],
            "check diagnostics diverged between backend 0 and backend {i}"
        );
        assert_eq!(
            lineages[i], lineages[0],
            "replica lineage diverged between backend 0 and backend {i}"
        );
    }
    // The clean pipelines surfaced the cost interpretation; the dirty
    // ones surfaced diagnostics without one.
    assert!(
        check_replies[0].contains("predicted cost"),
        "{}",
        check_replies[0]
    );
    assert!(check_replies[0].contains("error[undefined-name]"));
    assert!(check_replies[0].contains("error[param-domain]"));

    router_handle.shutdown();
    router_join.join().expect("router thread");
    for handle in &handles {
        handle.shutdown();
    }
    for join in joins {
        join.join().expect("backend thread");
    }
}

#[test]
fn rebalance_2_to_3_preserves_byte_identity() {
    let before = main_script();
    let after = follow_up_script();

    // Reference: one plain server runs both halves back to back.
    let (ref_addr, ref_handle, ref_join) = spawn_backend();
    let mut reference = Transcript::connect(ref_addr);
    reference.run(&before);
    reference.run(&after);
    ref_handle.shutdown();

    // Router: 3 configured backends, only 2 active for the first half.
    let mut backends = Vec::new();
    let mut handles = Vec::new();
    let mut joins = Vec::new();
    for _ in 0..3 {
        let (addr, handle, join) = spawn_backend();
        backends.push(addr.to_string());
        handles.push(handle);
        joins.push(join);
    }
    let (router_addr, router_handle, router_join) = spawn_router(backends, 2);

    let mut routed = Transcript::connect(router_addr);
    routed.run(&before);

    // Grow to 3: the standby gets every session shipped as a snapshot
    // (the spill wire format) under a generation check.
    let mut admin = Transcript::connect(router_addr);
    admin.send("rebalance 3");
    assert!(
        admin.text.contains("rebalanced to 3 active backend(s)"),
        "unexpected rebalance reply: {}",
        admin.text
    );
    admin.text.clear();
    admin.send("backends");
    assert_eq!(admin.text.matches(" up").count(), 3, "{}", admin.text);
    assert!(!admin.text.contains("standby"), "{}", admin.text);

    // The second half now scatters over 3 backends; not one byte moves.
    routed.run(&after);
    assert_eq!(
        routed.text, reference.text,
        "transcript diverged after rebalancing 2 -> 3"
    );

    router_handle.shutdown();
    router_join.join().expect("router thread");
    for handle in &handles {
        handle.shutdown();
    }
    for join in joins {
        join.join().expect("backend thread");
    }
    ref_join.join().expect("reference backend thread");
}
