//! Full-scale validation on the thesis-shaped corpus (100 libraries, nine
//! tissue types, ~290k raw tags). Slow in debug builds, so ignored by
//! default; run with:
//!
//! ```text
//! cargo test --release --test thesis_scale -- --ignored
//! ```

use gea::cluster::FascicleParams;
use gea::core::session::GeaSession;
use gea::core::ExecConfig;
use gea::exec::{calculate_fascicles_sharded, form_control_groups_sharded};
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig};
use gea::sage::library::LibraryProperty;
use gea::sage::{NeoplasticState, TissueType};

#[test]
#[ignore = "thesis-scale corpus; run with --release -- --ignored"]
fn thesis_scale_pipeline() {
    let (corpus, truth) = generate(&GeneratorConfig::thesis_scale(42));
    assert_eq!(corpus.len(), 100);
    let stats = corpus.stats();
    // The §4.2 premises at scale: a raw union in the hundreds of thousands,
    // dominated by frequency-1 singletons.
    assert!(stats.union_tags > 200_000, "union {}", stats.union_tags);
    assert!(stats.freq1_fraction() > 0.8);

    let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
    let report = session.cleaning_report().clone();
    assert!(report.removed_fraction() > 0.7);
    assert!(report.kept_tags > 10_000, "kept {}", report.kept_tags);

    // Case 1 at scale: brain has 24 libraries like the real collection.
    session
        .create_tissue_dataset("Ebrain", &TissueType::Brain)
        .unwrap();
    assert_eq!(session.enum_table("Ebrain").unwrap().n_libraries(), 24);

    // §4.3.1.2's advice in action: libraries with "only a very small amount
    // of total tags" can never cluster into a fascicle (shot noise), so the
    // analyst removes them via a user-defined data set.
    let deep: Vec<String> = session
        .corpus()
        .iter()
        .filter(|(_, l)| l.meta.tissue == TissueType::Brain && l.total_tags() >= 16_000)
        .map(|(_, l)| l.meta.name.clone())
        .collect();
    assert!(
        deep.len() >= 8,
        "too few deep brain libraries: {}",
        deep.len()
    );
    let refs: Vec<&str> = deep.iter().map(|x| x.as_str()).collect();
    session.create_custom_dataset("deepBrain", &refs).unwrap();
    let table = session.enum_table("deepBrain").unwrap();
    let n_tags = table.n_tags();
    let n_cancer = table
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();

    // Sweep k and keep the *largest* pure cancerous fascicle with
    // outsiders, as the analyst browsing Figure 4.7's list would.
    let mut best: Option<String> = None;
    for pct in [85, 80, 75, 70] {
        let names = session
            .calculate_fascicles(
                "deepBrain",
                &format!("deep{pct}s"),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .unwrap();
        for f in names {
            let purity = session.purity_check(&f).unwrap();
            let size = session.fascicle(&f).unwrap().members.len();
            if purity.contains(&LibraryProperty::Cancer) && size < n_cancer {
                let better = best
                    .as_ref()
                    .map(|b| size > session.fascicle(b).unwrap().members.len())
                    .unwrap_or(true);
                if better {
                    best = Some(f);
                }
            }
        }
    }
    let fascicle = best.expect("pure cancerous fascicle at scale");
    let members = session.fascicle(&fascicle).unwrap().members.clone();
    let planted = truth.fascicle_members_of(&TissueType::Brain);
    // The recovered fascicle is dominated by the planted subtype: most of
    // its members are planted, and most planted deep members are found.
    let planted_in = members.iter().filter(|m| planted.contains(m)).count();
    assert!(
        planted_in * 2 > members.len(),
        "only {planted_in}/{} members planted",
        members.len()
    );
    assert!(
        planted_in >= 5,
        "only {planted_in} planted members recovered"
    );

    // The full gap pipeline completes at scale.
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .unwrap();
    session
        .create_gap("scale_gap", &groups.in_fascicle, &groups.contrast)
        .unwrap();
    assert!(!session.gap("scale_gap").unwrap().is_empty());
}

/// The same pipeline with mining and control-group aggregation routed
/// through the `gea-exec` sharded drivers, run side by side with a serial
/// session over the identical corpus: every intermediate (fascicle names,
/// SUMY definitions, control groups, the final GAP table) must be
/// byte-identical at thesis scale, not just on the unit corpora.
#[test]
#[ignore = "thesis-scale corpus; run with --release -- --ignored"]
fn thesis_scale_pipeline_sharded() {
    let (corpus, _) = generate(&GeneratorConfig::thesis_scale(42));
    let mut serial = GeaSession::open(corpus.clone(), &CleaningConfig::default()).unwrap();
    let mut sharded = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
    sharded.set_exec_config(ExecConfig {
        threads: 4,
        shards: 4,
    });

    let deep: Vec<String> = serial
        .corpus()
        .iter()
        .filter(|(_, l)| l.meta.tissue == TissueType::Brain && l.total_tags() >= 16_000)
        .map(|(_, l)| l.meta.name.clone())
        .collect();
    let refs: Vec<&str> = deep.iter().map(|x| x.as_str()).collect();
    for s in [&mut serial, &mut sharded] {
        s.create_custom_dataset("deepBrain", &refs).unwrap();
    }
    let table = serial.enum_table("deepBrain").unwrap();
    let n_tags = table.n_tags();
    let n_cancer = table
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();

    // The same k sweep the serial pipeline test does, mined on both
    // sessions; every sweep step must produce identical fascicles.
    let mut fascicle: Option<String> = None;
    for pct in [85, 80, 75, 70] {
        let params = FascicleParams {
            min_compact_attrs: n_tags * pct / 100,
            min_records: 3,
            batch_size: 6,
        };
        let base = format!("deep{pct}s");
        let names_serial = serial
            .calculate_fascicles("deepBrain", &base, 0.10, &params)
            .unwrap();
        let names_sharded =
            calculate_fascicles_sharded(&mut sharded, "deepBrain", &base, 0.10, &params).unwrap();
        assert_eq!(names_serial, names_sharded, "names diverged at pct {pct}");
        for name in &names_serial {
            assert_eq!(serial.sumy(name).unwrap(), sharded.sumy(name).unwrap());
            assert_eq!(
                serial.enum_table(name).unwrap().matrix,
                sharded.enum_table(name).unwrap().matrix
            );
        }
        // Only the sharded session noted executor activity. Mine shards
        // across *clusters*, so the shard count is min(4, fascicles
        // found) — at least one, not necessarily four.
        assert!(serial.drain_exec_events().is_empty());
        let events = sharded.drain_exec_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].op, "mine");
        assert!(events[0].shards >= 1, "no mine shards recorded");

        if fascicle.is_none() {
            fascicle = names_serial
                .iter()
                .find(|f| {
                    serial
                        .purity_check(f)
                        .map(|p| p.contains(&LibraryProperty::Cancer))
                        .unwrap_or(false)
                        && serial.fascicle(f).unwrap().members.len() < n_cancer
                })
                .cloned();
        }
        if fascicle.is_some() {
            break;
        }
    }

    // Finish the gap pipeline on a pure cancerous fascicle, both ways.
    let fascicle = fascicle.expect("pure cancerous fascicle at scale");
    let ga = serial
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .unwrap();
    let gb = form_control_groups_sharded(&mut sharded, &fascicle, LibraryProperty::Cancer).unwrap();
    assert_eq!(ga, gb);
    for n in [&ga.in_fascicle, &ga.outside_fascicle, &ga.contrast] {
        assert_eq!(serial.sumy(n).unwrap(), sharded.sumy(n).unwrap());
    }
    for s in [&mut serial, &mut sharded] {
        s.create_gap("scale_gap", &ga.in_fascicle, &ga.contrast)
            .unwrap();
    }
    assert_eq!(
        serial.gap("scale_gap").unwrap(),
        sharded.gap("scale_gap").unwrap()
    );
}
