//! Full-scale validation on the thesis-shaped corpus (100 libraries, nine
//! tissue types, ~290k raw tags). Slow in debug builds, so ignored by
//! default; run with:
//!
//! ```text
//! cargo test --release --test thesis_scale -- --ignored
//! ```

use gea::cluster::FascicleParams;
use gea::core::session::GeaSession;
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig};
use gea::sage::library::LibraryProperty;
use gea::sage::{NeoplasticState, TissueType};

#[test]
#[ignore = "thesis-scale corpus; run with --release -- --ignored"]
fn thesis_scale_pipeline() {
    let (corpus, truth) = generate(&GeneratorConfig::thesis_scale(42));
    assert_eq!(corpus.len(), 100);
    let stats = corpus.stats();
    // The §4.2 premises at scale: a raw union in the hundreds of thousands,
    // dominated by frequency-1 singletons.
    assert!(stats.union_tags > 200_000, "union {}", stats.union_tags);
    assert!(stats.freq1_fraction() > 0.8);

    let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
    let report = session.cleaning_report().clone();
    assert!(report.removed_fraction() > 0.7);
    assert!(report.kept_tags > 10_000, "kept {}", report.kept_tags);

    // Case 1 at scale: brain has 24 libraries like the real collection.
    session
        .create_tissue_dataset("Ebrain", &TissueType::Brain)
        .unwrap();
    assert_eq!(session.enum_table("Ebrain").unwrap().n_libraries(), 24);

    // §4.3.1.2's advice in action: libraries with "only a very small amount
    // of total tags" can never cluster into a fascicle (shot noise), so the
    // analyst removes them via a user-defined data set.
    let deep: Vec<String> = session
        .corpus()
        .iter()
        .filter(|(_, l)| l.meta.tissue == TissueType::Brain && l.total_tags() >= 16_000)
        .map(|(_, l)| l.meta.name.clone())
        .collect();
    assert!(
        deep.len() >= 8,
        "too few deep brain libraries: {}",
        deep.len()
    );
    let refs: Vec<&str> = deep.iter().map(|x| x.as_str()).collect();
    session.create_custom_dataset("deepBrain", &refs).unwrap();
    let table = session.enum_table("deepBrain").unwrap();
    let n_tags = table.n_tags();
    let n_cancer = table
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();

    // Sweep k and keep the *largest* pure cancerous fascicle with
    // outsiders, as the analyst browsing Figure 4.7's list would.
    let mut best: Option<String> = None;
    for pct in [85, 80, 75, 70] {
        let names = session
            .calculate_fascicles(
                "deepBrain",
                &format!("deep{pct}s"),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .unwrap();
        for f in names {
            let purity = session.purity_check(&f).unwrap();
            let size = session.fascicle(&f).unwrap().members.len();
            if purity.contains(&LibraryProperty::Cancer) && size < n_cancer {
                let better = best
                    .as_ref()
                    .map(|b| size > session.fascicle(b).unwrap().members.len())
                    .unwrap_or(true);
                if better {
                    best = Some(f);
                }
            }
        }
    }
    let fascicle = best.expect("pure cancerous fascicle at scale");
    let members = session.fascicle(&fascicle).unwrap().members.clone();
    let planted = truth.fascicle_members_of(&TissueType::Brain);
    // The recovered fascicle is dominated by the planted subtype: most of
    // its members are planted, and most planted deep members are found.
    let planted_in = members.iter().filter(|m| planted.contains(m)).count();
    assert!(
        planted_in * 2 > members.len(),
        "only {planted_in}/{} members planted",
        members.len()
    );
    assert!(
        planted_in >= 5,
        "only {planted_in} planted members recovered"
    );

    // The full gap pipeline completes at scale.
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .unwrap();
    session
        .create_gap("scale_gap", &groups.in_fascicle, &groups.contrast)
        .unwrap();
    assert!(!session.gap("scale_gap").unwrap().is_empty());
}
