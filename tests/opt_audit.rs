//! The optimizer rule audit, as a tier-1 test battery.
//!
//! Every shipped rewrite rule must be observationally equivalent to
//! literal serial execution — byte-identical wire replies (success *and*
//! error lines) and an identical post-run `lineage` world view — on every
//! point of the shards {1,2,3,7} × threads {1,4} grid. Every tombstoned
//! candidate must be *rejected* by the same oracle when applied on
//! purpose. The oracle lives in `gea::audit` so this battery and the
//! nightly `gea-opt-audit` bin share one implementation; the default tier
//! here is kick-tires (one seed, the query subset), and `GEA_OPT_AUDIT=full`
//! upgrades to the nightly enumeration in place.

use std::collections::BTreeSet;

use gea::audit::{self, AUDIT_GRID};

#[test]
fn shipped_rules_pass_the_observational_equivalence_audit() {
    let full = audit::full_tier();
    let report = audit::audit_shipped(full);
    assert!(
        report.divergences.is_empty(),
        "optimizer diverged from serial execution:\n{}",
        report.divergences.join("\n")
    );
    // The audit is vacuous unless every shipped rule actually fired.
    let shipped: BTreeSet<&str> = gea::opt::shipped_rules().into_iter().collect();
    assert_eq!(
        report.rules_fired, shipped,
        "rules fired in the audit pipeline != shipped rules"
    );
    assert_eq!(
        report.configs,
        AUDIT_GRID.len() * audit::audit_seeds(full).len()
    );
    assert!(report.rewrites > 0);
}

#[test]
fn tombstoned_rules_are_rejected_by_the_oracle() {
    let failures = audit::audit_tombstones();
    assert!(
        failures.is_empty(),
        "tombstoned rules survived the oracle:\n{}",
        failures.join("\n")
    );
    // The tombstones this PR documents stay in-tree, each with its
    // refutation recorded.
    assert_eq!(gea::opt::tombstoned_rules().len(), 3);
    for name in gea::opt::tombstoned_rules() {
        let rule = gea::opt::rule(name).expect("registered rule");
        match rule.status {
            gea::opt::RuleStatus::Tombstoned { refuted_by } => {
                assert!(!refuted_by.is_empty(), "{name} lacks a refutation note")
            }
            gea::opt::RuleStatus::Shipped => panic!("{name} listed as tombstoned"),
        }
    }
}
