//! End-to-end integration tests: the five case studies of thesis Chapter 4
//! run against a seeded synthetic corpus, asserting that the planted ground
//! truth is recovered.

use gea::cluster::FascicleParams;
use gea::core::compare::{CompareOp, CompareQuery};
use gea::core::session::GeaSession;
use gea::core::topgap::{series_means, PlotSeries, TopGapOrder};
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig, GroundTruth};
use gea::sage::library::LibraryProperty;
use gea::sage::{NeoplasticState, TissueType};

const SEED: u64 = 42;

fn open_session() -> (GeaSession, GroundTruth) {
    let (corpus, truth) = generate(&GeneratorConfig::demo(SEED));
    let session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
    (session, truth)
}

/// Mine a pure cancerous fascicle with outsiders for `tissue`, sweeping k.
fn pure_cancer_fascicle(
    session: &mut GeaSession,
    tissue: &TissueType,
    min_records: usize,
) -> Option<String> {
    let dataset = format!("E{}", tissue.name());
    if session.enum_table(&dataset).is_err() {
        session.create_tissue_dataset(&dataset, tissue).unwrap();
    }
    let n_tags = session.enum_table(&dataset).unwrap().n_tags();
    let n_cancer = session
        .enum_table(&dataset)
        .unwrap()
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();
    for pct in [60, 55, 50, 45, 40] {
        let names = session
            .calculate_fascicles(
                &dataset,
                &format!("{}{}_t", tissue.name(), pct),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records,
                    batch_size: 6,
                },
            )
            .unwrap();
        for f in names {
            let purity = session.purity_check(&f).unwrap();
            if purity.contains(&LibraryProperty::Cancer)
                && session.fascicle(&f).unwrap().members.len() < n_cancer
            {
                return Some(f);
            }
        }
    }
    None
}

#[test]
fn case_1_cancerous_vs_normal_brain() {
    let (mut session, truth) = open_session();
    let fascicle = pure_cancer_fascicle(&mut session, &TissueType::Brain, 3).expect("fascicle");

    // The mined fascicle must coincide with the planted one.
    let planted = truth.fascicle_members_of(&TissueType::Brain);
    let members = session.fascicle(&fascicle).unwrap().members.clone();
    assert_eq!(members.len(), planted.len());
    for m in &members {
        assert!(planted.contains(m), "{m} not planted");
    }

    // Control groups, GAP, and the Figure 4.2 / 4.3 marker shapes.
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .unwrap();
    session
        .create_gap("gap1", &groups.in_fascicle, &groups.contrast)
        .unwrap();

    // Figure 4.2: RIBOSOMAL PROTEIN L12, in-fascicle ≈ 275 vs normal ≈ 100.
    let rib = truth.tag_of_gene("RIBOSOMAL PROTEIN L12").unwrap();
    let points = session.tag_plot("Ebrain", rib, &fascicle).unwrap();
    let means = series_means(&points);
    let mean_of = |s: PlotSeries| {
        means
            .iter()
            .find(|&&(series, _, _)| series == s)
            .map(|&(_, m, _)| m)
            .unwrap()
    };
    let in_fas = mean_of(PlotSeries::CancerInFascicle);
    let normal = mean_of(PlotSeries::Normal);
    assert!(
        in_fas > 1.8 * normal,
        "Figure 4.2 shape lost: {in_fas} vs {normal}"
    );
    // And a positive gap in GAP1 for the marker if it is compact.
    if let Some(row) = session.gap("gap1").unwrap().row_for(rib) {
        assert!(row.gap().unwrap_or(0.0) > 0.0);
    }

    // Figure 4.3: ALPHA TUBULIN, in-fascicle ≈ 0 vs normal ≈ 90.
    let alpha = truth.tag_of_gene("ALPHA TUBULIN").unwrap();
    let points = session.tag_plot("Ebrain", alpha, &fascicle).unwrap();
    if !points.is_empty() {
        let means = series_means(&points);
        let in_fas = means
            .iter()
            .find(|&&(s, _, _)| s == PlotSeries::CancerInFascicle)
            .map(|&(_, m, _)| m)
            .unwrap();
        let normal = means
            .iter()
            .find(|&&(s, _, _)| s == PlotSeries::Normal)
            .map(|&(_, m, _)| m)
            .unwrap();
        assert!(
            in_fas < 0.3 * normal,
            "Figure 4.3 shape lost: {in_fas} vs {normal}"
        );
    }

    // The top gaps are dominated by planted cancer-differential or
    // signature genes.
    let top = session
        .calculate_top_gap("gap1", 10, TopGapOrder::LargestMagnitude)
        .unwrap();
    let mut planted_hits = 0;
    for row in session.gap(&top).unwrap().rows() {
        if let Some(gene) = truth.gene_of_tag(row.tag) {
            if gene.tissue == Some(TissueType::Brain) {
                planted_hits += 1;
            }
        }
    }
    assert!(
        planted_hits >= 7,
        "only {planted_hits}/10 top gaps map to planted brain genes"
    );
}

#[test]
fn case_2_inside_vs_outside_fascicle() {
    let (mut session, _) = open_session();
    let fascicle = pure_cancer_fascicle(&mut session, &TissueType::Brain, 3).expect("fascicle");
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .unwrap();
    session
        .create_gap("gap_nor", &groups.in_fascicle, &groups.contrast)
        .unwrap();
    session
        .create_gap("gap_cnif", &groups.in_fascicle, &groups.outside_fascicle)
        .unwrap();

    // §4.3.2's observation: gaps against normal exceed gaps against the
    // outside-fascicle cancer group.
    let mean_abs = |name: &str| {
        let g = session.gap(name).unwrap();
        let vals: Vec<f64> = g
            .rows()
            .iter()
            .filter_map(|r| r.gap())
            .map(f64::abs)
            .collect();
        assert!(!vals.is_empty(), "{name} has no non-NULL gaps");
        vals.iter().sum::<f64>() / vals.len() as f64
    };
    assert!(
        mean_abs("gap_nor") > mean_abs("gap_cnif"),
        "cancer-vs-normal gaps should exceed inside-vs-outside gaps"
    );
}

#[test]
fn case_3_consistent_cancer_genes_across_tissues() {
    let (mut session, truth) = open_session();
    let mut gaps = Vec::new();
    for tissue in [TissueType::Brain, TissueType::Breast] {
        let fascicle = pure_cancer_fascicle(&mut session, &tissue, 2).expect("fascicle");
        let groups = session
            .form_control_groups(&fascicle, LibraryProperty::Cancer)
            .unwrap();
        let name = format!("{}_gap", tissue.name());
        session
            .create_gap(&name, &groups.in_fascicle, &groups.contrast)
            .unwrap();
        gaps.push(name);
    }
    session
        .compare_gaps(
            "case3",
            &gaps[0],
            &gaps[1],
            CompareOp::Intersect,
            CompareQuery::LowerInAInBoth,
        )
        .unwrap();
    let result = session.gap("case3").unwrap();
    // Every surviving tag is genuinely negative in both columns.
    for row in result.rows() {
        assert!(row.gaps[0].unwrap() < 0.0);
        assert!(row.gaps[1].unwrap() < 0.0);
        // Cross-tissue tags must be housekeeping genes or unplanted noise —
        // tissue-specific genes are (near-)absent in the other tissue.
        if let Some(gene) = truth.gene_of_tag(row.tag) {
            // A tissue-specific gene can only appear here via its faint
            // foreign leak; its home-gap must then be the negative one.
            let _ = gene;
        }
    }
    // Queries 6–13 are refused under Difference.
    assert!(session
        .compare_gaps(
            "refused",
            &gaps[0],
            &gaps[1],
            CompareOp::Difference,
            CompareQuery::HigherInAOfSecondOnly,
        )
        .is_err());
}

#[test]
fn case_4_tissue_unique_genes() {
    let (mut session, truth) = open_session();
    let mut gaps = Vec::new();
    for tissue in [TissueType::Brain, TissueType::Breast] {
        let fascicle = pure_cancer_fascicle(&mut session, &tissue, 2).expect("fascicle");
        let groups = session
            .form_control_groups(&fascicle, LibraryProperty::Cancer)
            .unwrap();
        let name = format!("{}_gap", tissue.name());
        session
            .create_gap(&name, &groups.in_fascicle, &groups.contrast)
            .unwrap();
        gaps.push(name);
    }
    session
        .compare_gaps(
            "case4",
            &gaps[0],
            &gaps[1],
            CompareOp::Difference,
            CompareQuery::LowerInAInBoth,
        )
        .unwrap();
    let unique = session.gap("case4").unwrap();
    // No tag of the brain-unique result may appear in the breast GAP table.
    let breast = session.gap(&gaps[1]).unwrap();
    for row in unique.rows() {
        assert!(breast.row_for(row.tag).is_none());
        assert!(row.gap().unwrap() < 0.0);
    }
    // A healthy share maps to brain-planted genes (the remainder are tags
    // simply absent from the breast fascicle's compact set — the operator
    // is set-difference on tags, not a biological filter).
    let brain_specific = unique
        .rows()
        .iter()
        .filter(|r| {
            truth
                .gene_of_tag(r.tag)
                .map(|g| g.tissue == Some(TissueType::Brain))
                .unwrap_or(false)
        })
        .count();
    assert!(
        brain_specific * 3 >= unique.len(),
        "{brain_specific}/{} unique tags are brain-planted",
        unique.len()
    );
    // And at least one of them is a planted down-regulated brain cancer
    // gene — the kind of discovery Case 4 is after.
    let has_down_gene = unique.rows().iter().any(|r| {
        truth.gene_of_tag(r.tag).is_some_and(|g| {
            g.tissue == Some(TissueType::Brain)
                && g.response == gea::sage::generate::CancerResponse::Down
        })
    });
    assert!(
        has_down_gene,
        "no planted down-regulated brain gene surfaced"
    );
}

#[test]
fn case_5_custom_dataset_verification() {
    let (mut session, _) = open_session();
    let fascicle = pure_cancer_fascicle(&mut session, &TissueType::Brain, 3).expect("fascicle");
    let members = session.fascicle(&fascicle).unwrap().members.clone();

    // Rebuild the analysis on a user-defined data set without one normal
    // library; the same fascicle must still be minable.
    let keep: Vec<String> = session
        .base()
        .libraries()
        .iter()
        .filter(|m| m.tissue == TissueType::Brain)
        .map(|m| m.name.clone())
        .filter(|n| !n.ends_with("N09"))
        .collect();
    let refs: Vec<&str> = keep.iter().map(|s| s.as_str()).collect();
    session.create_custom_dataset("newBrain", &refs).unwrap();
    let n_tags = session.enum_table("newBrain").unwrap().n_tags();
    let mut recovered = false;
    for pct in [60, 55, 50, 45, 40] {
        let names = session
            .calculate_fascicles(
                "newBrain",
                &format!("nb{pct}"),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .unwrap();
        for f in names {
            let m = session.fascicle(&f).unwrap().members.clone();
            if m == members {
                recovered = true;
            }
        }
        if recovered {
            break;
        }
    }
    assert!(recovered, "fascicle not stable under library removal");
}

#[test]
fn cleaning_statistics_match_thesis_shape() {
    let (session, _) = open_session();
    let report = session.cleaning_report();
    // §4.2: the union shrinks dramatically (thesis: 350k → 60k, i.e. ~83%
    // removed); most unique tags are frequency-1 error candidates
    // (thesis: > 80%).
    assert!(
        report.removed_fraction() > 0.8,
        "only {:.0}% of tags removed",
        100.0 * report.removed_fraction()
    );
    assert!(
        report.freq1_union_fraction > 0.8,
        "freq-1 fraction {:.2}",
        report.freq1_union_fraction
    );
    // Per-library removal in a plausible band (thesis: 5–15% of each
    // library's distinct tags; our singleton-heavy generator sits higher
    // but every library must lose a nontrivial, bounded share).
    for frac in &report.removed_fraction_per_library {
        assert!(
            (0.05..0.95).contains(frac),
            "per-library removal {frac} out of band"
        );
    }
    // Normalization: every library totals 300,000.
    for lib in session.base().matrix.library_ids() {
        let total = session.base().matrix.library_total(lib);
        assert!((total - 300_000.0).abs() < 1e-6);
    }
}

#[test]
fn lineage_records_the_whole_pipeline() {
    let (mut session, _) = open_session();
    let fascicle = pure_cancer_fascicle(&mut session, &TissueType::Brain, 3).expect("fascicle");
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .unwrap();
    session
        .create_gap("g", &groups.in_fascicle, &groups.contrast)
        .unwrap();
    session
        .calculate_top_gap("g", 5, TopGapOrder::HighestValue)
        .unwrap();

    let tree = session.lineage().render_tree();
    for name in ["SAGE", "Ebrain", &fascicle, "g", "g_5"] {
        assert!(tree.contains(name), "lineage tree missing {name}:\n{tree}");
    }
    // The GAP node appears under both SUMY parents.
    assert!(tree.matches("g_5").count() >= 2);

    // Tables are materialized relationally.
    assert!(session.database().exists("g"));
    assert!(session.database().exists("g_5"));
    assert!(session.database().exists(&groups.in_fascicle));
}
