//! End-to-end tests of the static-analysis wiring in `gea-cli`:
//! `--check` linting (human and machine renderings), the batch pre-flight
//! gate (refuses ill-typed scripts, transparent for clean ones), and
//! line-anchored executor errors in batch mode.

use std::io::Write;
use std::path::Path;
use std::process::{Command, Output, Stdio};

fn gea_cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gea-cli"))
}

fn example(name: &str) -> String {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples/scripts")
        .join(name)
        .display()
        .to_string()
}

fn run_stdin(args: &[&str], input: &str) -> Output {
    let mut child = gea_cli()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gea-cli");
    child
        .stdin
        .as_mut()
        .expect("stdin")
        .write_all(input.as_bytes())
        .expect("write script");
    child.wait_with_output().expect("gea-cli output")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("utf-8 stdout")
}

fn stderr(out: &Output) -> String {
    String::from_utf8(out.stderr.clone()).expect("utf-8 stderr")
}

#[test]
fn check_flags_every_defect_class_in_the_fixture() {
    let out = gea_cli()
        .args(["--check", &example("ill_typed.gql")])
        .output()
        .expect("run --check");
    assert_eq!(out.status.code(), Some(1), "static errors must exit 1");
    let text = stdout(&out);
    for code in [
        "mine-required",
        "undefined-name",
        "world-mismatch",
        "redefinition",
        "param-domain",
        "dead-assignment",
    ] {
        assert!(
            text.contains(&format!("[{code}]")),
            "missing {code} in:\n{text}"
        );
    }
    // Diagnostics are anchored to 1-based script lines.
    assert!(text.contains("line 13: error[mine-required]"), "{text}");
    assert!(text.contains("line 28: warning[dead-assignment]"), "{text}");
}

#[test]
fn check_passes_the_case_study() {
    let out = gea_cli()
        .args(["--check", &example("brain_case_study.gql")])
        .output()
        .expect("run --check");
    assert!(out.status.success(), "clean script must exit 0");
    assert!(stdout(&out).contains("clean"), "{}", stdout(&out));
}

#[test]
fn machine_rendering_is_json_lines() {
    let out = gea_cli()
        .args(["--check", &example("ill_typed.gql"), "--machine"])
        .output()
        .expect("run --check --machine");
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(!text.trim().is_empty());
    for line in text.lines() {
        assert!(
            line.starts_with(r#"{"line":"#) && line.ends_with('}'),
            "not a JSON object line: {line}"
        );
        assert!(line.contains(r#""severity":"#), "{line}");
        assert!(line.contains(r#""code":"#), "{line}");
        assert!(line.contains(r#""message":"#), "{line}");
    }
}

#[test]
fn preflight_refuses_static_errors_and_no_preflight_overrides() {
    // Gated: refused before any command executes.
    let out = gea_cli()
        .args(["--script", &example("ill_typed.gql")])
        .output()
        .expect("run gated");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        out.stdout.is_empty(),
        "nothing may execute: {}",
        stdout(&out)
    );
    let err = stderr(&out);
    assert!(err.contains("preflight"), "{err}");
    assert!(err.contains("error[world-mismatch]"), "{err}");

    // Ungated: runs until the first runtime failure, anchored to its line.
    let out = gea_cli()
        .args(["--script", &example("ill_typed.gql"), "--no-preflight"])
        .output()
        .expect("run ungated");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("ERR line 13:"),
        "runtime errors carry script lines: {}",
        stderr(&out)
    );
    assert!(!out.stdout.is_empty(), "lines before the failure ran");
}

#[test]
fn gate_is_transparent_for_clean_scripts() {
    let script = "load-demo 42\ndataset Eb brain\ntissues\nlineage\n";
    let gated = run_stdin(&[], script);
    let ungated = run_stdin(&["--no-preflight"], script);
    assert!(gated.status.success(), "{}", stderr(&gated));
    assert!(ungated.status.success(), "{}", stderr(&ungated));
    assert_eq!(
        stdout(&gated),
        stdout(&ungated),
        "the pre-flight gate must not change a clean script's output"
    );
    assert!(stdout(&gated).contains("Eb"));
}

#[test]
fn case_study_executes_byte_identically_with_and_without_the_gate() {
    let path = example("brain_case_study.gql");
    let gated = gea_cli()
        .args(["--script", &path])
        .output()
        .expect("run gated");
    let ungated = gea_cli()
        .args(["--script", &path, "--no-preflight"])
        .output()
        .expect("run ungated");
    assert!(gated.status.success(), "{}", stderr(&gated));
    assert!(ungated.status.success(), "{}", stderr(&ungated));
    assert_eq!(gated.stdout, ungated.stdout);
    // The full pipeline really ran: mined fascicle, control-group gaps,
    // a hand-invoked populate, and lineage provenance all reported.
    let text = stdout(&gated);
    for needle in ["f_1", "g1_5", "(populate)", "raw union"] {
        assert!(text.contains(needle), "missing {needle} in:\n{text}");
    }
}

#[test]
fn batch_errors_without_static_cause_still_carry_lines() {
    // Statically clean (checker cannot know mine yields too few records
    // at k% = 100 with a huge min), but fails at runtime: the error is
    // anchored to the failing script line.
    let script = "load-demo 42\ndataset Eb brain\nmine Eb f 100 19 6\npurity f_1\n";
    let check = run_stdin(&["--check", "/dev/stdin"], script);
    assert!(check.status.success(), "{}", stdout(&check));
    let out = run_stdin(&[], script);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("ERR line 4:"),
        "expected a line-4 runtime error: {}",
        stderr(&out)
    );
}
