//! Property-based tests on the core invariants, spanning crates.

use proptest::prelude::*;

use gea::cluster::dataset::Dataset;
use gea::cluster::{mine_exact, mine_greedy, FascicleParams, ToleranceVector};
use gea::core::gap::{diff, gap_value, GapRow, GapTable};
use gea::core::interval::{AllenRelation, Interval};
use gea::core::populate::{populate_columnar, populate_indexed, populate_scan, PopulateIndex};
use gea::core::relational::{
    gap_from_relation, gap_to_relation, sumy_from_relation, sumy_to_relation,
};
use gea::core::setops::{gap_intersect, gap_minus, gap_union};
use gea::core::sumy::{aggregate, SumyRow, SumyTable};
use gea::core::EnumTable;
use gea::sage::corpus::library_meta;
use gea::sage::library::{NeoplasticState, TissueSource};
use gea::sage::tag::{Tag, TagUniverse, TAG_SPACE};
use gea::sage::{ExpressionMatrix, TissueType};

// ---------------------------------------------------------------- tag codec

proptest! {
    #[test]
    fn tag_roundtrips_through_string(code in 0u32..TAG_SPACE) {
        let tag = Tag::from_code(code).unwrap();
        let s = tag.to_string();
        prop_assert_eq!(s.parse::<Tag>().unwrap(), tag);
        prop_assert_eq!(tag.code(), code);
    }

    #[test]
    fn tag_order_matches_string_order(a in 0u32..TAG_SPACE, b in 0u32..TAG_SPACE) {
        let ta = Tag::from_code(a).unwrap();
        let tb = Tag::from_code(b).unwrap();
        prop_assert_eq!(ta.cmp(&tb), ta.to_string().cmp(&tb.to_string()));
    }
}

// ---------------------------------------------------------- Allen relations

fn proper_interval() -> impl Strategy<Value = Interval> {
    (-1000.0f64..1000.0, 0.001f64..500.0).prop_map(|(lo, w)| Interval::new(lo, lo + w).unwrap())
}

proptest! {
    #[test]
    fn allen_inverse_consistency(a in proper_interval(), b in proper_interval()) {
        prop_assert_eq!(a.relation(b).inverse(), b.relation(a));
    }

    #[test]
    fn allen_equals_iff_same_endpoints(a in proper_interval()) {
        prop_assert_eq!(a.relation(a), AllenRelation::Equals);
    }

    #[test]
    fn allen_intersects_is_symmetric(a in proper_interval(), b in proper_interval()) {
        prop_assert_eq!(a.intersects(b), b.intersects(a));
        // intersects ⟺ neither before nor after.
        let rel = a.relation(b);
        let disjoint = rel == AllenRelation::Before || rel == AllenRelation::After;
        prop_assert_eq!(a.intersects(b), !disjoint);
    }

    #[test]
    fn allen_hull_contains_both(a in proper_interval(), b in proper_interval()) {
        let h = a.hull(b);
        prop_assert!(h.lo() <= a.lo() && h.hi() >= a.hi());
        prop_assert!(h.lo() <= b.lo() && h.hi() >= b.hi());
    }
}

// ----------------------------------------------------------------- gap math

fn sumy_row(tag_code: u32, avg: f64, sd: f64) -> SumyRow {
    SumyRow {
        tag: Tag::from_code(tag_code % TAG_SPACE).unwrap(),
        tag_no: tag_code % 1000,
        range: Interval::spanning(avg - 2.0 * sd, avg + 2.0 * sd),
        average: avg,
        std_dev: sd,
        extras: Default::default(),
    }
}

proptest! {
    #[test]
    fn gap_value_is_antisymmetric(
        avg1 in -500.0f64..500.0, sd1 in 0.0f64..50.0,
        avg2 in -500.0f64..500.0, sd2 in 0.0f64..50.0,
    ) {
        let a = sumy_row(1, avg1, sd1);
        let b = sumy_row(1, avg2, sd2);
        match (gap_value(&a, &b), gap_value(&b, &a)) {
            (Some(x), Some(y)) => prop_assert_eq!(x, -y),
            (None, None) => {}
            other => prop_assert!(false, "nullness differs: {:?}", other),
        }
    }

    #[test]
    fn gap_null_iff_bands_touch(
        avg1 in -500.0f64..500.0, sd1 in 0.0f64..50.0,
        avg2 in -500.0f64..500.0, sd2 in 0.0f64..50.0,
    ) {
        let a = sumy_row(1, avg1, sd1);
        let b = sumy_row(1, avg2, sd2);
        let (hi, lo) = if avg1 >= avg2 { (&a, &b) } else { (&b, &a) };
        let separated = (hi.average - hi.std_dev) - (lo.average + lo.std_dev) > 0.0;
        prop_assert_eq!(gap_value(&a, &b).is_some(), separated);
    }

    #[test]
    fn gap_magnitude_matches_band_separation(
        avg1 in -500.0f64..500.0, sd1 in 0.0f64..50.0,
        avg2 in -500.0f64..500.0, sd2 in 0.0f64..50.0,
    ) {
        let a = sumy_row(1, avg1, sd1);
        let b = sumy_row(1, avg2, sd2);
        if let Some(g) = gap_value(&a, &b) {
            let expected = (avg1 - avg2).abs() - sd1 - sd2;
            prop_assert!((g.abs() - expected).abs() < 1e-9);
            // The sign tracks which argument has the higher average.
            prop_assert_eq!(g > 0.0, avg1 >= avg2);
        }
    }
}

// ------------------------------------------------------------------ set ops

fn gap_table(name: &str, entries: &[(u32, Option<f64>)]) -> GapTable {
    let mut seen = std::collections::HashSet::new();
    let rows: Vec<GapRow> = entries
        .iter()
        .filter(|(code, _)| seen.insert(*code % TAG_SPACE))
        .map(|&(code, gap)| GapRow {
            tag: Tag::from_code(code % TAG_SPACE).unwrap(),
            tag_no: code % 1000,
            gaps: vec![gap],
        })
        .collect();
    GapTable::new(name, vec!["Gap".to_string()], rows)
}

fn gap_entries() -> impl Strategy<Value = Vec<(u32, Option<f64>)>> {
    prop::collection::vec((0u32..64, prop::option::of(-100.0f64..100.0)), 0..12)
}

proptest! {
    #[test]
    fn setop_partition_law(a in gap_entries(), b in gap_entries()) {
        let ga = gap_table("a", &a);
        let gb = gap_table("b", &b);
        let minus = gap_minus("m", &ga, &gb);
        let inter = gap_intersect("i", &ga, &gb);
        let union = gap_union("u", &ga, &gb);
        // minus + intersect partition the first table's tags.
        prop_assert_eq!(minus.len() + inter.len(), ga.len());
        // |union| = |a| + |b| − |intersect|.
        prop_assert_eq!(union.len(), ga.len() + gb.len() - inter.len());
        // Every tag of the intersection is in both inputs; of the minus, in
        // a only.
        for r in inter.rows() {
            prop_assert!(ga.row_for(r.tag).is_some() && gb.row_for(r.tag).is_some());
        }
        for r in minus.rows() {
            prop_assert!(ga.row_for(r.tag).is_some() && gb.row_for(r.tag).is_none());
        }
    }

    #[test]
    fn setop_self_identities(a in gap_entries()) {
        let ga = gap_table("a", &a);
        prop_assert!(gap_minus("m", &ga, &ga).is_empty());
        prop_assert_eq!(gap_intersect("i", &ga, &ga).len(), ga.len());
        prop_assert_eq!(gap_union("u", &ga, &ga).len(), ga.len());
    }

    #[test]
    fn intersect_tag_sets_commute(a in gap_entries(), b in gap_entries()) {
        let ga = gap_table("a", &a);
        let gb = gap_table("b", &b);
        let ab: Vec<Tag> = gap_intersect("i", &ga, &gb).project_tags();
        let ba: Vec<Tag> = gap_intersect("i", &gb, &ga).project_tags();
        prop_assert_eq!(ab, ba);
    }
}

// ------------------------------------------------------- populate invariants

fn small_enum(values: Vec<Vec<f64>>) -> EnumTable {
    let n_libs = values[0].len();
    let universe =
        TagUniverse::from_tags((0..values.len() as u32).map(|i| Tag::from_code(i * 37).unwrap()));
    let libs = (0..n_libs)
        .map(|i| {
            library_meta(
                &format!("L{i}"),
                TissueType::Brain,
                NeoplasticState::Normal,
                TissueSource::BulkTissue,
            )
        })
        .collect();
    EnumTable::new("E", ExpressionMatrix::from_rows(universe, libs, values))
}

fn matrix_values() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..8, 1usize..10).prop_flat_map(|(n_tags, n_libs)| {
        prop::collection::vec(prop::collection::vec(0.0f64..100.0, n_libs), n_tags)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn populate_indexed_equals_scan(
        values in matrix_values(),
        subset_mask in prop::collection::vec(any::<bool>(), 10),
        m in 0usize..6,
    ) {
        let table = small_enum(values);
        // Build a SUMY from a subset of libraries.
        let ids: Vec<_> = table
            .matrix
            .library_ids()
            .enumerate()
            .filter(|(i, _)| subset_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, id)| id)
            .collect();
        prop_assume!(!ids.is_empty());
        let sub = table.with_libraries("sub", &ids);
        let sumy = aggregate("def", &sub.matrix);

        let (scan_hits, _) = populate_scan(&sumy, &table);
        // The defining libraries always qualify.
        for id in &ids {
            prop_assert!(scan_hits.contains(id));
        }
        // Columnar and index-assisted evaluation return the same answer
        // for any index budget.
        let (columnar_hits, _) = populate_columnar(&sumy, &table);
        prop_assert_eq!(&columnar_hits, &scan_hits);
        let index = PopulateIndex::build_top_entropy(&table, m, 8);
        let (indexed_hits, _) = populate_indexed(&sumy, &table, &index);
        prop_assert_eq!(indexed_hits, scan_hits);
    }

    #[test]
    fn aggregate_diff_self_is_all_null(values in matrix_values()) {
        let table = small_enum(values);
        let sumy = aggregate("s", &table.matrix);
        let gap = diff("g", &sumy, &sumy);
        for row in gap.rows() {
            prop_assert!(row.gap().is_none(), "self-diff must be NULL at {}", row.tag);
        }
    }
}

// ------------------------------------------------------ fascicle invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn greedy_fascicles_verify_and_match_exact(
        rows in prop::collection::vec(
            prop::collection::vec(0.0f64..50.0, 3),
            2usize..8,
        ),
        frac in 0.05f64..0.5,
        k in 1usize..3,
    ) {
        let data = Dataset::from_records(&rows);
        let tol = ToleranceVector::from_width_fraction(&data, frac);
        let params = FascicleParams {
            min_compact_attrs: k,
            min_records: 2,
            batch_size: 3,
        };
        let greedy = mine_greedy(&data, &tol, &params);
        let exact = mine_exact(&data, &tol, &params);
        for f in &greedy {
            // Invariant: reported compact attrs really are compact.
            prop_assert!(f.verify(&data, &tol));
            prop_assert!(f.compact_attrs.len() >= k);
            prop_assert!(f.len() >= 2);
            // Every greedy fascicle is a qualifying set, hence a subset of
            // some maximal exact fascicle.
            prop_assert!(
                exact.iter().any(|e| f.records.iter().all(|r| e.records.contains(r))),
                "greedy fascicle {:?} not within any exact maximal fascicle",
                f.records
            );
        }
    }
}

// ------------------------------------------------- relational roundtripping

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sumy_relation_roundtrip(
        rows in prop::collection::vec(
            (0u32..1000, -100.0f64..100.0, 0.0f64..20.0),
            0..10,
        ),
    ) {
        let mut seen = std::collections::HashSet::new();
        let sumy_rows: Vec<SumyRow> = rows
            .iter()
            .filter(|(code, _, _)| seen.insert(*code))
            .map(|&(code, avg, sd)| sumy_row(code, avg, sd))
            .collect();
        let sumy = SumyTable::new("s", sumy_rows);
        let relation = sumy_to_relation(&sumy).unwrap();
        let back = sumy_from_relation("s", &relation).unwrap();
        prop_assert_eq!(back, sumy);
    }

    #[test]
    fn gap_relation_roundtrip(entries in gap_entries()) {
        let gap = gap_table("g", &entries);
        let relation = gap_to_relation(&gap).unwrap();
        let back = gap_from_relation("g", &relation).unwrap();
        prop_assert_eq!(back.rows(), gap.rows());
    }
}
