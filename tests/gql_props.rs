//! Parser fuzz battery for the GQL grammar: the parser must never panic —
//! not on arbitrary strings, not on mutated or truncated real commands —
//! and every command it does accept must round-trip through its canonical
//! spelling to the same parse (the response cache keys on `canonical()`,
//! so a non-fixpoint canonicalization would split or alias cache entries).
//!
//! The optimizer's algebraic canonicalization (`gea::opt`) rides the same
//! battery: whatever the parser accepts — including mutated and truncated
//! spellings — `canonicalize_cmd`/`cache_key`/`optimize` must not panic,
//! and canonicalization must be a fixpoint (optimized cache keys would
//! otherwise split or alias entries, breaking cross-spelling unification).

use proptest::prelude::*;

use gea::server::gql::{parse, tokenize, Request};

/// A corpus of valid spellings covering every verb and arm of the grammar,
/// used as mutation seeds: bit-flipped, spliced, and truncated variants of
/// *almost-valid* input exercise far deeper parse paths than pure noise.
const SEEDS: &[&str] = &[
    "help",
    "quit",
    "ping",
    "stats",
    "shutdown",
    "gen-corpus 42 /tmp/corpus",
    "load-demo 42",
    "load-dir /tmp/corpus",
    "open shared demo 42",
    "open shared dir /tmp/corpus",
    "use shared",
    "close shared",
    "sessions",
    "tissues",
    "cleaning",
    "lineage",
    "library 3",
    "library SAGE_brain_C00",
    "dataset Ebrain brain",
    "custom C SAGE_brain_C00 SAGE_brain_C01",
    "select S Ebrain SAGE_brain_C00",
    "project P Ebrain SAGE_brain_C00",
    "mine Ebrain f 50 3 6",
    "fascicles",
    "purity f_1",
    "groups f_1",
    "gap g1 f_1CancerFasTbl f_1NormalTable",
    "topgap g1 5",
    "compare cmp g1 g2 intersect 2",
    "compare cmp g1 g2 union 13",
    "compare cmp g1 g2 difference 4",
    "show gap g1 3",
    "show sumy f_1 5",
    "plot Ebrain f_1",
    "tagfreq SAGE TTTTTTTTTT",
    "xprofiler Ebrain",
    "export g1 /tmp/g1.csv",
    "comment g1 \"two words\"",
    "comment g1 \"an escaped \\\" quote\"",
    "delete g1",
    "delete --cascade Ebrain",
    "populate P",
    "populate P f_1 Ebrain",
    "save /tmp/session",
    "load /tmp/session",
    "check dataset E brain ; mine E f 50 3 6 ; purity f_1",
    "check comment g1 \"quoted ; separator\"",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pure noise: any printable-ASCII string (quotes, backslashes, and
    /// `;` included), parsed, never panics.
    #[test]
    fn parser_never_panics_on_arbitrary_strings(line in "[ -~]{0,120}") {
        let _ = parse(&line);
        let _ = tokenize(&line);
    }

    /// Arbitrary bytes (through lossy UTF-8): never panics, even with
    /// embedded NULs, replacement chars, and control bytes.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..120),
    ) {
        let line = String::from_utf8_lossy(&bytes);
        let _ = parse(&line);
        let _ = tokenize(&line);
    }

    /// Mutated real commands: substitute one byte, splice two seeds, or
    /// truncate — almost-valid input must degrade to `Err`, never panic.
    #[test]
    fn parser_never_panics_on_mutated_commands(
        idx in 0usize..SEEDS.len(),
        other in 0usize..SEEDS.len(),
        pos in 0usize..128,
        byte in any::<u8>(),
        cut in 0usize..128,
    ) {
        let seed = SEEDS[idx];

        // One-byte substitution.
        let mut bytes = seed.as_bytes().to_vec();
        let p = pos % bytes.len().max(1);
        if p < bytes.len() {
            bytes[p] = byte;
        }
        let _ = parse(&String::from_utf8_lossy(&bytes));

        // Truncation (at a char boundary; the corpus is ASCII).
        let cut = cut % (seed.len() + 1);
        let _ = parse(&seed[..cut]);

        // Splice: head of one seed, tail of another.
        let tail = SEEDS[other];
        let spliced = format!("{} {}", &seed[..cut], &tail[tail.len() - tail.len().min(cut)..]);
        let _ = parse(&spliced);
    }

    /// Every accepted command round-trips: `parse → canonical → parse`
    /// yields the same command, and `canonical` is a fixpoint.
    #[test]
    fn accepted_commands_round_trip_canonically(idx in 0usize..SEEDS.len()) {
        if let Ok(Some(Request::Gql(cmd))) = parse(SEEDS[idx]) {
            let canon = cmd.canonical();
            let reparsed = match parse(&canon) {
                Ok(Some(Request::Gql(c))) => c,
                other => {
                    return Err(TestCaseError::fail(format!(
                        "canonical {canon:?} did not re-parse: {other:?}"
                    )))
                }
            };
            prop_assert_eq!(&reparsed, &cmd, "round-trip changed the command");
            prop_assert_eq!(reparsed.canonical(), canon, "canonical is not a fixpoint");
        }
    }

    /// Optimizer canonicalization over the same mutation battery the
    /// parser endures: noise, one-byte substitutions, and truncations that
    /// happen to parse must canonicalize without panicking, the
    /// canonicalization must be a fixpoint, and the cache key must be
    /// invariant under it.
    #[test]
    fn canonicalization_never_panics_and_is_a_fixpoint(
        idx in 0usize..SEEDS.len(),
        pos in 0usize..128,
        byte in any::<u8>(),
        cut in 0usize..128,
        noise in "[ -~]{0,120}",
    ) {
        let seed = SEEDS[idx];
        let mut bytes = seed.as_bytes().to_vec();
        let p = pos % bytes.len().max(1);
        if p < bytes.len() {
            bytes[p] = byte;
        }
        let mutated = String::from_utf8_lossy(&bytes).into_owned();
        let truncated = &seed[..cut % (seed.len() + 1)];
        for line in [seed, mutated.as_str(), truncated, noise.as_str()] {
            if let Ok(Some(Request::Gql(cmd))) = parse(line) {
                let canon = gea::opt::canonicalize_cmd(&cmd);
                prop_assert_eq!(
                    gea::opt::canonicalize_cmd(&canon),
                    canon.clone(),
                    "canonicalize is not a fixpoint for {:?}",
                    line
                );
                let key = gea::opt::cache_key(&cmd);
                prop_assert_eq!(
                    gea::opt::cache_key(&canon),
                    key,
                    "cache key not invariant under canonicalization for {:?}",
                    line
                );
                // Planning whatever parses must never panic either.
                let _ = gea::opt::optimize(std::slice::from_ref(&cmd));
            }
        }
    }

    /// Whitespace never changes meaning: padding between tokens of any
    /// accepted command re-parses to the same canonical spelling.
    #[test]
    fn token_padding_is_meaningless(
        idx in 0usize..SEEDS.len(),
        pad in prop::collection::vec(1usize..4, 0..24),
    ) {
        let seed = SEEDS[idx];
        if seed.contains('"') {
            // Quoted arguments preserve interior spacing by design.
            return Ok(());
        }
        if let Ok(Some(Request::Gql(cmd))) = parse(seed) {
            let mut padded = String::new();
            for (i, tok) in seed.split_whitespace().enumerate() {
                let n = pad.get(i).copied().unwrap_or(1);
                if i > 0 {
                    padded.push_str(&" ".repeat(n));
                }
                padded.push_str(tok);
            }
            let reparsed = match parse(&padded) {
                Ok(Some(Request::Gql(c))) => c,
                other => {
                    return Err(TestCaseError::fail(format!(
                        "padded {padded:?} did not re-parse: {other:?}"
                    )))
                }
            };
            prop_assert_eq!(reparsed.canonical(), cmd.canonical());
        }
    }
}

/// The seed corpus really covers the grammar: every GQL verb in `HELP`
/// appears, so the mutation battery reaches every arm.
#[test]
fn seed_corpus_covers_every_verb() {
    let verbs: std::collections::BTreeSet<&str> = SEEDS
        .iter()
        .filter_map(|s| s.split_whitespace().next())
        .collect();
    for verb in [
        "help",
        "quit",
        "dataset",
        "custom",
        "select",
        "project",
        "mine",
        "fascicles",
        "purity",
        "groups",
        "gap",
        "topgap",
        "compare",
        "show",
        "plot",
        "library",
        "tagfreq",
        "xprofiler",
        "export",
        "comment",
        "delete",
        "populate",
        "lineage",
        "cleaning",
        "tissues",
        "save",
        "load",
        "check",
    ] {
        assert!(verbs.contains(verb), "no seed exercises {verb:?}");
    }
}
