//! The gea-exec determinism contract, as properties: every sharded driver
//! is **byte-identical** to its serial counterpart for every tested shard
//! count (1, 2, 3, 7 — including shard counts that don't divide the input
//! and exceed the thread count) and thread count (1, 4), over randomized
//! corpora. Work counters (`PopulateStats`) must match too, not just
//! results — the sharded engine may not even *charge* differently.

use proptest::prelude::*;

use gea::cluster::FascicleParams;
use gea::core::mine::{generate_metadata, mine, MinedCluster, Miner};
use gea::core::populate::{
    populate, populate_columnar, populate_indexed, populate_scan, PopulateIndex,
};
use gea::core::sumy::aggregate;
use gea::core::{EnumTable, ExecConfig};
use gea::exec::{
    aggregate_sharded, isa_mine_sharded, mine_sharded, populate_columnar_sharded,
    populate_indexed_sharded, populate_scan_sharded, populate_sharded, simplex_mine_sharded,
};
use gea::mine::isa::IsaParams;
use gea::mine::simplex::SimplexParams;
use gea::mine::{backend, resolve_params, MineInput, ParamValue};
use gea::sage::corpus::library_meta;
use gea::sage::library::{LibraryId, NeoplasticState, TissueSource};
use gea::sage::tag::{Tag, TagUniverse};
use gea::sage::{ExpressionMatrix, TissueType};

/// Every (shards, threads) combination the issue pins down.
const GRID: &[(usize, usize)] = &[
    (1, 1),
    (2, 1),
    (3, 1),
    (7, 1),
    (1, 4),
    (2, 4),
    (3, 4),
    (7, 4),
];

fn exec(shards: usize, threads: usize) -> ExecConfig {
    ExecConfig { threads, shards }
}

fn small_enum(values: Vec<Vec<f64>>) -> EnumTable {
    let n_libs = values[0].len();
    let universe =
        TagUniverse::from_tags((0..values.len() as u32).map(|i| Tag::from_code(i * 53).unwrap()));
    let libs = (0..n_libs)
        .map(|i| {
            library_meta(
                &format!("L{i}"),
                TissueType::Brain,
                if i % 3 == 0 {
                    NeoplasticState::Cancerous
                } else {
                    NeoplasticState::Normal
                },
                TissueSource::BulkTissue,
            )
        })
        .collect();
    EnumTable::new("E", ExpressionMatrix::from_rows(universe, libs, values))
}

fn matrix_values() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..12, 1usize..14).prop_flat_map(|(n_tags, n_libs)| {
        prop::collection::vec(prop::collection::vec(0.0f64..100.0, n_libs), n_tags)
    })
}

fn clusters_identical(a: &[MinedCluster], b: &[MinedCluster]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.name == y.name
                && x.libraries == y.libraries
                && x.compact_tags == y.compact_tags
                && x.sumy == y.sumy
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn aggregate_sharded_is_byte_identical(values in matrix_values()) {
        let table = small_enum(values);
        let serial = aggregate("s", &table.matrix);
        for &(shards, threads) in GRID {
            let (sharded, stats) = aggregate_sharded("s", &table.matrix, &exec(shards, threads));
            prop_assert_eq!(&sharded, &serial, "shards={} threads={}", shards, threads);
            prop_assert_eq!(stats.shards, shards.min(table.n_tags()).max(1));
        }
    }

    #[test]
    fn populate_sharded_is_byte_identical(
        values in matrix_values(),
        subset_mask in prop::collection::vec(any::<bool>(), 14),
        m in 0usize..6,
    ) {
        let table = small_enum(values);
        let ids: Vec<LibraryId> = table
            .matrix
            .library_ids()
            .enumerate()
            .filter(|(i, _)| subset_mask.get(*i).copied().unwrap_or(false))
            .map(|(_, id)| id)
            .collect();
        prop_assume!(!ids.is_empty());
        let sub = table.with_libraries("sub", &ids);
        let sumy = aggregate("def", &sub.matrix);
        let index = PopulateIndex::build_top_entropy(&table, m, 8);

        let scan = populate_scan(&sumy, &table);
        let columnar = populate_columnar(&sumy, &table);
        let indexed = populate_indexed(&sumy, &table, &index);
        let macro_op = populate("hits", &sumy, &table);

        for &(shards, threads) in GRID {
            let cfg = exec(shards, threads);
            let (hits, stats, _) = populate_scan_sharded(&sumy, &table, &cfg);
            prop_assert_eq!((hits, stats), scan.clone(), "scan shards={} threads={}", shards, threads);
            let (hits, stats, _) = populate_columnar_sharded(&sumy, &table, &cfg);
            prop_assert_eq!((hits, stats), columnar.clone(), "columnar shards={} threads={}", shards, threads);
            let (hits, stats, _) = populate_indexed_sharded(&sumy, &table, &index, &cfg);
            prop_assert_eq!((hits, stats), indexed.clone(), "indexed shards={} threads={}", shards, threads);
            let (out, _) = populate_sharded("hits", &sumy, &table, &cfg);
            prop_assert_eq!(&out, &macro_op, "populate shards={} threads={}", shards, threads);
        }
    }

    #[test]
    fn mine_sharded_is_byte_identical(
        values in prop::collection::vec(prop::collection::vec(0.0f64..50.0, 6), 2usize..10),
        frac in 0.05f64..0.4,
        k in 1usize..3,
    ) {
        let table = small_enum(values);
        let tol = generate_metadata(&table, frac);
        let miner = Miner::Fascicles(FascicleParams {
            min_compact_attrs: k,
            min_records: 2,
            batch_size: 3,
        });
        let serial = mine(&table, "m", &miner, Some(&tol));
        for &(shards, threads) in GRID {
            let (sharded, _) = mine_sharded(&table, "m", &miner, Some(&tol), &exec(shards, threads));
            prop_assert!(
                clusters_identical(&serial, &sharded),
                "mine diverged at shards={} threads={}: {:?} vs {:?}",
                shards, threads, serial, sharded
            );
        }
    }

    /// The ISA backend's sharded driver (seed-range fan-out) against the
    /// serial `MineBackend::mine`, over the full shard × thread grid.
    #[test]
    fn isa_sharded_is_byte_identical(
        values in matrix_values(),
        seeds in 1u64..9,
        t_tags in 0.3f64..2.0,
        t_libs in 0.3f64..2.0,
    ) {
        let table = small_enum(values);
        let isa = backend("isa").unwrap();
        let given = vec![
            ("seeds".to_string(), ParamValue::UInt(seeds)),
            ("t_tags".to_string(), ParamValue::Float(t_tags)),
            ("t_libs".to_string(), ParamValue::Float(t_libs)),
        ];
        let resolved = resolve_params(isa.params(), &given).unwrap();
        let serial = isa.mine(&MineInput { table: &table, base_name: "m", params: &resolved });
        let params = IsaParams::from_resolved(&resolved);
        for &(shards, threads) in GRID {
            let (sharded, _) = isa_mine_sharded(&table, "m", &params, &exec(shards, threads));
            prop_assert!(
                clusters_identical(&serial, &sharded),
                "isa diverged at shards={} threads={}: {:?} vs {:?}",
                shards, threads, serial, sharded
            );
        }
    }

    /// The simplex backend's sharded driver (per-round assignment
    /// fan-out) against the serial `MineBackend::mine`, over the grid.
    #[test]
    fn simplex_sharded_is_byte_identical(
        values in matrix_values(),
        k in 1u64..5,
        zero_repl in 0.05f64..2.0,
    ) {
        let table = small_enum(values);
        let simplex = backend("simplex").unwrap();
        let given = vec![
            ("k".to_string(), ParamValue::UInt(k)),
            ("zero_repl".to_string(), ParamValue::Float(zero_repl)),
        ];
        let resolved = resolve_params(simplex.params(), &given).unwrap();
        let serial = simplex.mine(&MineInput { table: &table, base_name: "m", params: &resolved });
        let params = SimplexParams::from_resolved(&resolved);
        for &(shards, threads) in GRID {
            let (sharded, _) = simplex_mine_sharded(&table, "m", &params, &exec(shards, threads));
            prop_assert!(
                clusters_identical(&serial, &sharded),
                "simplex diverged at shards={} threads={}: {:?} vs {:?}",
                shards, threads, serial, sharded
            );
        }
    }
}

/// The GQL `populate <name> <sumy> <dataset>` verb routes through the
/// sharded populate driver via the engine: a serial session and a
/// many-threads/odd-shards session running the same command sequence must
/// produce byte-identical replies and byte-identical materialized tables.
#[test]
fn gql_populate_is_byte_identical_across_executors() {
    use gea::core::session::GeaSession;
    use gea::sage::clean::CleaningConfig;
    use gea::sage::generate::{generate, GeneratorConfig};
    use gea::server::engine;
    use gea::server::gql::{parse, Request};

    let (corpus, _) = generate(&GeneratorConfig::demo(42));
    let mut serial = GeaSession::open(corpus.clone(), &CleaningConfig::default()).unwrap();
    serial.set_exec_config(ExecConfig::serial());
    let mut sharded = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
    sharded.set_exec_config(ExecConfig {
        threads: 4,
        shards: 3,
    });

    // On demo seed 42 the 50% mine deterministically yields fascicle f_1.
    let script = ["dataset Eb brain", "mine Eb f 50 3 6", "populate P f_1 Eb"];
    for line in script {
        let Some(Request::Gql(cmd)) = parse(line).unwrap() else {
            panic!("{line:?} is not an algebra command");
        };
        let a = engine::execute(&mut serial, &cmd).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        let b = engine::execute(&mut sharded, &cmd).unwrap_or_else(|e| panic!("{line:?}: {e}"));
        assert_eq!(a, b, "engine reply diverged on {line:?}");
    }
    for name in ["Eb", "f_1", "P"] {
        assert_eq!(
            serial.enum_table(name).unwrap().matrix,
            sharded.enum_table(name).unwrap().matrix,
            "table {name} diverged"
        );
    }
    // The populated ENUM is the fascicle's extension: same libraries,
    // restricted to the SUMY's tags.
    let p = serial.enum_table("P").unwrap();
    assert!(p.n_libraries() >= serial.enum_table("f_1").unwrap().n_libraries());
    // Both sessions routed the verb through the exec engine — a
    // `populate` event was noted regardless of the executor shape.
    for session in [&mut serial, &mut sharded] {
        assert!(session
            .drain_exec_events()
            .iter()
            .any(|e| e.op == "populate"));
    }
}

/// The k-means and hierarchical miners route through the same sharded
/// materialization; pin them at a fixed corpus so all three algorithms
/// stay covered.
#[test]
fn baseline_miners_shard_identically() {
    let values: Vec<Vec<f64>> = (0..8)
        .map(|t| (0..9).map(|l| ((t * 7 + l * 13) % 29) as f64).collect())
        .collect();
    let table = small_enum(values);
    for miner in [
        Miner::KMeans(gea::cluster::KMeansParams {
            k: 3,
            max_iters: 20,
            seed: 9,
        }),
        Miner::Hierarchical { k: 3 },
    ] {
        let serial = mine(&table, "b", &miner, None);
        for &(shards, threads) in GRID {
            let (sharded, _) =
                mine_sharded(&table, "b", &miner, None, &ExecConfig { threads, shards });
            assert!(
                clusters_identical(&serial, &sharded),
                "{miner:?} diverged at shards={shards} threads={threads}"
            );
        }
    }
}
