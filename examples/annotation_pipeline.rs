//! Integrated genomic analysis (thesis §4.4.4.1 and §5.2): follow candidate
//! tags through the Expression Analysis Database —
//! UNIGENE (tag → gene) → SWISSPROT (gene → protein) → PFAM (protein →
//! family), with KEGG pathways, GENBANK accessions, OMIM diseases and
//! PUBMED publications on the side — the Figure 4.22 search chain.
//!
//! ```text
//! cargo run --release --example annotation_pipeline
//! ```

use gea::core::topgap::{top_gaps, TopGapOrder};
use gea::core::{aggregate, diff};
use gea::sage::annotation::AnnotationCatalog;
use gea::sage::clean::{clean, CleaningConfig};
use gea::sage::generate::{generate, GeneratorConfig};
use gea::sage::{NeoplasticState, TissueType};

fn main() {
    let (corpus, truth) = generate(&GeneratorConfig::demo(42));
    let (matrix, _) = clean(&corpus, &CleaningConfig::default());
    let catalog = AnnotationCatalog::synthesize(&truth, 42, 0.92);
    println!(
        "annotation catalog: {} mapped tags (UNIGENE-style partial coverage)",
        catalog.mapped_tags()
    );

    // A quick candidate list without the full fascicle machinery: compare
    // cancerous vs normal brain libraries directly.
    let base = gea::core::EnumTable::new("SAGE", matrix);
    let brain = base.select_tissue("Ebrain", &TissueType::Brain);
    let cancer = brain.select_libraries("canc", |m| m.state == NeoplasticState::Cancerous);
    let normal = brain.select_libraries("norm", |m| m.state == NeoplasticState::Normal);
    let sumy_c = aggregate("cancer", &cancer.matrix);
    let sumy_n = aggregate("normal", &normal.matrix);
    let gap = diff("canvsnor", &sumy_c, &sumy_n);
    let top = top_gaps(&gap, 5, TopGapOrder::LargestMagnitude);

    // Figure 4.22's chain for each candidate.
    for row in top.rows() {
        let report = catalog.lookup_chain(row.tag);
        println!(
            "\ntag {} (gap {:+.1}):",
            row.tag,
            row.gap().unwrap_or(f64::NAN)
        );
        match &report.gene {
            None => {
                println!("  UNIGENE:   no known gene for this tag");
                continue;
            }
            Some(g) => println!("  UNIGENE:   {} ({})", g.gene, g.unigene_id),
        }
        match &report.protein {
            Some(p) => {
                let preview: String = p.sequence.chars().take(40).collect();
                println!("  SWISSPROT: {}  {}…", p.accession, preview.to_lowercase());
            }
            None => println!("  SWISSPROT: no annotated protein"),
        }
        if let Some(fam) = &report.family {
            println!("  PFAM:      {} — {}", fam.family_id, fam.name);
        }
        for p in &report.pathways {
            println!("  KEGG:      {} — {}", p.pathway_id, p.name);
        }
        if let Some(acc) = &report.genbank_accession {
            println!("  GENBANK:   {acc}");
        }
        for d in &report.diseases {
            println!("  OMIM:      {} — {}", d.omim_id, d.name);
        }
        for publication in &report.publications {
            println!(
                "  PUBMED:    [{}] {} ({}, {})",
                publication.pmid, publication.title, publication.journal, publication.year
            );
        }
    }

    // §5.2.4's reverse query: other genes in the same pathway as the top
    // candidate.
    if let Some(first) = top.rows().first() {
        if let Some(gene) = catalog.gene_for_tag(first.tag) {
            let gene_name = gene.gene.clone();
            for pathway in catalog.pathways_for_gene(&gene_name) {
                let members = catalog.genes_in_pathway(&pathway.pathway_id);
                println!(
                    "\ngenes sharing pathway {} ({}) with {}: {}",
                    pathway.pathway_id,
                    pathway.name,
                    gene_name,
                    members.len()
                );
            }
        }
    }
}
