//! Case studies 1 and 2 (thesis §4.3.1–§4.3.2): cancerous vs normal brain
//! tissue, and cancerous tissue inside vs outside the fascicle — including
//! the marker-gene figures (4.2 RIBOSOMAL PROTEIN L12, 4.3 ALPHA TUBULIN,
//! 4.11 ADP PROTEIN) and the Figure 4.10 distribution plot, rendered as
//! terminal bar charts.
//!
//! ```text
//! cargo run --release --example brain_case_study
//! ```

use gea::cluster::FascicleParams;
use gea::core::session::GeaSession;
use gea::core::topgap::{series_means, PlotSeries};
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig, GroundTruth};
use gea::sage::library::LibraryProperty;
use gea::sage::{NeoplasticState, TissueType};

fn bar(value: f64, scale: f64) -> String {
    let n = ((value / scale) * 40.0).round().max(0.0) as usize;
    "#".repeat(n.min(60))
}

fn plot_marker(
    session: &GeaSession,
    truth: &GroundTruth,
    fascicle: &str,
    gene: &str,
    figure: &str,
) {
    let Some(tag) = truth.tag_of_gene(gene) else {
        println!("{figure}: marker {gene} not planted");
        return;
    };
    let points = session
        .tag_plot("Ebrain", tag, fascicle)
        .expect("plot data");
    if points.is_empty() {
        println!("{figure}: marker tag {tag} removed by cleaning");
        return;
    }
    println!("\n{figure}: {gene} (tag {tag})");
    let means = series_means(&points);
    let max = means.iter().map(|&(_, m, _)| m).fold(1.0, f64::max);
    for (series, mean, n) in &means {
        println!(
            "  {:<22} avg {:8.1} (n={})  {}",
            series.label(),
            mean,
            n,
            bar(*mean, max)
        );
    }
    // The Figure 4.10-style per-library scatter.
    println!("  per-library levels:");
    for p in &points {
        let glyph = match p.series {
            PlotSeries::CancerInFascicle => "*",
            PlotSeries::CancerOutsideFascicle => "o",
            PlotSeries::Normal => "□",
        };
        println!("    {glyph} {:<20} {:8.1}", p.library, p.level);
    }
}

fn main() {
    let config = GeneratorConfig::demo(42);
    let (corpus, truth) = generate(&config);
    let mut session = GeaSession::open(corpus, &CleaningConfig::default()).expect("clean");

    // ----- Case 1: cancerous vs normal brain (§4.3.1) ---------------------
    session
        .create_tissue_dataset("Ebrain", &TissueType::Brain)
        .expect("brain data set");
    let n_tags = session.enum_table("Ebrain").unwrap().n_tags();

    // Sweep k as a thesis user would until a proper pure cancerous
    // fascicle (with cancerous outsiders) appears.
    let mut fascicle = None;
    for pct in [60, 55, 50, 45, 40] {
        let names = session
            .calculate_fascicles(
                "Ebrain",
                &format!("brain{pct}"),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .expect("mine");
        let n_cancer = session
            .enum_table("Ebrain")
            .unwrap()
            .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
            .len();
        for f in names {
            let purity = session.purity_check(&f).unwrap();
            let size = session.fascicle(&f).unwrap().members.len();
            if purity.contains(&LibraryProperty::Cancer) && size < n_cancer {
                fascicle = Some(f);
                break;
            }
        }
        if fascicle.is_some() {
            break;
        }
    }
    let fascicle = fascicle.expect("pure cancerous fascicle");
    let record = session.fascicle(&fascicle).unwrap().clone();
    println!(
        "Case 1 — fascicle {fascicle}: members {:?}, {} compact tags",
        record.members,
        record.compact_tags.len()
    );

    // Steps 4–6: control groups and GAP₁ = diff(SUMY₁, SUMY₃).
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .expect("control groups");
    session
        .create_gap("canvsnor_gap", &groups.in_fascicle, &groups.contrast)
        .expect("GAP1");
    let gap1 = session.gap("canvsnor_gap").unwrap();
    let non_null = gap1.drop_null_gaps("nn");
    println!(
        "GAP1 = diff({}, {}): {} tags, {} with non-NULL gaps",
        groups.in_fascicle,
        groups.contrast,
        gap1.len(),
        non_null.len()
    );

    // Figures 4.2 and 4.3.
    plot_marker(
        &session,
        &truth,
        &fascicle,
        "RIBOSOMAL PROTEIN L12",
        "Figure 4.2",
    );
    plot_marker(&session, &truth, &fascicle, "ALPHA TUBULIN", "Figure 4.3");

    // ----- Case 2: cancer inside vs outside the fascicle (§4.3.2) ---------
    session
        .create_gap(
            "canvscnif_gap",
            &groups.in_fascicle,
            &groups.outside_fascicle,
        )
        .expect("GAP2");
    let gap2 = session.gap("canvscnif_gap").unwrap();
    println!(
        "\nCase 2 — GAP2 = diff({}, {}): {} tags",
        groups.in_fascicle,
        groups.outside_fascicle,
        gap2.len()
    );
    plot_marker(&session, &truth, &fascicle, "ADP PROTEIN", "Figure 4.11");

    // §4.3.2's closing observation: fascicle-vs-normal gaps are larger than
    // inside-vs-outside gaps.
    let mean_abs = |g: &gea::core::GapTable| {
        let vals: Vec<f64> = g
            .rows()
            .iter()
            .filter_map(|r| r.gap())
            .map(f64::abs)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    let g1 = mean_abs(session.gap("canvsnor_gap").unwrap());
    let g2 = mean_abs(session.gap("canvscnif_gap").unwrap());
    println!(
        "\nmean |gap|: cancer-vs-normal = {g1:.1}, inside-vs-outside = {g2:.1} \
         (thesis §4.3.2 expects the former to be larger: {})",
        if g1 > g2 {
            "confirmed"
        } else {
            "NOT confirmed"
        }
    );
}
