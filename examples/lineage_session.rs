//! The lineage feature (thesis §4.4.2, Figure 4.18): record a multi-step
//! analysis, annotate it, browse the history tree, and use the two deletion
//! modes — contents-only (free storage, keep metadata for regeneration) and
//! cascade (drop a subtree of derived results).
//!
//! ```text
//! cargo run --release --example lineage_session
//! ```

use gea::cluster::FascicleParams;
use gea::core::session::GeaSession;
use gea::core::topgap::TopGapOrder;
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig};
use gea::sage::library::LibraryProperty;
use gea::sage::{NeoplasticState, TissueType};

fn main() {
    let (corpus, _) = generate(&GeneratorConfig::demo(42));
    let mut session = GeaSession::open(corpus, &CleaningConfig::default()).expect("clean");

    // Build a small history: data set -> fascicles -> control groups ->
    // gap -> top gap.
    session
        .create_tissue_dataset("Ebrain", &TissueType::Brain)
        .expect("brain");
    let n_tags = session.enum_table("Ebrain").unwrap().n_tags();
    let n_cancer = session
        .enum_table("Ebrain")
        .unwrap()
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();
    let mut chosen = None;
    for pct in [60, 55, 50, 45] {
        let names = session
            .calculate_fascicles(
                "Ebrain",
                &format!("brain{pct}"),
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .expect("mine");
        for f in names {
            let purity = session.purity_check(&f).unwrap();
            if purity.contains(&LibraryProperty::Cancer)
                && session.fascicle(&f).unwrap().members.len() < n_cancer
            {
                chosen = Some(f);
                break;
            }
        }
        if chosen.is_some() {
            break;
        }
    }
    let fascicle = chosen.expect("pure cancerous fascicle");
    session
        .comment(
            &fascicle,
            "The compact tags in this fascicle are very interesting",
        )
        .unwrap();
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .expect("groups");
    session
        .create_gap("b_canvsnor_gap1", &groups.in_fascicle, &groups.contrast)
        .expect("gap");
    let top = session
        .calculate_top_gap("b_canvsnor_gap1", 10, TopGapOrder::HighestValue)
        .expect("top gap");

    println!("operation history (Figure 4.18's explorer view):\n");
    println!("{}", session.lineage().render_tree());

    // Inspect a node's recorded metadata, as the right-hand panel shows.
    let node = session.lineage().find_by_name(&fascicle).unwrap();
    println!("selected operation: {}", node.name);
    println!("  operation type: {}", node.operation);
    for (k, v) in &node.params {
        println!("  {k}: {v}");
    }
    println!("  user comment: {}", node.comment);

    // Contents-only delete: the GAP table's rows are dropped from the
    // database but its metadata (and the in-memory definition) survive, so
    // it could be regenerated.
    let dropped = session.delete(&top, false).unwrap();
    println!("\ncontents-only delete of {dropped:?} — metadata kept:");
    println!(
        "  database still lists it: {}",
        session.database().exists(&top)
    );
    println!(
        "  rows in database now: {}",
        session
            .database()
            .get(&top)
            .map(|t| t.n_rows())
            .unwrap_or(0)
    );

    // Cascade delete of the whole fascicle subtree.
    let removed = session.delete(&fascicle, true).unwrap();
    println!(
        "\ncascade delete of {fascicle:?} removed {} tables:",
        removed.len()
    );
    for name in &removed {
        println!("  - {name}");
    }
    println!(
        "\nhistory after deletion:\n{}",
        session.lineage().render_tree()
    );
}
