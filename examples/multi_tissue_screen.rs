//! Case studies 3–5 (thesis §4.3.3–§4.3.5): screening for genes that behave
//! consistently — or uniquely — across multiple cancer types, and verifying
//! results with user-defined ENUM tables.
//!
//! * Case 3: genes always expressed *lower* in cancerous tissue than normal
//!   in **both** brain and breast (GAP intersection + query 2).
//! * Case 4: genes whose cancer/normal gap is *unique* to brain (GAP
//!   difference).
//! * Case 5: re-run the analysis on a user-defined data set with a library
//!   removed, to check the outcome is stable.
//!
//! ```text
//! cargo run --release --example multi_tissue_screen
//! ```

use gea::cluster::FascicleParams;
use gea::core::compare::{CompareOp, CompareQuery};
use gea::core::session::GeaSession;
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig};
use gea::sage::library::LibraryProperty;
use gea::sage::{NeoplasticState, TissueType};

/// Build the cancer-in-fascicle vs normal GAP table for one tissue,
/// sweeping k like the thesis user until a proper pure cancerous fascicle
/// emerges. Returns the GAP name.
fn tissue_gap(session: &mut GeaSession, tissue: &TissueType) -> String {
    let dataset = format!("E{}", tissue.name());
    session
        .create_tissue_dataset(&dataset, tissue)
        .expect("tissue libraries exist");
    let n_tags = session.enum_table(&dataset).unwrap().n_tags();
    let n_cancer = session
        .enum_table(&dataset)
        .unwrap()
        .library_ids_where(|m| m.state == NeoplasticState::Cancerous)
        .len();
    for pct in [60, 55, 50, 45, 40, 35] {
        let base = format!("{}{}", tissue.name(), pct);
        let names = session
            .calculate_fascicles(
                &dataset,
                &base,
                0.10,
                &FascicleParams {
                    min_compact_attrs: n_tags * pct / 100,
                    min_records: 2,
                    batch_size: 6,
                },
            )
            .expect("mining runs");
        for f in names {
            let purity = session.purity_check(&f).unwrap();
            let size = session.fascicle(&f).unwrap().members.len();
            if purity.contains(&LibraryProperty::Cancer) && size < n_cancer {
                if let Ok(groups) = session.form_control_groups(&f, LibraryProperty::Cancer) {
                    let gap_name = format!("{}_canvsnor_gap", tissue.name());
                    session
                        .create_gap(&gap_name, &groups.in_fascicle, &groups.contrast)
                        .expect("gap");
                    println!(
                        "{}: fascicle {f} ({} members) -> {gap_name}",
                        tissue.name(),
                        size
                    );
                    return gap_name;
                }
            }
        }
    }
    panic!("no pure cancerous fascicle found for {tissue}");
}

fn main() {
    let (corpus, truth) = generate(&GeneratorConfig::demo(42));
    let mut session = GeaSession::open(corpus, &CleaningConfig::default()).expect("clean");

    // Per-tissue cancer-vs-normal GAP tables (as in §4.3.1 for each tissue).
    let brain_gap = tissue_gap(&mut session, &TissueType::Brain);
    let breast_gap = tissue_gap(&mut session, &TissueType::Breast);

    // ----- Case 3: always lower in cancer, both tissues --------------------
    session
        .compare_gaps(
            "brainBreastIntersect1",
            &brain_gap,
            &breast_gap,
            CompareOp::Intersect,
            CompareQuery::LowerInAInBoth,
        )
        .expect("query 2 applies to intersection");
    let lower_both = session.gap("brainBreastIntersect1").unwrap().clone();
    println!(
        "\nCase 3 — query 2 ({}):",
        CompareQuery::LowerInAInBoth.description()
    );
    println!(
        "  {} tags lower in cancer in BOTH brain and breast",
        lower_both.len()
    );
    for row in lower_both.rows().iter().take(8) {
        println!(
            "  {}_({})  {:+.2} / {:+.2}",
            row.tag,
            row.tag_no,
            row.gaps[0].unwrap_or(f64::NAN),
            row.gaps[1].unwrap_or(f64::NAN),
        );
    }

    // And query 1 — possible drug targets expressed higher in both cancers.
    session
        .compare_gaps(
            "brainBreastIntersect2",
            &brain_gap,
            &breast_gap,
            CompareOp::Intersect,
            CompareQuery::HigherInAInBoth,
        )
        .expect("query 1");
    println!(
        "  {} tags HIGHER in cancer in both tissues (query 1)",
        session.gap("brainBreastIntersect2").unwrap().len()
    );

    // Only housekeeping genes are expressed in both tissues, so cross-tissue
    // hits must be housekeeping-derived; spot-check against ground truth.
    let catalog = gea::sage::annotation::AnnotationCatalog::synthesize(&truth, 42, 0.95);
    for row in lower_both.rows().iter().take(3) {
        if let Some(g) = catalog.gene_for_tag(row.tag) {
            println!("  e.g. {} -> {}", row.tag, g.gene);
        }
    }

    // ----- Case 4: gaps unique to brain ------------------------------------
    session
        .compare_gaps(
            "brainBreastDiff1",
            &brain_gap,
            &breast_gap,
            CompareOp::Difference,
            CompareQuery::LowerInAInBoth,
        )
        .expect("query 2 applies to difference");
    let unique = session.gap("brainBreastDiff1").unwrap();
    println!(
        "\nCase 4 — tags with a negative cancer gap unique to brain: {}",
        unique.len()
    );
    let brain_only_down = unique
        .rows()
        .iter()
        .filter(|r| {
            catalog
                .gene_for_tag(r.tag)
                .map(|g| g.gene.starts_with("BRAIN"))
                .unwrap_or(false)
        })
        .count();
    println!("  of which {brain_only_down} map to brain-specific genes (ground truth)");

    // ----- Case 5: verification with a user-defined ENUM table -------------
    // Remove one normal brain library and repeat the contrast; the candidate
    // list should be broadly stable.
    let keep: Vec<String> = session
        .base()
        .libraries()
        .iter()
        .filter(|m| m.tissue == TissueType::Brain)
        .map(|m| m.name.clone())
        .filter(|n| !n.ends_with("N09"))
        .collect();
    let keep_refs: Vec<&str> = keep.iter().map(|s| s.as_str()).collect();
    session
        .create_custom_dataset("newBrain", &keep_refs)
        .expect("custom data set");
    println!(
        "\nCase 5 — user-defined tissue type 'newBrain' with {} libraries (N09 removed)",
        session.enum_table("newBrain").unwrap().n_libraries()
    );
    let n_tags = session.enum_table("newBrain").unwrap().n_tags();
    let names = session
        .calculate_fascicles(
            "newBrain",
            "newBrain50",
            0.10,
            &FascicleParams {
                min_compact_attrs: n_tags / 2,
                min_records: 3,
                batch_size: 6,
            },
        )
        .expect("re-mine");
    for f in &names {
        let purity = session.purity_check(f).unwrap();
        println!(
            "  fascicle {f}: {:?} pure on {:?}",
            session.fascicle(f).unwrap().members,
            purity
        );
    }
    println!(
        "\nlineage of this session:\n{}",
        session.lineage().render_tree()
    );
}
