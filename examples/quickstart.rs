//! Quickstart: generate a SAGE corpus, clean it, mine fascicles, and list
//! candidate genes.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gea::cluster::FascicleParams;
use gea::core::session::GeaSession;
use gea::core::topgap::TopGapOrder;
use gea::sage::clean::CleaningConfig;
use gea::sage::generate::{generate, GeneratorConfig};
use gea::sage::library::LibraryProperty;
use gea::sage::TissueType;

fn main() {
    // 1. Data. The thesis analyzed the 2001 NCBI CGAP SAGE collection; we
    //    generate a statistically equivalent corpus (see DESIGN.md).
    let (corpus, truth) = generate(&GeneratorConfig::demo(42));
    println!("corpus: {} libraries", corpus.len());
    let stats = corpus.stats();
    println!(
        "raw tag union: {} distinct tags ({:.0}% frequency-1 everywhere)",
        stats.union_tags,
        100.0 * stats.freq1_fraction()
    );

    // 2. Cleaning (§4.2): drop globally-frequency-≤1 tags, normalize every
    //    library to 300,000 tags.
    let mut session =
        GeaSession::open(corpus, &CleaningConfig::default()).expect("cleaning succeeds");
    let report = session.cleaning_report().clone();
    println!(
        "cleaned: {} -> {} tags ({:.0}% removed)",
        report.raw_union_tags,
        report.kept_tags,
        100.0 * report.removed_fraction()
    );

    // 3. Select the brain tissue data set (Case 1 step 1).
    session
        .create_tissue_dataset("Ebrain", &TissueType::Brain)
        .expect("brain libraries exist");
    let n_tags = session.enum_table("Ebrain").unwrap().n_tags();

    // 4. Mine fascicles, sweeping k downward like the thesis's user
    //    (brain35k, brain30k, brain25k ...) until a pure cancerous fascicle
    //    with a non-empty control group appears.
    let mut chosen = None;
    'sweep: for pct in [60, 55, 50, 45, 40] {
        let k = n_tags * pct / 100;
        let name = format!("brain{pct}pct");
        let fascicles = session
            .calculate_fascicles(
                "Ebrain",
                &name,
                0.10,
                &FascicleParams {
                    min_compact_attrs: k,
                    min_records: 3,
                    batch_size: 6,
                },
            )
            .expect("mining runs");
        println!(
            "k = {k} ({pct}% of {n_tags} tags): {} fascicle(s)",
            fascicles.len()
        );
        for f in fascicles {
            let purity = session.purity_check(&f).unwrap();
            if purity.contains(&LibraryProperty::Cancer) {
                let members = session.fascicle(&f).unwrap().members.clone();
                let brain_cancer = session
                    .enum_table("Ebrain")
                    .unwrap()
                    .library_ids_where(|m| m.state == gea::sage::NeoplasticState::Cancerous)
                    .len();
                if members.len() < brain_cancer {
                    chosen = Some(f);
                    break 'sweep;
                }
            }
        }
    }
    let fascicle = chosen.expect("a pure cancerous fascicle with outsiders");
    let record = session.fascicle(&fascicle).unwrap().clone();
    println!(
        "\npure cancerous fascicle {:?}: {} libraries, {} compact tags",
        fascicle,
        record.members.len(),
        record.compact_tags.len()
    );
    for m in &record.members {
        println!("  member: {m}");
    }

    // 5. Control groups and the GAP table (Case 1 steps 4–7).
    let groups = session
        .form_control_groups(&fascicle, LibraryProperty::Cancer)
        .expect("control groups form");
    session
        .create_gap("canvsnor_gap", &groups.in_fascicle, &groups.contrast)
        .expect("gap");
    let top = session
        .calculate_top_gap("canvsnor_gap", 10, TopGapOrder::LargestMagnitude)
        .expect("top gap");

    // 6. Candidate genes: the top-10 tags by |gap|, annotated where the
    //    (synthetic) UNIGENE catalog knows them.
    let catalog = gea::sage::annotation::AnnotationCatalog::synthesize(&truth, 42, 0.9);
    println!("\ntop-10 candidate tags (cancer-in-fascicle vs normal):");
    let mut rows: Vec<_> = session.gap(&top).unwrap().rows().to_vec();
    rows.sort_by(|a, b| {
        b.gap()
            .unwrap_or(0.0)
            .abs()
            .total_cmp(&a.gap().unwrap_or(0.0).abs())
    });
    for row in rows {
        let gene = catalog
            .gene_for_tag(row.tag)
            .map(|g| g.gene.as_str())
            .unwrap_or("(unmapped)");
        println!(
            "  {}_({})  gap {:+9.2}  {}",
            row.tag,
            row.tag_no,
            row.gap().unwrap_or(f64::NAN),
            gene
        );
    }
}
