//! The nightly rule audit — `cargo run --release --bin gea-opt-audit`.
//!
//! Runs the full observational-equivalence audit of every shipped
//! optimizer rule (three corpus seeds × all 13 thesis queries × the
//! shards {1,2,3,7} × threads {1,4} grid) plus the tombstone-rejection
//! pass, and exits non-zero on any divergence. `--kick-tires` drops to
//! the single-seed, query-subset tier `scripts/ci.sh` uses on every push;
//! `GEA_OPT_AUDIT=full` forces the full tier regardless of flags.
//!
//! Output is line-oriented for CI logs: one `DIVERGENCE …` /
//! `TOMBSTONE …` line per finding, a one-line summary otherwise.

fn usage() -> ! {
    eprintln!("usage: gea-opt-audit [--kick-tires]");
    std::process::exit(2);
}

fn main() {
    let mut full = true;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--kick-tires" => full = false,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if gea::audit::full_tier() {
        full = true;
    }
    let tier = if full { "full" } else { "kick-tires" };
    eprintln!("gea-opt-audit: running the {tier} tier");

    let report = gea::audit::audit_shipped(full);
    for d in &report.divergences {
        println!("DIVERGENCE {d}");
    }
    let silent: Vec<&str> = gea::opt::shipped_rules()
        .into_iter()
        .filter(|r| !report.rules_fired.contains(r))
        .collect();
    for r in &silent {
        println!("DIVERGENCE shipped rule {r} never fired in the audit pipeline");
    }
    let tombstones = gea::audit::audit_tombstones();
    for f in &tombstones {
        println!("TOMBSTONE {f}");
    }

    println!(
        "audit {tier}: {} grid configs, {} commands/pipeline, {} rewrites, rules fired: {:?}",
        report.configs, report.pipeline_len, report.rewrites, report.rules_fired
    );
    if !report.divergences.is_empty() || !silent.is_empty() || !tombstones.is_empty() {
        eprintln!(
            "gea-opt-audit: FAILED ({} divergences, {} silent rules, {} tombstone failures)",
            report.divergences.len(),
            silent.len(),
            tombstones.len()
        );
        std::process::exit(1);
    }
    println!("rule audit passed");
}
