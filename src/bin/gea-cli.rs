//! Interactive GEA shell — `cargo run --release --bin gea-cli`.
//!
//! Three modes over the same interpreter:
//!
//! * **interactive** (stdin is a terminal): a `gea> ` prompt, errors
//!   printed and the loop continues;
//! * **piped** (`echo "..." | gea-cli`): no banner, no prompt;
//! * **script** (`gea-cli --script analysis.gql`): lines read from a file.
//!
//! All modes frame replies like the wire protocol — `OK` then the payload,
//! or `ERR <CODE> <message>` on stderr — so a transcript is directly
//! comparable with a `gea-client` session. In the non-interactive modes
//! the first error stops execution with a non-zero exit (reported with its
//! `line N:` position), making scripts safe to automate; `#`-prefixed
//! lines are comments.
//!
//! Static analysis (the `gea-check` crate) is wired in twice:
//!
//! * `gea-cli --check file.gql` lints a script without running it —
//!   world-typing, dataflow, and parameter domains — exiting 1 if any
//!   error-severity diagnostic fires (`--machine` emits JSON lines).
//!   `--cost` appends the abstract cost interpretation (predicted row
//!   intervals and cost units per command, coefficients calibrated from
//!   `BENCH_*.json` when present); `--fix` mechanically applies the
//!   analyzer's suggestions (nearest-name replacements, parameter-domain
//!   clamps) to fixpoint, rewriting the file in place, and comments out
//!   error lines it cannot repair;
//! * both batch modes pre-flight the whole script with the same analyzer
//!   and refuse to execute one with static errors; `--no-preflight`
//!   skips the gate. A clean script's output is byte-identical with and
//!   without the gate — the analyzer never touches a session.
//!
//! The algebraic optimizer (the `gea-opt` crate) sits between the two:
//! batch pipelines and single commands are rewritten (self-compare fast
//! paths, adjacent-step fusion) before execution, with wire output
//! byte-identical to literal execution — `--no-opt` is the escape hatch,
//! and `gea-cli --plan file.gql` prints which rewrites would fire, one
//! per line, without executing anything.

use std::io::{self, BufRead, IsTerminal, Read, Write};

use gea::cli::Cli;

fn usage() -> ! {
    eprintln!(
        "usage: gea-cli [--script file.gql] [--check file.gql [--machine] [--cost] [--fix]] \
         [--plan file.gql] [--no-preflight] [--no-opt]"
    );
    std::process::exit(2);
}

fn read_file(path: &str) -> io::Result<String> {
    std::fs::read_to_string(path).map_err(|e| io::Error::new(e.kind(), format!("open {path}: {e}")))
}

fn main() -> io::Result<()> {
    let mut script: Option<String> = None;
    let mut check: Option<String> = None;
    let mut plan: Option<String> = None;
    let mut machine = false;
    let mut cost = false;
    let mut fix = false;
    let mut preflight = true;
    let mut optimize = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--script" => match args.next() {
                Some(path) => script = Some(path),
                None => usage(),
            },
            "--check" => match args.next() {
                Some(path) => check = Some(path),
                None => usage(),
            },
            "--plan" => match args.next() {
                Some(path) => plan = Some(path),
                None => usage(),
            },
            "--machine" => machine = true,
            "--cost" => cost = true,
            "--fix" => fix = true,
            "--no-preflight" => preflight = false,
            "--no-opt" => optimize = false,
            _ => usage(),
        }
    }

    if let Some(path) = plan {
        match gea::cli::plan_script(&read_file(&path)?) {
            Ok(report) => println!("{report}"),
            Err(e) => {
                eprintln!("ERR {e}");
                std::process::exit(1);
            }
        }
        return Ok(());
    }
    if let Some(path) = check {
        let mut text = read_file(&path)?;
        let report = if fix {
            let outcome = gea::check::fix_script(&text);
            if outcome.changed {
                std::fs::write(&path, &outcome.text)?;
                for applied in &outcome.applied {
                    eprintln!("fix: {applied}");
                }
                eprintln!("fix: rewrote {path} ({} analyzer rounds)", outcome.rounds);
            } else {
                eprintln!("fix: {path} is already clean; file untouched");
            }
            text = outcome.text;
            outcome.report
        } else {
            gea::check::check_script(&text)
        };
        if machine {
            let lines = report.render_machine();
            if !lines.is_empty() {
                println!("{lines}");
            }
        } else {
            println!("{}", report.render());
        }
        if cost && report.is_clean() {
            // Calibrate the per-verb coefficients from any BENCH_*.json in
            // the working directory; silently falls back to the defaults.
            let model = gea::check::CostModel::calibrated(std::path::Path::new("."));
            let seed = gea::check::CostSeed::script_default();
            println!("{}", gea::check::cost_script(&model, &seed, &text).render());
        }
        std::process::exit(if report.is_clean() { 0 } else { 1 });
    }
    if let Some(path) = script {
        return batch(&read_file(&path)?, preflight, optimize);
    }
    if !io::stdin().is_terminal() {
        let mut text = String::new();
        io::stdin().lock().read_to_string(&mut text)?;
        return batch(&text, preflight, optimize);
    }
    interactive(optimize)
}

/// Run a script until EOF or the first error; errors exit non-zero (with
/// their 1-based script line) so shell pipelines and CI notice. Unless
/// disabled, the static analyzer gates execution first: a script with
/// static errors is refused before any command runs.
fn batch(text: &str, preflight: bool, optimize: bool) -> io::Result<()> {
    if preflight {
        let report = gea::check::check_script(text);
        if !report.is_clean() {
            eprintln!("{}", report.render());
            eprintln!("preflight: static errors; rerun with --no-preflight to execute anyway");
            std::process::exit(1);
        }
    }
    let mut cli = Cli::new();
    cli.set_optimize(optimize);
    for (line_no, outcome) in cli.run_script(text) {
        match outcome {
            Ok(output) => print_ok(&output),
            Err(e) => {
                eprintln!("ERR line {line_no}: {e}");
                std::process::exit(1);
            }
        }
    }
    Ok(())
}

fn interactive(optimize: bool) -> io::Result<()> {
    let mut cli = Cli::new();
    cli.set_optimize(optimize);
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("GEA — Gene Expression Analyzer. Type `help` for commands.");
    loop {
        print!("gea> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match cli.execute(line.trim()) {
            Ok(Some(output)) => print_ok(&output),
            Ok(None) => break,
            Err(e) => eprintln!("ERR {e}"),
        }
    }
    Ok(())
}

/// One-line `OK …` framing matching the wire protocol: short payloads ride
/// on the status line, multi-line payloads follow it.
fn print_ok(output: &str) {
    let output = output.trim_end_matches('\n');
    if output.is_empty() {
        println!("OK");
    } else if !output.contains('\n') {
        println!("OK {output}");
    } else {
        println!("OK");
        println!("{output}");
    }
}
