//! Interactive GEA shell — `cargo run --release --bin gea-cli`.

use std::io::{self, BufRead, Write};

use gea::cli::Cli;

fn main() -> io::Result<()> {
    let mut cli = Cli::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("GEA — Gene Expression Analyzer. Type `help` for commands.");
    loop {
        print!("gea> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match cli.execute(line.trim()) {
            Ok(Some(output)) => {
                if !output.is_empty() {
                    println!("{output}");
                }
            }
            Ok(None) => break,
            Err(e) => eprintln!("error: {e}"),
        }
    }
    Ok(())
}
