//! Interactive GEA shell — `cargo run --release --bin gea-cli`.
//!
//! Three modes over the same interpreter:
//!
//! * **interactive** (stdin is a terminal): a `gea> ` prompt, errors
//!   printed and the loop continues;
//! * **piped** (`echo "..." | gea-cli`): no banner, no prompt;
//! * **script** (`gea-cli --script analysis.gql`): lines read from a file.
//!
//! All modes frame replies like the wire protocol — `OK` then the payload,
//! or `ERR <CODE> <message>` on stderr — so a transcript is directly
//! comparable with a `gea-client` session. In the non-interactive modes
//! the first error stops execution with a non-zero exit, making scripts
//! safe to automate; `#`-prefixed lines are comments.

use std::io::{self, BufRead, IsTerminal, Write};

use gea::cli::Cli;

fn usage() -> ! {
    eprintln!("usage: gea-cli [--script file.gql]");
    std::process::exit(2);
}

fn main() -> io::Result<()> {
    let mut script: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--script" => match args.next() {
                Some(path) => script = Some(path),
                None => usage(),
            },
            _ => usage(),
        }
    }

    if let Some(path) = script {
        let file = std::fs::File::open(&path)
            .map_err(|e| io::Error::new(e.kind(), format!("open {path}: {e}")))?;
        return batch(io::BufReader::new(file));
    }
    if !io::stdin().is_terminal() {
        return batch(io::stdin().lock());
    }
    interactive()
}

/// Run lines until EOF or the first error; errors exit non-zero so shell
/// pipelines and CI notice.
fn batch(reader: impl BufRead) -> io::Result<()> {
    let mut cli = Cli::new();
    for line in reader.lines() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        match cli.execute(trimmed) {
            Ok(Some(output)) => print_ok(&output),
            Ok(None) => return Ok(()),
            Err(e) => {
                eprintln!("ERR {e}");
                std::process::exit(1);
            }
        }
    }
    Ok(())
}

fn interactive() -> io::Result<()> {
    let mut cli = Cli::new();
    let stdin = io::stdin();
    let mut stdout = io::stdout();
    println!("GEA — Gene Expression Analyzer. Type `help` for commands.");
    loop {
        print!("gea> ");
        stdout.flush()?;
        let mut line = String::new();
        if stdin.lock().read_line(&mut line)? == 0 {
            break; // EOF
        }
        match cli.execute(line.trim()) {
            Ok(Some(output)) => print_ok(&output),
            Ok(None) => break,
            Err(e) => eprintln!("ERR {e}"),
        }
    }
    Ok(())
}

/// One-line `OK …` framing matching the wire protocol: short payloads ride
/// on the status line, multi-line payloads follow it.
fn print_ok(output: &str) {
    let output = output.trim_end_matches('\n');
    if output.is_empty() {
        println!("OK");
    } else if !output.contains('\n') {
        println!("OK {output}");
    } else {
        println!("OK");
        println!("{output}");
    }
}
