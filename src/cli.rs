//! The GEA command interpreter — a terminal front-end standing in for the
//! thesis's Swing GUI.
//!
//! Every menu operation of Chapter 4 maps to a command; the interpreter is
//! a thin, testable layer over [`GeaSession`]. Run it interactively with
//! `cargo run --release --bin gea-cli`.

use std::fmt::Write as _;

use gea_cluster::FascicleParams;
use gea_core::compare::{CompareOp, CompareQuery};
use gea_core::relational::{enum_to_relation, gap_to_relation, sumy_to_relation};
use gea_core::search::{library_info_by_id, library_info_by_name, tag_frequency};
use gea_core::session::GeaSession;
use gea_core::topgap::{series_means, TopGapOrder};
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_sage::library::{LibraryId, LibraryProperty};
use gea_sage::{Tag, TissueType};

/// The interpreter state: an optional open session.
pub struct Cli {
    session: Option<GeaSession>,
}

impl Default for Cli {
    fn default() -> Cli {
        Cli::new()
    }
}

const HELP: &str = "\
GEA commands (thesis chapter 4's menus):
  load-demo <seed>                    generate + clean a demo corpus
  gen-corpus <seed> <dir>             write a demo corpus as SAGE text files
  load-dir <dir>                      load + clean a corpus directory (sageName.txt)
  tissues                             list tissue types and their libraries
  dataset <name> <tissue>             E = sigma_tissue(SAGE)        [Fig 4.4]
  custom <name> <lib> [<lib>...]      user-defined data set         [Fig 4.15]
  mine <dataset> <out> <k%> <min> <batch>   calculate fascicles     [Fig 4.6]
  fascicles                           list mined fascicles
  purity <fascicle>                   purity check                  [Fig 4.8]
  groups <fascicle>                   form control-group SUMYs      [Fig 4.7]
  gap <name> <sumy1> <sumy2>          GAP = diff(S1, S2)            [Fig 4.9]
  topgap <gap> <x>                    calculate top gaps            [Fig 4.19]
  compare <name> <g1> <g2> <union|intersect|difference> <query#>    [Fig 4.13]
  show gap|sumy <name> [n]            view a table's first rows
  plot <dataset> <tag> <fascicle>     tag distribution              [Fig 4.10]
  library <name|id>                   library information           [Fig 4.23]
  tagfreq <dataset> <tag>             expression values of a tag    [Fig 4.26]
  export <name> <file.csv>            EXPORT a table to CSV
  comment <name> <text...>            annotate a lineage node
  delete <name> [--cascade]           drop contents / cascade       [Fig 4.18]
  lineage                             operation history             [Fig 4.18]
  cleaning                            cleaning report               [Fig 4.1]
  xprofiler <dataset>                 pooled cancer-vs-normal comparison  [sec 2.3.3]
  save <dir>                          persist tables + lineage to a directory
  load <dir>                          reload saved tables + lineage (read-only browse)
  help                                this text
  quit";

impl Cli {
    /// Create an interpreter with no session.
    pub fn new() -> Cli {
        Cli { session: None }
    }

    fn session(&mut self) -> Result<&mut GeaSession, String> {
        self.session
            .as_mut()
            .ok_or_else(|| "no session open; run `load-demo <seed>` first".to_string())
    }

    /// Execute one command line, returning the text to display. `Ok(None)`
    /// means quit.
    pub fn execute(&mut self, line: &str) -> Result<Option<String>, String> {
        let parts: Vec<&str> = line.split_whitespace().collect();
        let Some((&cmd, args)) = parts.split_first() else {
            return Ok(Some(String::new()));
        };
        let out = match cmd {
            "help" => HELP.to_string(),
            "quit" | "exit" => return Ok(None),
            "load-demo" => {
                let seed: u64 = args
                    .first()
                    .unwrap_or(&"42")
                    .parse()
                    .map_err(|e| format!("bad seed: {e}"))?;
                let (corpus, _) = generate(&GeneratorConfig::demo(seed));
                let session = GeaSession::open(corpus, &CleaningConfig::default())
                    .map_err(|e| e.to_string())?;
                let report = session.cleaning_report().clone();
                self.session = Some(session);
                format!(
                    "session open: {} -> {} tags after cleaning, {} libraries",
                    report.raw_union_tags,
                    report.kept_tags,
                    self.session.as_ref().unwrap().base().n_libraries()
                )
            }
            "gen-corpus" => {
                let [seed, dir] = args else {
                    return Err("usage: gen-corpus <seed> <dir>".to_string());
                };
                let seed: u64 = seed.parse().map_err(|e| format!("bad seed: {e}"))?;
                let (corpus, _) = generate(&GeneratorConfig::demo(seed));
                gea_sage::io::write_corpus_dir(&corpus, std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                format!("wrote {} libraries to {dir}", corpus.len())
            }
            "load-dir" => {
                let [dir] = args else {
                    return Err("usage: load-dir <dir>".to_string());
                };
                let corpus = gea_sage::io::read_corpus_dir(std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                let session = GeaSession::open(corpus, &CleaningConfig::default())
                    .map_err(|e| e.to_string())?;
                let report = session.cleaning_report().clone();
                self.session = Some(session);
                format!(
                    "loaded {dir}: {} -> {} tags after cleaning, {} libraries",
                    report.raw_union_tags,
                    report.kept_tags,
                    self.session.as_ref().unwrap().base().n_libraries()
                )
            }
            "xprofiler" => {
                let [dataset] = args else {
                    return Err("usage: xprofiler <dataset>".to_string());
                };
                let s = self.session()?;
                let table = s.enum_table(dataset).map_err(|e| e.to_string())?;
                let result = gea_core::xprofiler::compare_cancer_vs_normal(table);
                let hits = result.significant(0.05);
                let mut out = format!(
                    "{} tags tested; {} significant at alpha = 0.05 (Bonferroni):\n",
                    result.rows.len(),
                    hits.len()
                );
                for r in hits.iter().take(10) {
                    let _ = writeln!(
                        out,
                        "  {}_({})  z {:+7.2}  log2 ratio {:+6.2}",
                        r.tag, r.tag_no, r.z_score, r.log2_ratio
                    );
                }
                out
            }
            "tissues" => {
                let s = self.session()?;
                let mut out = String::new();
                for t in s.corpus().tissue_types() {
                    let members = s.corpus().libraries_of_tissue(&t);
                    let _ = writeln!(out, "{t}: {} libraries", members.len());
                }
                out
            }
            "dataset" => {
                let [name, tissue] = args else {
                    return Err("usage: dataset <name> <tissue>".to_string());
                };
                let tissue = TissueType::parse(tissue);
                let s = self.session()?;
                s.create_tissue_dataset(name, &tissue).map_err(|e| e.to_string())?;
                let t = s.enum_table(name).map_err(|e| e.to_string())?;
                format!("{name}: {} libraries x {} tags", t.n_libraries(), t.n_tags())
            }
            "custom" => {
                let Some((&name, libs)) = args.split_first() else {
                    return Err("usage: custom <name> <lib> [<lib>...]".to_string());
                };
                if libs.is_empty() {
                    return Err("need at least one library".to_string());
                }
                let s = self.session()?;
                s.create_custom_dataset(name, libs).map_err(|e| e.to_string())?;
                format!("{name}: {} libraries", s.enum_table(name).unwrap().n_libraries())
            }
            "mine" => {
                let [dataset, out_name, kpct, min, batch] = args else {
                    return Err("usage: mine <dataset> <out> <k%> <min> <batch>".to_string());
                };
                let kpct: usize = kpct.parse().map_err(|e| format!("bad k%: {e}"))?;
                let min: usize = min.parse().map_err(|e| format!("bad min: {e}"))?;
                let batch: usize = batch.parse().map_err(|e| format!("bad batch: {e}"))?;
                let s = self.session()?;
                let n_tags = s.enum_table(dataset).map_err(|e| e.to_string())?.n_tags();
                let names = s
                    .calculate_fascicles(
                        dataset,
                        out_name,
                        0.10,
                        &FascicleParams {
                            min_compact_attrs: n_tags * kpct / 100,
                            min_records: min,
                            batch_size: batch,
                        },
                    )
                    .map_err(|e| e.to_string())?;
                let mut out = format!("{} fascicle(s):\n", names.len());
                for f in names {
                    let r = s.fascicle(&f).unwrap();
                    let _ = writeln!(
                        out,
                        "  {f}: {} libraries, {} compact tags",
                        r.members.len(),
                        r.compact_tags.len()
                    );
                }
                out
            }
            "fascicles" => {
                let s = self.session()?;
                let mut out = String::new();
                for f in s.fascicle_names() {
                    let r = s.fascicle(f).unwrap();
                    let _ = writeln!(
                        out,
                        "{f}: {:?} ({} compact tags)",
                        r.members,
                        r.compact_tags.len()
                    );
                }
                if out.is_empty() {
                    out = "no fascicles mined yet".to_string();
                }
                out
            }
            "purity" => {
                let [fascicle] = args else {
                    return Err("usage: purity <fascicle>".to_string());
                };
                let s = self.session()?;
                let purity = s.purity_check(fascicle).map_err(|e| e.to_string())?;
                if purity.is_empty() {
                    format!("fascicle {fascicle} is NOT pure on any property")
                } else {
                    let labels: Vec<String> =
                        purity.iter().map(|p| p.to_string()).collect();
                    format!("fascicle {fascicle} is pure: {}", labels.join(", "))
                }
            }
            "groups" => {
                let [fascicle] = args else {
                    return Err("usage: groups <fascicle>".to_string());
                };
                let s = self.session()?;
                let groups = s
                    .form_control_groups(fascicle, LibraryProperty::Cancer)
                    .map_err(|e| e.to_string())?;
                format!(
                    "SUMY tables created:\n  in fascicle:      {}\n  outside fascicle: {}\n  contrast (normal): {}",
                    groups.in_fascicle, groups.outside_fascicle, groups.contrast
                )
            }
            "gap" => {
                let [name, s1, s2] = args else {
                    return Err("usage: gap <name> <sumy1> <sumy2>".to_string());
                };
                let s = self.session()?;
                s.create_gap(name, s1, s2).map_err(|e| e.to_string())?;
                let g = s.gap(name).unwrap();
                format!(
                    "{name}: {} tags, {} non-NULL gaps",
                    g.len(),
                    g.drop_null_gaps("tmp").len()
                )
            }
            "topgap" => {
                let [gap, x] = args else {
                    return Err("usage: topgap <gap> <x>".to_string());
                };
                let x: usize = x.parse().map_err(|e| format!("bad x: {e}"))?;
                let s = self.session()?;
                let top = s
                    .calculate_top_gap(gap, x, TopGapOrder::LargestMagnitude)
                    .map_err(|e| e.to_string())?;
                let mut out = format!("{top}:\n");
                let mut rows = s.gap(&top).unwrap().rows().to_vec();
                rows.sort_by(|a, b| {
                    b.gap()
                        .unwrap_or(0.0)
                        .abs()
                        .total_cmp(&a.gap().unwrap_or(0.0).abs())
                });
                for r in rows {
                    let _ = writeln!(
                        out,
                        "  {}_({})  {:+.2}",
                        r.tag,
                        r.tag_no,
                        r.gap().unwrap_or(f64::NAN)
                    );
                }
                out
            }
            "compare" => {
                let [name, g1, g2, op, query] = args else {
                    return Err(
                        "usage: compare <name> <g1> <g2> <union|intersect|difference> <query#>"
                            .to_string(),
                    );
                };
                let op = match *op {
                    "union" => CompareOp::Union,
                    "intersect" => CompareOp::Intersect,
                    "difference" | "diff" => CompareOp::Difference,
                    other => return Err(format!("unknown op {other:?}")),
                };
                let qnum: usize = query.parse().map_err(|e| format!("bad query #: {e}"))?;
                let query = *CompareQuery::ALL
                    .get(qnum.wrapping_sub(1))
                    .ok_or("query # must be 1-13")?;
                let s = self.session()?;
                s.compare_gaps(name, g1, g2, op, query).map_err(|e| e.to_string())?;
                format!(
                    "{name}: {} tags ({})",
                    s.gap(name).unwrap().len(),
                    query.description()
                )
            }
            "show" => {
                let [kind, name, rest @ ..] = args else {
                    return Err("usage: show gap|sumy <name> [n]".to_string());
                };
                let n: usize = rest.first().unwrap_or(&"10").parse().unwrap_or(10);
                let s = self.session()?;
                match *kind {
                    "gap" => {
                        let g = s.gap(name).map_err(|e| e.to_string())?;
                        let relation = gap_to_relation(g).map_err(|e| e.to_string())?;
                        relation.render(n)
                    }
                    "sumy" => {
                        let t = s.sumy(name).map_err(|e| e.to_string())?;
                        let relation = sumy_to_relation(t).map_err(|e| e.to_string())?;
                        relation.render(n)
                    }
                    other => return Err(format!("unknown table kind {other:?}")),
                }
            }
            "plot" => {
                let [dataset, tag, fascicle] = args else {
                    return Err("usage: plot <dataset> <tag> <fascicle>".to_string());
                };
                let tag: Tag = tag.parse().map_err(|e| format!("bad tag: {e}"))?;
                let s = self.session()?;
                let points = s.tag_plot(dataset, tag, fascicle).map_err(|e| e.to_string())?;
                if points.is_empty() {
                    return Err(format!("tag {tag} not in {dataset}"));
                }
                let mut out = String::new();
                for (series, mean, count) in series_means(&points) {
                    let _ = writeln!(out, "{:<24} avg {mean:8.1} (n={count})", series.label());
                }
                for p in points {
                    let _ = writeln!(out, "  {:<24} {:8.1}", p.library, p.level);
                }
                out
            }
            "library" => {
                let [key] = args else {
                    return Err("usage: library <name|id>".to_string());
                };
                let s = self.session()?;
                let info = match key.parse::<u32>() {
                    Ok(id) => library_info_by_id(s.corpus(), LibraryId(id)),
                    Err(_) => library_info_by_name(s.corpus(), key),
                }
                .ok_or_else(|| format!("no library {key:?}"))?;
                format!(
                    "{} (id {})\n  tissue: {}\n  state: {}\n  source: {}\n  total tags: {}\n  unique tags: {}",
                    info.meta.name,
                    info.id,
                    info.meta.tissue,
                    info.meta.state,
                    info.meta.source,
                    info.total_tags,
                    info.unique_tags
                )
            }
            "tagfreq" => {
                let [dataset, tag] = args else {
                    return Err("usage: tagfreq <dataset> <tag>".to_string());
                };
                let tag: Tag = tag.parse().map_err(|e| format!("bad tag: {e}"))?;
                let s = self.session()?;
                let table = s.enum_table(dataset).map_err(|e| e.to_string())?;
                let row = tag_frequency(table, tag, &[])
                    .ok_or_else(|| format!("tag {tag} not in {dataset}"))?;
                let mut out = format!("{}_({}):\n", row.tag, row.tag_no);
                for (lib, v) in row.values {
                    let _ = writeln!(out, "  {lib:<24} {v:10.1}");
                }
                out
            }
            "export" => {
                let [name, path] = args else {
                    return Err("usage: export <name> <file.csv>".to_string());
                };
                let s = self.session()?;
                let relation = if let Ok(g) = s.gap(name) {
                    gap_to_relation(g).map_err(|e| e.to_string())?
                } else if let Ok(t) = s.sumy(name) {
                    sumy_to_relation(t).map_err(|e| e.to_string())?
                } else if let Ok(e) = s.enum_table(name) {
                    enum_to_relation(e).map_err(|e| e.to_string())?
                } else {
                    return Err(format!("no table named {name:?}"));
                };
                let mut file =
                    std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
                gea_relstore::export_csv(&relation, &mut file)
                    .map_err(|e| format!("write {path}: {e}"))?;
                format!("exported {} rows to {path}", relation.n_rows())
            }
            "comment" => {
                let Some((&name, words)) = args.split_first() else {
                    return Err("usage: comment <name> <text...>".to_string());
                };
                let s = self.session()?;
                s.comment(name, &words.join(" ")).map_err(|e| e.to_string())?;
                format!("comment recorded on {name}")
            }
            "delete" => {
                let Some((&name, flags)) = args.split_first() else {
                    return Err("usage: delete <name> [--cascade]".to_string());
                };
                let cascade = flags.contains(&"--cascade");
                let s = self.session()?;
                let removed = s.delete(name, cascade).map_err(|e| e.to_string())?;
                if cascade {
                    format!("removed {} table(s): {}", removed.len(), removed.join(", "))
                } else {
                    format!("contents of {name} dropped; metadata kept")
                }
            }
            "save" => {
                let [dir] = args else {
                    return Err("usage: save <dir>".to_string());
                };
                let s = self.session()?;
                gea_core::persist::save_results(s, std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                format!("saved {} table(s) to {dir}", s.database().len())
            }
            "load" => {
                let [dir] = args else {
                    return Err("usage: load <dir>".to_string());
                };
                let loaded = gea_core::persist::load_results(std::path::Path::new(dir))
                    .map_err(|e| e.to_string())?;
                let mut out = format!(
                    "loaded {} table(s); operation history:\n",
                    loaded.database.len()
                );
                out.push_str(&loaded.lineage.render_tree());
                out
            }
            "lineage" => self.session()?.lineage().render_tree(),
            "cleaning" => {
                let report = self.session()?.cleaning_report().clone();
                format!(
                    "raw union {} tags -> kept {} ({:.0}% removed); freq-1 fraction {:.0}%",
                    report.raw_union_tags,
                    report.kept_tags,
                    100.0 * report.removed_fraction(),
                    100.0 * report.freq1_union_fraction
                )
            }
            other => return Err(format!("unknown command {other:?}; try `help`")),
        };
        Ok(Some(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cli: &mut Cli, cmd: &str) -> String {
        cli.execute(cmd)
            .unwrap_or_else(|e| panic!("command {cmd:?} failed: {e}"))
            .expect("not quit")
    }

    /// Mine with a k sweep (as a user would) until a fascicle appears, then
    /// return the first fascicle's name.
    fn mine_first_fascicle(cli: &mut Cli, dataset: &str) -> String {
        for pct in [60, 55, 50, 45, 40] {
            run(cli, &format!("mine {dataset} f{pct} {pct} 3 6"));
            let listing = run(cli, "fascicles");
            if !listing.contains("no fascicles") {
                return listing
                    .lines()
                    .next()
                    .and_then(|l| l.split(':').next())
                    .expect("a fascicle")
                    .to_string();
            }
        }
        panic!("no fascicles found in sweep");
    }

    #[test]
    fn full_case_study_via_commands() {
        let mut cli = Cli::new();
        assert!(cli.execute("tissues").is_err(), "needs a session");
        let out = run(&mut cli, "load-demo 42");
        assert!(out.contains("session open"));
        assert!(run(&mut cli, "tissues").contains("brain"));
        let out = run(&mut cli, "dataset Ebrain brain");
        assert!(out.contains("libraries"));
        let fascicle = mine_first_fascicle(&mut cli, "Ebrain");
        let purity = run(&mut cli, &format!("purity {fascicle}"));
        if purity.contains("pure: cancer") {
            let groups = run(&mut cli, &format!("groups {fascicle}"));
            assert!(groups.contains("CancerFasTbl"));
            run(
                &mut cli,
                &format!("gap g1 {fascicle}CancerFasTbl {fascicle}NormalTable"),
            );
            let top = run(&mut cli, "topgap g1 5");
            assert!(top.contains("g1_5"));
            let shown = run(&mut cli, "show gap g1 3");
            assert!(shown.contains("TagName"));
        }
        assert!(run(&mut cli, "lineage").contains("Ebrain"));
        assert!(run(&mut cli, "cleaning").contains("raw union"));
    }

    #[test]
    fn searches_and_errors() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        let lib = run(&mut cli, "library 0");
        assert!(lib.contains("tissue: brain"));
        let by_name_line = lib.lines().next().unwrap();
        let name = by_name_line.split_whitespace().next().unwrap();
        assert!(run(&mut cli, &format!("library {name}")).contains("unique tags"));
        assert!(cli.execute("library nope").is_err());
        assert!(cli.execute("tagfreq SAGE NOTATAG").is_err());
        assert!(cli.execute("bogus").is_err());
        assert!(cli.execute("mine").is_err());
        // Quit returns None.
        assert!(cli.execute("quit").unwrap().is_none());
    }

    #[test]
    fn compare_command_parses_queries() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        let fascicle = mine_first_fascicle(&mut cli, "Eb");
        let purity = run(&mut cli, &format!("purity {fascicle}"));
        if purity.contains("pure: cancer") {
            run(&mut cli, &format!("groups {fascicle}"));
            run(&mut cli, &format!("gap ga {fascicle}CancerFasTbl {fascicle}NormalTable"));
            run(&mut cli, &format!("gap gb {fascicle}CancerFasTbl {fascicle}CanNotInFasTbl"));
            let out = run(&mut cli, "compare cmp ga gb intersect 2");
            assert!(out.contains("lower expression values"));
            assert!(cli.execute("compare x ga gb difference 7").is_err());
            assert!(cli.execute("compare y ga gb intersect 99").is_err());
        }
    }

    #[test]
    fn export_writes_csv() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        let fascicle = mine_first_fascicle(&mut cli, "Eb");
        let path = std::env::temp_dir().join(format!("gea_cli_{}.csv", std::process::id()));
        let out = run(&mut cli, &format!("export {fascicle} {}", path.display()));
        assert!(out.contains("exported"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("TagName,TagNo"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corpus_directory_roundtrip_via_commands() {
        let mut cli = Cli::new();
        let dir = std::env::temp_dir().join(format!("gea_cli_corpus_{}", std::process::id()));
        let out = run(&mut cli, &format!("gen-corpus 42 {}", dir.display()));
        assert!(out.contains("wrote 21 libraries"));
        let out = run(&mut cli, &format!("load-dir {}", dir.display()));
        assert!(out.contains("21 libraries"));
        // The reloaded session is fully analyzable.
        assert!(run(&mut cli, "tissues").contains("brain"));
        run(&mut cli, "dataset Eb brain");
        let out = run(&mut cli, "xprofiler Eb");
        assert!(out.contains("significant at alpha"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_load_roundtrip_via_commands() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        mine_first_fascicle(&mut cli, "Eb");
        let dir = std::env::temp_dir().join(format!("gea_cli_save_{}", std::process::id()));
        let out = run(&mut cli, &format!("save {}", dir.display()));
        assert!(out.contains("saved"));
        let out = run(&mut cli, &format!("load {}", dir.display()));
        assert!(out.contains("operation history"));
        assert!(out.contains("Eb"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn help_covers_every_command() {
        let mut cli = Cli::new();
        let help = run(&mut cli, "help");
        for cmd in [
            "load-demo", "tissues", "dataset", "custom", "mine", "fascicles", "purity",
            "groups", "gap", "topgap", "compare", "show", "plot", "library", "tagfreq",
            "export", "comment", "delete", "lineage", "cleaning", "save", "load",
            "gen-corpus", "load-dir", "xprofiler",
        ] {
            assert!(help.contains(cmd), "help missing {cmd}");
        }
    }
}
