//! The GEA command interpreter — a terminal front-end standing in for the
//! thesis's Swing GUI.
//!
//! Since the serving layer landed, the interpreter is a thin binding of
//! the shared GQL grammar ([`gea_server::gql`]) and executor
//! ([`gea_server::engine`]) to a single in-process session: the same
//! parser and formatting drive the REPL, batch scripts, and the TCP wire
//! protocol, so a transcript that works here works against `gea-server`
//! verbatim. Errors come back as `<CODE> <message>` strings matching the
//! wire protocol's `ERR` line (`EPARSE bad seed: …`, `ENOTFOUND no GAP
//! table named "g1"`, …).
//!
//! Run it interactively with `cargo run --release --bin gea-cli`.

use gea_check::SymbolSeed;
use gea_core::session::GeaSession;
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::gql::{self, GqlCommand, Request, SessionCtl};
use gea_server::{engine, optexec};

/// The interpreter state: an optional open session.
pub struct Cli {
    session: Option<GeaSession>,
    optimize: bool,
}

impl Default for Cli {
    fn default() -> Cli {
        Cli::new()
    }
}

impl Cli {
    /// Create an interpreter with no session. The algebraic optimizer
    /// (`gea-opt`) is on by default; `set_optimize(false)` is the
    /// `--no-opt` escape hatch.
    pub fn new() -> Cli {
        Cli {
            session: None,
            optimize: true,
        }
    }

    /// Enable or disable the algebraic optimizer. Off, every command
    /// executes literally; on, rewritable commands take the fast path —
    /// with byte-identical replies either way (see `tests/opt_audit.rs`).
    pub fn set_optimize(&mut self, on: bool) {
        self.optimize = on;
    }

    fn session(&mut self) -> Result<&mut GeaSession, String> {
        self.session
            .as_mut()
            .ok_or_else(|| "ENOSESSION no session open; run `load-demo <seed>` first".to_string())
    }

    fn open(&mut self, mut session: GeaSession, loaded_from: Option<&str>) -> String {
        // Mine/populate/aggregate route through the sharded executor
        // (gea-exec) with the session default of available parallelism;
        // GEA_THREADS=N overrides it (1 forces the serial path — results
        // are byte-identical either way).
        if let Some(n) = std::env::var("GEA_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
        {
            session.set_exec_config(gea_core::session::ExecConfig::with_threads(n));
        }
        let report = session.cleaning_report().clone();
        let libs = session.base().n_libraries();
        self.session = Some(session);
        let what = match loaded_from {
            Some(dir) => format!("loaded {dir}"),
            None => "session open".to_string(),
        };
        format!(
            "{what}: {} -> {} tags after cleaning, {} libraries",
            report.raw_union_tags, report.kept_tags, libs
        )
    }

    /// Execute one command line, returning the text to display. `Ok(None)`
    /// means quit; `Err` carries a `<CODE> <message>` string matching the
    /// wire protocol's `ERR` framing.
    pub fn execute(&mut self, line: &str) -> Result<Option<String>, String> {
        let req = match gql::parse(line) {
            Ok(None) => return Ok(Some(String::new())),
            Ok(Some(req)) => req,
            Err(e) => return Err(format!("EPARSE {e}")),
        };
        let out = match req {
            Request::Help => gql::HELP.to_string(),
            Request::Quit => return Ok(None),
            Request::Ping => "pong".to_string(),
            Request::Stats | Request::Shutdown => {
                return Err(format!(
                    "EUNKNOWN {} is a server command; connect with gea-client",
                    req.verb()
                ));
            }
            Request::GenCorpus { seed, dir } => {
                let (corpus, _) = generate(&GeneratorConfig::demo(seed));
                gea_sage::io::write_corpus_dir(&corpus, std::path::Path::new(&dir))
                    .map_err(|e| format!("EIO {e}"))?;
                format!("wrote {} libraries to {dir}", corpus.len())
            }
            Request::Session(SessionCtl::OpenDemo { seed, .. }) => {
                let (corpus, _) = generate(&GeneratorConfig::demo(seed));
                let session = GeaSession::open(corpus, &CleaningConfig::default())
                    .map_err(|e| format!("EIO {e}"))?;
                self.open(session, None)
            }
            Request::Session(SessionCtl::OpenDir { dir, .. }) => {
                let corpus = gea_sage::io::read_corpus_dir(std::path::Path::new(&dir))
                    .map_err(|e| format!("EIO {e}"))?;
                let session = GeaSession::open(corpus, &CleaningConfig::default())
                    .map_err(|e| format!("EIO {e}"))?;
                self.open(session, Some(&dir))
            }
            Request::Session(_) => {
                return Err(
                    "EUNKNOWN the REPL holds a single session; named shared sessions \
                     are served by gea-server"
                        .to_string(),
                );
            }
            Request::Gql(cmd) => {
                let optimize = self.optimize;
                let session = self.session()?;
                let rewritten = optimize
                    .then(|| gea_opt::rewrite_command(0, &cmd))
                    .flatten();
                let result = match &rewritten {
                    Some((step, _)) => optexec::run_rewritten(session, step),
                    None => engine::execute(session, &cmd),
                };
                result.map_err(|e| format!("{} {}", e.code, e.message))?
            }
        };
        Ok(Some(out))
    }

    /// Flush a pending GQL pipeline through the optimizer (when enabled)
    /// and the plan executor, mapping within-pipeline indices back to
    /// 1-based source lines. Returns `false` when the script must halt
    /// (batch semantics: first error stops execution).
    fn flush_pipeline(
        &mut self,
        pending: &mut Vec<(usize, GqlCommand)>,
        out: &mut Vec<(usize, Result<String, String>)>,
    ) -> bool {
        if pending.is_empty() {
            return true;
        }
        let optimize = self.optimize;
        let session = match self.session() {
            Ok(s) => s,
            Err(e) => {
                out.push((pending[0].0, Err(e)));
                pending.clear();
                return false;
            }
        };
        let cmds: Vec<GqlCommand> = pending.iter().map(|(_, c)| c.clone()).collect();
        let plan = if optimize {
            gea_opt::optimize_checked(&SymbolSeed::from_session(session), &cmds)
        } else {
            gea_opt::Plan::identity(&cmds)
        };
        let results = optexec::run_plan(session, &plan, true);
        let halted = results.last().is_some_and(|(_, r)| r.is_err());
        for (i, r) in results {
            out.push((
                pending[i].0,
                r.map_err(|e| format!("{} {}", e.code, e.message)),
            ));
        }
        pending.clear();
        !halted
    }

    /// Execute a whole script in batch mode (first error halts).
    /// Consecutive GQL commands form a pipeline that runs through the
    /// optimizer as a unit — fusions only fire across adjacent commands —
    /// while session-control lines execute singly between pipelines.
    /// Returns `(1-based source line, outcome)` pairs in source order; on
    /// a halt the last entry carries the error.
    pub fn run_script(&mut self, text: &str) -> Vec<(usize, Result<String, String>)> {
        let mut out = Vec::new();
        let mut pending: Vec<(usize, GqlCommand)> = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let n = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match gql::parse(line) {
                Ok(Some(Request::Gql(cmd))) => pending.push((n, cmd)),
                Ok(Some(Request::Quit)) => {
                    self.flush_pipeline(&mut pending, &mut out);
                    return out;
                }
                Ok(None) => {}
                Ok(Some(_)) => {
                    if !self.flush_pipeline(&mut pending, &mut out) {
                        return out;
                    }
                    match self.execute(line) {
                        Ok(Some(reply)) => out.push((n, Ok(reply))),
                        Ok(None) => return out,
                        Err(e) => {
                            out.push((n, Err(e)));
                            return out;
                        }
                    }
                }
                Err(e) => {
                    self.flush_pipeline(&mut pending, &mut out);
                    out.push((n, Err(format!("EPARSE {e}"))));
                    return out;
                }
            }
        }
        self.flush_pipeline(&mut pending, &mut out);
        out
    }
}

/// Plan a script without executing it: parse, group consecutive GQL
/// commands into pipelines, run the (purely syntactic) optimizer over
/// each, and render every rewrite with its source line. This is the
/// `gea-cli --plan` view used by CI to lint example scripts through the
/// optimizer; it needs no session.
pub fn plan_script(text: &str) -> Result<String, String> {
    let mut lines = Vec::new();
    let mut pending: Vec<(usize, GqlCommand)> = Vec::new();
    let mut total = 0usize;
    fn flush(pending: &mut Vec<(usize, GqlCommand)>, lines: &mut Vec<String>, total: &mut usize) {
        if pending.is_empty() {
            return;
        }
        let cmds: Vec<GqlCommand> = pending.iter().map(|(_, c)| c.clone()).collect();
        let plan = gea_opt::optimize(&cmds);
        for rw in &plan.rewrites {
            lines.push(format!(
                "line {}: {} {}",
                pending[rw.index].0, rw.rule, rw.detail
            ));
            *total += 1;
        }
        pending.clear();
    }
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match gql::parse(line) {
            Ok(Some(Request::Gql(cmd))) => pending.push((idx + 1, cmd)),
            Ok(_) => flush(&mut pending, &mut lines, &mut total),
            Err(e) => return Err(format!("line {}: EPARSE {e}", idx + 1)),
        }
    }
    flush(&mut pending, &mut lines, &mut total);
    lines.push(format!(
        "{total} rewrite{} planned",
        if total == 1 { "" } else { "s" }
    ));
    Ok(lines.join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(cli: &mut Cli, cmd: &str) -> String {
        cli.execute(cmd)
            .unwrap_or_else(|e| panic!("command {cmd:?} failed: {e}"))
            .expect("not quit")
    }

    /// Mine with a k sweep (as a user would) until a fascicle appears, then
    /// return the first fascicle's name.
    fn mine_first_fascicle(cli: &mut Cli, dataset: &str) -> String {
        for pct in [60, 55, 50, 45, 40] {
            run(cli, &format!("mine {dataset} f{pct} {pct} 3 6"));
            let listing = run(cli, "fascicles");
            if !listing.contains("no fascicles") {
                return listing
                    .lines()
                    .next()
                    .and_then(|l| l.split(':').next())
                    .expect("a fascicle")
                    .to_string();
            }
        }
        panic!("no fascicles found in sweep");
    }

    #[test]
    fn full_case_study_via_commands() {
        let mut cli = Cli::new();
        assert!(cli.execute("tissues").is_err(), "needs a session");
        let out = run(&mut cli, "load-demo 42");
        assert!(out.contains("session open"));
        assert!(run(&mut cli, "tissues").contains("brain"));
        let out = run(&mut cli, "dataset Ebrain brain");
        assert!(out.contains("libraries"));
        let fascicle = mine_first_fascicle(&mut cli, "Ebrain");
        let purity = run(&mut cli, &format!("purity {fascicle}"));
        if purity.contains("pure: cancer") {
            let groups = run(&mut cli, &format!("groups {fascicle}"));
            assert!(groups.contains("CancerFasTbl"));
            run(
                &mut cli,
                &format!("gap g1 {fascicle}CancerFasTbl {fascicle}NormalTable"),
            );
            let top = run(&mut cli, "topgap g1 5");
            assert!(top.contains("g1_5"));
            let shown = run(&mut cli, "show gap g1 3");
            assert!(shown.contains("TagName"));
        }
        assert!(run(&mut cli, "lineage").contains("Ebrain"));
        assert!(run(&mut cli, "cleaning").contains("raw union"));
    }

    #[test]
    fn searches_and_errors() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        let lib = run(&mut cli, "library 0");
        assert!(lib.contains("tissue: brain"));
        let by_name_line = lib.lines().next().unwrap();
        let name = by_name_line.split_whitespace().next().unwrap();
        assert!(run(&mut cli, &format!("library {name}")).contains("unique tags"));
        assert!(cli.execute("library nope").is_err());
        assert!(cli.execute("tagfreq SAGE NOTATAG").is_err());
        assert!(cli.execute("bogus").is_err());
        assert!(cli.execute("mine").is_err());
        // Quit returns None.
        assert!(cli.execute("quit").unwrap().is_none());
    }

    #[test]
    fn errors_carry_wire_protocol_codes() {
        let mut cli = Cli::new();
        let err = cli.execute("tissues").unwrap_err();
        assert!(err.starts_with("ENOSESSION "), "{err}");
        let err = cli.execute("bogus").unwrap_err();
        assert!(err.starts_with("EPARSE "), "{err}");
        run(&mut cli, "load-demo 42");
        let err = cli.execute("gap g missing1 missing2").unwrap_err();
        assert!(err.starts_with("ENOTFOUND "), "{err}");
        run(&mut cli, "dataset Eb brain");
        let err = cli.execute("dataset Eb brain").unwrap_err();
        assert!(err.starts_with("ECONFLICT "), "{err}");
        let err = cli.execute("stats").unwrap_err();
        assert!(err.starts_with("EUNKNOWN "), "{err}");
    }

    #[test]
    fn select_and_project_via_commands() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        let lib = run(&mut cli, "library 0");
        let name = lib
            .lines()
            .next()
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .to_string();
        let out = run(&mut cli, &format!("custom C {name}"));
        assert!(out.contains("1 libraries"));
        let out = run(&mut cli, &format!("select S Eb {name}"));
        assert!(out.contains("1 of"), "{out}");
        assert!(run(&mut cli, "lineage").contains('S'));
    }

    #[test]
    fn compare_command_parses_queries() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        let fascicle = mine_first_fascicle(&mut cli, "Eb");
        let purity = run(&mut cli, &format!("purity {fascicle}"));
        if purity.contains("pure: cancer") {
            run(&mut cli, &format!("groups {fascicle}"));
            run(
                &mut cli,
                &format!("gap ga {fascicle}CancerFasTbl {fascicle}NormalTable"),
            );
            run(
                &mut cli,
                &format!("gap gb {fascicle}CancerFasTbl {fascicle}CanNotInFasTbl"),
            );
            let out = run(&mut cli, "compare cmp ga gb intersect 2");
            assert!(out.contains("lower expression values"));
            assert!(cli.execute("compare x ga gb difference 7").is_err());
            assert!(cli.execute("compare y ga gb intersect 99").is_err());
        }
    }

    #[test]
    fn export_writes_csv() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        let fascicle = mine_first_fascicle(&mut cli, "Eb");
        let path = std::env::temp_dir().join(format!("gea_cli_{}.csv", std::process::id()));
        let out = run(&mut cli, &format!("export {fascicle} {}", path.display()));
        assert!(out.contains("exported"));
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("TagName,TagNo"));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn corpus_directory_roundtrip_via_commands() {
        let mut cli = Cli::new();
        let dir = std::env::temp_dir().join(format!("gea_cli_corpus_{}", std::process::id()));
        let out = run(&mut cli, &format!("gen-corpus 42 {}", dir.display()));
        assert!(out.contains("wrote 21 libraries"));
        let out = run(&mut cli, &format!("load-dir {}", dir.display()));
        assert!(out.contains("21 libraries"));
        // The reloaded session is fully analyzable.
        assert!(run(&mut cli, "tissues").contains("brain"));
        run(&mut cli, "dataset Eb brain");
        let out = run(&mut cli, "xprofiler Eb");
        assert!(out.contains("significant at alpha"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn save_and_load_roundtrip_via_commands() {
        let mut cli = Cli::new();
        run(&mut cli, "load-demo 42");
        run(&mut cli, "dataset Eb brain");
        mine_first_fascicle(&mut cli, "Eb");
        let dir = std::env::temp_dir().join(format!("gea_cli_save_{}", std::process::id()));
        let out = run(&mut cli, &format!("save {}", dir.display()));
        assert!(out.contains("saved"));
        let out = run(&mut cli, &format!("load {}", dir.display()));
        assert!(out.contains("operation history"));
        assert!(out.contains("Eb"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_scripts_are_equivalent_with_and_without_the_optimizer() {
        let script = "load-demo 42\n\
             dataset Eb brain\n\
             mine Eb f 50 3 6\n\
             groups f_1\n\
             # fusion candidate: adjacent gap + topgap\n\
             gap ga f_1CancerFasTbl f_1NormalTable\n\
             topgap ga 5\n\
             compare cd ga ga difference 4\n\
             show gap ga_5 3\n";
        let mut plain = Cli::new();
        plain.set_optimize(false);
        let want = plain.run_script(script);
        let mut opt = Cli::new();
        let got = opt.run_script(script);
        assert_eq!(want, got);
        assert!(want.iter().all(|(_, r)| r.is_ok()), "{want:?}");
        // The rewrites really fired on the optimized side.
        let plan = plan_script(script).unwrap();
        assert!(plan.contains(gea_opt::RULE_FUSE_GAP_TOPGAP), "{plan}");
        assert!(plan.contains(gea_opt::RULE_SELF_MINUS), "{plan}");
        // And the worlds agree afterwards.
        assert_eq!(plain.execute("lineage"), opt.execute("lineage"));
    }

    #[test]
    fn batch_halts_at_the_first_error_with_its_source_line() {
        let script = "load-demo 42\n\
             dataset Eb brain\n\
             gap g missing1 missing2\n\
             tissues\n";
        let mut cli = Cli::new();
        let out = cli.run_script(script);
        assert_eq!(out.len(), 3, "{out:?}");
        let (line, last) = out.last().unwrap();
        assert_eq!(*line, 3);
        let err = last.as_ref().unwrap_err();
        assert!(err.starts_with("ENOTFOUND"), "{err}");
    }

    #[test]
    fn run_script_without_a_session_reports_enosession() {
        let mut cli = Cli::new();
        let out = cli.run_script("tissues\n");
        assert_eq!(out.len(), 1);
        assert!(out[0].1.as_ref().unwrap_err().starts_with("ENOSESSION"));
    }

    #[test]
    fn plan_script_reports_rewrites_without_a_session() {
        let plan = plan_script(
            "gap g a b\ntopgap g 5\ncompare c g g union 2\n# comment\npopulate P s D\nselect S P L1\n",
        )
        .unwrap();
        assert!(plan.contains("line 1: fuse-gap-topgap"), "{plan}");
        assert!(plan.contains("line 3: self-union-intersect"), "{plan}");
        assert!(plan.contains("line 5: fuse-populate-select"), "{plan}");
        assert!(plan.ends_with("3 rewrites planned"), "{plan}");
        assert!(plan_script("gap g\n").is_err());
        assert_eq!(plan_script("tissues\n").unwrap(), "0 rewrites planned");
    }

    #[test]
    fn interactive_rewrites_preserve_single_command_replies() {
        let mut plain = Cli::new();
        plain.set_optimize(false);
        let mut opt = Cli::new();
        for cli in [&mut plain, &mut opt] {
            run(cli, "load-demo 42");
            run(cli, "dataset Eb brain");
            run(cli, "mine Eb f 50 3 6");
            run(cli, "groups f_1");
            run(cli, "gap ga f_1CancerFasTbl f_1NormalTable");
        }
        // Self-difference succeeds; self-union errors (duplicate qualified
        // columns) — byte-identical replies either way.
        assert_eq!(
            plain.execute("compare cd ga ga difference 4"),
            opt.execute("compare cd ga ga difference 4")
        );
        assert_eq!(
            plain.execute("compare cu ga ga union 2"),
            opt.execute("compare cu ga ga union 2")
        );
        assert_eq!(plain.execute("lineage"), opt.execute("lineage"));
    }

    #[test]
    fn help_covers_every_command() {
        let mut cli = Cli::new();
        let help = run(&mut cli, "help");
        for cmd in [
            "load-demo",
            "tissues",
            "dataset",
            "custom",
            "select",
            "project",
            "mine",
            "fascicles",
            "purity",
            "groups",
            "gap",
            "topgap",
            "compare",
            "show",
            "plot",
            "library",
            "tagfreq",
            "export",
            "comment",
            "delete",
            "populate",
            "lineage",
            "cleaning",
            "save",
            "load",
            "gen-corpus",
            "load-dir",
            "xprofiler",
        ] {
            assert!(help.contains(cmd), "help missing {cmd}");
        }
    }
}
