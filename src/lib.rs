//! # GEA — a toolkit for gene expression analysis
//!
//! A Rust reproduction of *GEA: A Toolkit for Gene Expression Analysis*
//! (Phan, UBC 2001; demonstrated at SIGMOD 2002). GEA models multi-step
//! cluster analysis of SAGE gene-expression data with a two-world algebraic
//! framework: ENUM tables (explicit library enumerations) in the
//! extensional world, SUMY and GAP tables (cluster definitions and their
//! differences) in the intensional world, and operators — `mine`,
//! `populate`, `aggregate`, `diff`, set operations, Allen-interval range
//! selection — moving results between them.
//!
//! This facade re-exports the four crates:
//!
//! * [`sage`] — the SAGE substrate: tags, libraries, cleaning,
//!   normalization, the synthetic corpus generator, and the annotation
//!   catalog (EADB);
//! * [`relstore`] — the embedded relational engine with entropy-guided
//!   range indexing;
//! * [`cluster`] — the Fascicles algorithm and baseline clusterers;
//! * [`core`] — the GEA algebra, session, lineage and search operations;
//! * [`mine`] — the pluggable mining-backend subsystem: the
//!   [`MineBackend`](gea_mine::MineBackend) trait, its typed parameter
//!   schemas, and the `fascicles`/`isa`/`simplex` registry behind GQL's
//!   `mine … with <algo>`;
//! * [`exec`] — the sharded parallel execution engine (byte-identical
//!   fan-out of `mine`/`populate`/`aggregate` over a scoped thread pool);
//! * [`check`] — the world-typed static analyzer for GQL scripts (and the
//!   home of the GQL grammar itself), behind `gea-cli --check` and the
//!   server's `check` verb;
//! * [`opt`] — the equivalence-tested algebraic optimizer: rewrite rules
//!   audited for wire-level byte identity (ruler-style), plan fusion, and
//!   canonical ResponseCache keys;
//! * [`server`] — the GQL grammar and executor shared by the [`cli`]
//!   interpreter, plus the concurrent TCP query server (`gea-server`) and
//!   its client library (`gea-client`).
//!
//! ## Quickstart
//!
//! ```
//! use gea::core::session::GeaSession;
//! use gea::sage::clean::CleaningConfig;
//! use gea::sage::generate::{generate, GeneratorConfig};
//! use gea::sage::TissueType;
//!
//! // Generate a corpus (stand-in for the 2001 NCBI SAGE collection),
//! // clean it, and open an analysis session.
//! let (corpus, _truth) = generate(&GeneratorConfig::demo(42));
//! let mut session = GeaSession::open(corpus, &CleaningConfig::default()).unwrap();
//!
//! // Step 1 of Case 1: collect the brain libraries.
//! session.create_tissue_dataset("Ebrain", &TissueType::Brain).unwrap();
//! let brain = session.enum_table("Ebrain").unwrap();
//! assert!(brain.n_libraries() > 0);
//! ```
//!
//! See `examples/` for the full case studies and `gea-bench`'s `repro`
//! binary for the reproduction of every table and figure in the thesis's
//! evaluation.

pub mod audit;
pub mod cli;

pub use gea_check as check;
pub use gea_cluster as cluster;
pub use gea_core as core;
pub use gea_exec as exec;
pub use gea_mine as mine;
pub use gea_opt as opt;
pub use gea_relstore as relstore;
pub use gea_sage as sage;
pub use gea_server as server;
