//! Observational-equivalence oracle for the `gea-opt` rule audit.
//!
//! The ruler recipe, adapted to GQL: enumerate small term shapes
//! ([`gea_opt::audit`]), execute each pipeline twice — literally on a
//! serial session, and through [`gea_opt::optimize`] +
//! [`optexec::run_plan`] on a sharded one — and demand **byte identity at
//! the wire level**: every per-command reply (including errors, which
//! render as `ERR <CODE> <message>`) plus the post-run `lineage` view of
//! the world. Shipped rules must survive the oracle on every point of the
//! shards × threads grid; tombstoned candidates must be *rejected* by the
//! same oracle when applied on purpose ([`audit_tombstones`]).
//!
//! Two tiers share this module:
//!
//! * **kick-tires** (the default `#[test]` battery and `scripts/ci.sh`):
//!   one corpus seed, the kick-tires query subset, the full grid;
//! * **full** (`GEA_OPT_AUDIT=full`, `scripts/ci-nightly.sh`, and the
//!   `gea-opt-audit` bin): three seeds × all 13 thesis queries.

use std::collections::BTreeSet;

use gea_core::session::{ExecConfig, GeaSession};
use gea_sage::clean::CleaningConfig;
use gea_sage::generate::{generate, GeneratorConfig};
use gea_server::gql::{self, GqlCommand, Request};
use gea_server::{engine, optexec};

/// The audit grid: shards {1, 2, 3, 7} × threads {1, 4}. Optimized
/// execution must match the serial reference on every point.
pub const AUDIT_GRID: &[(usize, usize)] = &[
    (1, 1),
    (2, 1),
    (3, 1),
    (7, 1),
    (1, 4),
    (2, 4),
    (3, 4),
    (7, 4),
];

/// Whether the environment requests the full tier (`GEA_OPT_AUDIT=full`).
pub fn full_tier() -> bool {
    std::env::var("GEA_OPT_AUDIT")
        .map(|v| v == "full")
        .unwrap_or(false)
}

/// Corpus seeds for a tier — the randomized-corpora axis of the oracle.
pub fn audit_seeds(full: bool) -> &'static [u64] {
    if full {
        &[42, 7, 2026]
    } else {
        &[42]
    }
}

/// Open a demo-corpus session with an explicit executor geometry.
pub fn open_session(seed: u64, shards: usize, threads: usize) -> GeaSession {
    let (corpus, _) = generate(&GeneratorConfig::demo(seed));
    let mut session = GeaSession::open(corpus, &CleaningConfig::default()).expect("demo session");
    session.set_exec_config(ExecConfig { threads, shards });
    session
}

fn parse_one(line: &str) -> GqlCommand {
    match gql::parse(line).expect("parse").expect("non-empty") {
        Request::Gql(cmd) => cmd,
        other => panic!("{line}: not a GQL command: {other:?}"),
    }
}

/// Parse a script fragment into commands (panics on parse errors — audit
/// pipelines are authored here, not user input).
pub fn parse_lines(lines: &[&str]) -> Vec<GqlCommand> {
    lines.iter().map(|l| parse_one(l)).collect()
}

/// Every library name in the session's base corpus, for `select` shapes.
pub fn library_names(session: &GeaSession) -> Vec<String> {
    session
        .base()
        .libraries()
        .iter()
        .map(|m| m.name.clone())
        .collect()
}

/// The case-study prelude every audit pipeline starts from: brain data
/// set, one mine, groups of the first fascicle, two GAP tables.
pub fn prelude() -> Vec<GqlCommand> {
    parse_lines(&[
        "dataset Eb brain",
        "mine Eb f 50 3 6",
        "groups f_1",
        "gap ga f_1CancerFasTbl f_1NormalTable",
        "gap gb f_1CancerFasTbl f_1CanNotInFasTbl",
    ])
}

/// The shipped-rule audit pipeline: the prelude, the full self-compare
/// shape enumeration over both GAP tables (success *and* error shapes —
/// self-union/intersect error at materialization, `difference 7` errors at
/// applicability), both fusion shapes on their success paths, and the
/// fusion error paths (phase-1 name conflict, phase-2 top-name conflict,
/// phase-1 unknown SUMY) that exercise the continue-on-error fallbacks.
pub fn shipped_pipeline(all_libraries: &[String], full: bool) -> Vec<GqlCommand> {
    let mut cmds = prelude();
    cmds.extend(gea_opt::audit::enumerate_self_compares("ga", "ca", full));
    cmds.extend(gea_opt::audit::enumerate_self_compares("gb", "cb", full));
    let select = format!("select X P {}", all_libraries.join(" "));
    cmds.extend(parse_lines(&[
        // World probe on a successful self-difference result.
        "show gap ca_d1 3",
        // fuse-gap-topgap, success path.
        "gap gc f_1CancerFasTbl f_1NormalTable",
        "topgap gc 5",
        "show gap gc_5 5",
        // fuse-populate-select, success path (selecting every library
        // keeps the populated ENUM intact).
        "populate P f_1CancerFasTbl Eb",
        &select,
        // Fused phase-1 conflict: `ga` exists; the paired topgap must
        // still run against the original `ga`.
        "gap ga f_1CancerFasTbl f_1NormalTable",
        "topgap ga 3",
        // Fused phase-2 conflict: the top name `gz_2` is taken, but the
        // gap phase's table must survive.
        "gap gz_2 f_1CancerFasTbl f_1NormalTable",
        "gap gz f_1CancerFasTbl f_1NormalTable",
        "topgap gz 2",
        "show gap gz 3",
        // Fused phase-1 unknown SUMY: the paired select then fails
        // against the never-created `Q`.
        "populate Q no_such_sumy Eb",
        "select Y Q SAGE_nope",
        // populate-access-path, success shape: a standalone populate (no
        // adjacent select) routed through the cost oracle — on demo-sized
        // inputs the index probe wins, and the hit list must still match
        // the serial scan byte-for-byte.
        "populate R f_1CancerFasTbl Eb",
        "comment R \"access-path oracle probe\"",
        // populate-access-path, error shapes: unknown SUMY reads as size
        // zero (oracle picks the scan route) and a taken name errors in
        // the shared bookkeeping — both must reproduce the literal error.
        "populate R2 no_such_sumy Eb",
        "populate R f_1CancerFasTbl Eb",
    ]));
    cmds
}

/// The tombstone audit pipeline: one instance of every tombstoned rule's
/// pattern, each followed by a probe that surfaces the divergence.
pub fn tombstone_pipeline(all_libraries: &[String]) -> Vec<GqlCommand> {
    let mut cmds = prelude();
    let select = format!("select X P {}", all_libraries.join(" "));
    cmds.extend(parse_lines(&[
        // commute-compare-operands: operand order decides qualified
        // column names and row order (query 7 is operand-asymmetric).
        "compare cc ga gb union 7",
        "show gap cc 5",
        // drop-self-minus: the result is empty but *exists* — show and
        // lineage diverge when it is dropped.
        "compare cd ga ga difference 4",
        "show gap cd 3",
        // hoist-select-above-populate: the populate reply names its
        // source data set, and hoisting changes it.
        "populate P f_1CancerFasTbl Eb",
        &select,
    ]));
    cmds
}

/// Serial reference execution: one literal command at a time,
/// continue-on-error (the REPL/server mode the audit compares in).
pub fn run_serial(session: &mut GeaSession, cmds: &[GqlCommand]) -> optexec::StepOutputs {
    cmds.iter()
        .enumerate()
        .map(|(i, cmd)| (i, engine::execute(session, cmd)))
        .collect()
}

/// Render outcomes the way the wire does: the reply payload, or a single
/// `ERR <CODE> <message>` line, tagged with the source-command index.
pub fn wire(outputs: &optexec::StepOutputs) -> Vec<String> {
    outputs
        .iter()
        .map(|(i, r)| match r {
            Ok(reply) => format!("{i} OK {reply}"),
            Err(e) => format!("{i} ERR {} {}", e.code, e.message),
        })
        .collect()
}

/// The stats-visible world state after a run: the full lineage view.
pub fn world_digest(session: &GeaSession) -> String {
    engine::execute_read(session, &parse_one("lineage"))
        .unwrap_or_else(|e| format!("ERR {} {}", e.code, e.message))
}

/// What one [`audit_shipped`] run covered, and every divergence it found.
#[derive(Debug)]
pub struct AuditReport {
    /// Grid points × seeds executed on the optimized side.
    pub configs: usize,
    /// Commands per audit pipeline.
    pub pipeline_len: usize,
    /// Rewrites the optimizer applied, summed over seeds.
    pub rewrites: usize,
    /// Every rule that fired at least once.
    pub rules_fired: BTreeSet<&'static str>,
    /// Human-readable divergence descriptions; empty means the audit
    /// passed.
    pub divergences: Vec<String>,
}

fn first_diff(want: &[String], got: &[String]) -> String {
    for (i, (w, g)) in want.iter().zip(got.iter()).enumerate() {
        if w != g {
            return format!("at {i}: serial {w:?} vs optimized {g:?}");
        }
    }
    format!("length {} vs {}", want.len(), got.len())
}

/// Run the shipped-rule audit for a tier: serial reference once per seed,
/// optimized execution on every grid point, byte identity demanded for
/// the wire transcript and the lineage digest.
pub fn audit_shipped(full: bool) -> AuditReport {
    let mut report = AuditReport {
        configs: 0,
        pipeline_len: 0,
        rewrites: 0,
        rules_fired: BTreeSet::new(),
        divergences: Vec::new(),
    };
    for &seed in audit_seeds(full) {
        let mut plain = open_session(seed, 1, 1);
        let cmds = shipped_pipeline(&library_names(&plain), full);
        report.pipeline_len = cmds.len();
        let want_wire = wire(&run_serial(&mut plain, &cmds));
        let want_world = world_digest(&plain);

        let plan = gea_opt::optimize(&cmds);
        report.rewrites += plan.rewrites.len();
        for rw in &plan.rewrites {
            report.rules_fired.insert(rw.rule);
        }

        for &(shards, threads) in AUDIT_GRID {
            let mut opt = open_session(seed, shards, threads);
            let got_wire = wire(&optexec::run_plan(&mut opt, &plan, false));
            let got_world = world_digest(&opt);
            report.configs += 1;
            if want_wire != got_wire {
                report.divergences.push(format!(
                    "seed {seed} shards {shards} threads {threads}: wire diverged {}",
                    first_diff(&want_wire, &got_wire)
                ));
            }
            if want_world != got_world {
                report.divergences.push(format!(
                    "seed {seed} shards {shards} threads {threads}: lineage diverged"
                ));
            }
        }
    }
    report
}

/// Prove every tombstoned rule *stays* refuted: apply it on purpose and
/// demand the mutated pipeline is observationally distinguishable from
/// the original under the same serial oracle. Returns failure
/// descriptions — a tombstone whose mutation went unnoticed would be
/// eligible to ship, which is exactly what the tombstone exists to
/// prevent.
pub fn audit_tombstones() -> Vec<String> {
    let mut failures = Vec::new();
    let mut base_session = open_session(42, 1, 1);
    let base = tombstone_pipeline(&library_names(&base_session));
    let want_wire = wire(&run_serial(&mut base_session, &base));
    let want_world = world_digest(&base_session);
    for rule in gea_opt::tombstoned_rules() {
        let Some(mutated) = gea_opt::audit::apply_tombstone(rule, &base) else {
            failures.push(format!("{rule}: pattern missing from the audit pipeline"));
            continue;
        };
        let mut session = open_session(42, 1, 1);
        let got_wire = wire(&run_serial(&mut session, &mutated));
        let got_world = world_digest(&session);
        if want_wire == got_wire && want_world == got_world {
            failures.push(format!(
                "{rule}: mutated pipeline is observationally equivalent — the oracle would ship it"
            ));
        }
    }
    failures
}
